//! `tsvd` — command-line front end for the Tree-SVD subset-embedding system.
//!
//! ```text
//! tsvd generate --dataset patent --out edges.txt [--labels labels.txt]
//! tsvd embed    --edges edges.txt [--tau N] [--subset-size K | --subset-file F]
//!               [--dim D] [--blocks B] [--branching K] [--r-max X] [--alpha A]
//!               [--out emb.tsv] [--right right.tsv]
//! tsvd stream   --edges edges.txt --tau N --from T [embed options]
//! ```
//!
//! `generate` writes a synthetic dynamic graph (timestamped edge list, one
//! event per line). `embed` builds a static subset embedding of the final
//! snapshot and writes it as TSV (`node<TAB>v_1<TAB>…<TAB>v_d`). `stream`
//! starts at snapshot `--from` and replays the remaining batches through
//! the lazy dynamic pipeline, reporting per-batch work.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use tree_svd::datasets::io::{read_edge_list, write_edge_list};
use tree_svd::datasets::{DatasetConfig, SyntheticDataset};
use tree_svd::linalg::DenseMatrix;
use tree_svd::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "embed" => cmd_embed(&opts),
        "stream" => cmd_stream(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "tsvd — Tree-SVD subset node embedding

USAGE:
  tsvd generate --dataset <patent|mag-authors|wikipedia|youtube|flickr|twitter>
                --out <edges.txt> [--labels <labels.txt>]
  tsvd embed    --edges <edges.txt> [--tau <N>]
                [--subset-size <K> | --subset-file <file>] [--dim <D>]
                [--blocks <B>] [--branching <K>] [--alpha <A>] [--r-max <X>]
                [--seed <S>] [--out <emb.tsv>] [--right <right.tsv>]
  tsvd stream   --edges <edges.txt> --tau <N> --from <T> [embed options]

The edge-list format is `u v [t [+|-]]` per line; `#`/`%` lines are comments.";

/// Parsed `--key value` options.
struct Options(HashMap<String, String>);

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got {key:?}"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Options(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(|s| s.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let name = opts.required("dataset")?;
    let cfg = match name {
        "patent" => DatasetConfig::patent(),
        "mag-authors" => DatasetConfig::mag_authors(),
        "wikipedia" => DatasetConfig::wikipedia(),
        "youtube" => DatasetConfig::youtube(),
        "flickr" => DatasetConfig::flickr(),
        "twitter" => DatasetConfig::twitter(),
        other => return Err(format!("unknown dataset {other:?}")),
    };
    let out = PathBuf::from(opts.required("out")?);
    let data = SyntheticDataset::generate(&cfg);
    let file = std::fs::File::create(&out).map_err(|e| format!("create {out:?}: {e}"))?;
    write_edge_list(&data.stream, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} events over {} nodes ({} snapshots) to {}",
        data.stream.num_events(),
        data.stream.num_nodes(),
        data.stream.num_snapshots(),
        out.display()
    );
    if let Some(labels_path) = opts.get("labels") {
        let mut w = BufWriter::new(
            std::fs::File::create(labels_path).map_err(|e| format!("create labels: {e}"))?,
        );
        for (node, label) in data.labels.iter().enumerate() {
            writeln!(w, "{node} {label}").map_err(|e| e.to_string())?;
        }
        eprintln!("wrote labels to {labels_path}");
    }
    Ok(())
}

/// Common setup shared by `embed` and `stream`.
struct EmbedSetup {
    stream: tree_svd::graph::SnapshotStream,
    subset: Vec<u32>,
    ppr_cfg: PprConfig,
    tree_cfg: TreeSvdConfig,
}

fn build_setup(opts: &Options) -> Result<EmbedSetup, String> {
    let edges = PathBuf::from(opts.required("edges")?);
    let tau: usize = opts.parse_or("tau", 1)?;
    let stream = read_edge_list(&edges, tau).map_err(|e| e.to_string())?;
    if stream.num_events() == 0 {
        return Err("edge list is empty".into());
    }
    let final_graph = stream.snapshot(stream.num_snapshots());
    let subset: Vec<u32> = if let Some(path) = opts.get("subset-file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        let mut nodes: Vec<u32> = text
            .split_whitespace()
            .map(|tok| tok.parse().map_err(|_| format!("bad node id {tok:?}")))
            .collect::<Result<_, _>>()?;
        nodes.sort_unstable();
        nodes.dedup();
        for &u in &nodes {
            if u as usize >= final_graph.num_nodes() {
                return Err(format!("subset node {u} out of range"));
            }
        }
        nodes
    } else {
        let size: usize = opts.parse_or("subset-size", 100)?;
        use tsvd_rt::rng::SeedableRng;
        use tsvd_rt::rng::SliceRandom;
        let mut candidates: Vec<u32> = (0..final_graph.num_nodes() as u32)
            .filter(|&u| final_graph.out_degree(u) + final_graph.in_degree(u) > 0)
            .collect();
        let seed: u64 = opts.parse_or("seed", 42u64)?;
        candidates.shuffle(&mut tsvd_rt::rng::StdRng::seed_from_u64(seed));
        candidates.truncate(size);
        candidates.sort_unstable();
        candidates
    };
    if subset.is_empty() {
        return Err("subset is empty".into());
    }
    let ppr_cfg = PprConfig {
        alpha: opts.parse_or("alpha", 0.2)?,
        r_max: opts.parse_or("r-max", 1e-4)?,
    };
    let tree_cfg = TreeSvdConfig {
        dim: opts.parse_or("dim", 64)?,
        branching: opts.parse_or("branching", 4)?,
        num_blocks: opts.parse_or("blocks", 16)?,
        seed: opts.parse_or("seed", 42u64)?,
        ..TreeSvdConfig::default()
    };
    tree_cfg.validate();
    Ok(EmbedSetup {
        stream,
        subset,
        ppr_cfg,
        tree_cfg,
    })
}

fn write_tsv(path: &str, ids: Option<&[u32]>, m: &DenseMatrix) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    let mut w = BufWriter::new(file);
    for i in 0..m.rows() {
        let id = ids.map_or(i as u32, |s| s[i]);
        write!(w, "{id}").map_err(|e| e.to_string())?;
        for v in m.row(i) {
            write!(w, "\t{v:.6}").map_err(|e| e.to_string())?;
        }
        writeln!(w).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_embed(opts: &Options) -> Result<(), String> {
    let setup = build_setup(opts)?;
    let g = setup.stream.snapshot(setup.stream.num_snapshots());
    eprintln!(
        "embedding {} subset nodes of a {}-node / {}-edge graph (d = {})",
        setup.subset.len(),
        g.num_nodes(),
        g.num_edges(),
        setup.tree_cfg.dim
    );
    let pipe = TreeSvdPipeline::new(&g, &setup.subset, setup.ppr_cfg, setup.tree_cfg);
    let out = opts.get("out").unwrap_or("embedding.tsv");
    write_tsv(out, Some(&setup.subset), &pipe.embedding().left())?;
    eprintln!("wrote left embedding to {out}");
    if let Some(right_path) = opts.get("right") {
        let right = pipe.embedding().right(&pipe.proximity_csr());
        write_tsv(right_path, None, &right)?;
        eprintln!("wrote right embedding to {right_path}");
    }
    Ok(())
}

fn cmd_stream(opts: &Options) -> Result<(), String> {
    let setup = build_setup(opts)?;
    let from: usize = opts.parse_or("from", 1)?;
    let tau = setup.stream.num_snapshots();
    if from < 1 || from >= tau {
        return Err(format!("--from must be in 1..{tau}"));
    }
    let mut g = setup.stream.snapshot(from);
    let mut pipe = TreeSvdPipeline::new(&g, &setup.subset, setup.ppr_cfg, setup.tree_cfg);
    eprintln!(
        "streaming snapshots {}..={} over {} subset nodes",
        from + 1,
        tau,
        setup.subset.len()
    );
    for t in (from + 1)..=tau {
        let batch = setup.stream.batch(t);
        let start = std::time::Instant::now();
        let stats = pipe.update(&mut g, batch);
        eprintln!(
            "snapshot {t}: {} events, {}/{} blocks re-factorised, {} merges, {:.1}ms",
            batch.len(),
            stats.blocks_recomputed,
            stats.blocks_total,
            stats.merges_recomputed,
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    let t = pipe.timings();
    eprintln!(
        "phase totals: PPR {:.2}s | proximity rows {:.2}s | tree-SVD {:.2}s",
        t.ppr_secs, t.rows_secs, t.svd_secs
    );
    let out = opts.get("out").unwrap_or("embedding.tsv");
    write_tsv(out, Some(&setup.subset), &pipe.embedding().left())?;
    eprintln!("wrote final embedding to {out}");
    Ok(())
}
