//! # tree-svd
//!
//! Umbrella crate for the Tree-SVD reproduction (SIGMOD 2023: *Efficient
//! Tree-SVD for Subset Node Embedding over Large Dynamic Graphs*).
//!
//! Re-exports the workspace crates under stable module names so examples and
//! downstream users need a single dependency:
//!
//! ```
//! use tree_svd::prelude::*;
//! ```

pub use tsvd_baselines as baselines;
pub use tsvd_core as core;
pub use tsvd_datasets as datasets;
pub use tsvd_eval as eval;
pub use tsvd_graph as graph;
pub use tsvd_linalg as linalg;
pub use tsvd_ppr as ppr;
pub use tsvd_serve as serve;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use tsvd_core::{
        BlockedProximityMatrix, DynamicTreeSvd, Level1Method, TreeSvd, TreeSvdConfig,
        TreeSvdPipeline, UpdatePolicy,
    };
    pub use tsvd_datasets::{DatasetConfig, SyntheticDataset};
    pub use tsvd_eval::{LinkPredictionTask, NodeClassificationTask};
    pub use tsvd_graph::{DynGraph, EdgeEvent, EventKind, SnapshotStream};
    pub use tsvd_linalg::{CsrMatrix, DenseMatrix, Svd};
    pub use tsvd_ppr::{PprConfig, SubsetPpr};
    pub use tsvd_serve::{
        ClientConfig, EmbeddingReader, EmbeddingServer, NetClient, NetFront, ServeConfig,
        ShardedEngine, StatsReply, SubmitError, TcpTransport, TenantHost, TenantId, DEFAULT_TENANT,
    };
}
