#!/usr/bin/env bash
# Pre-PR gate for the tree-svd workspace. Run from the repo root:
#
#     ./ci.sh
#
# Steps (all must pass):
#   1. hermeticity — no external crate dependencies may reappear;
#   2. cargo fmt --check;
#   3. cargo clippy --workspace --all-targets -D warnings;
#   4. cargo build --release;
#   5. cargo test --workspace (tier-1 gate);
#   6. cargo test --workspace with TSVD_THREADS=1 — the serial fallbacks of
#      rt::pool must stay equivalent to the parallel paths;
#   7. serving layer under both thread settings — tsvd-serve's sharded
#      server must stay bitwise-equal to the offline pipeline replay —
#      and again with TSVD_PIPELINE_DEPTH=1, which makes every server in
#      the battery run the two-stage pipelined flush;
#   8. network front under both thread settings — codec property/fuzz
#      battery, loopback bitwise equivalence, counter race audit, and the
#      multi-client TCP soak vs journaled-window replay — the soak also
#      repeated with pipelined flushes;
#   9. bench smoke — every rt::bench target runs once, no timing paid,
#      including the spawn-vs-pool dispatch, serving, and net benches.
#
# The workspace builds offline by design (.cargo/config.toml pins
# `net.offline`); every dependency is an in-tree `tsvd-*` path crate, with
# `tsvd-rt` providing the runtime substrate (rng/json/check/bench).

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "hermeticity: only tsvd-* path dependencies allowed"
# Any dependency line in any manifest must reference a tsvd-* crate (or be a
# section header/field). Catches a reintroduced `rand = "0.8"` before the
# (offline) build fails with a confusing resolution error.
bad=$(find . -name Cargo.toml -not -path "./target/*" -print0 \
  | xargs -0 awk '
      /^\[(dev-|build-)?dependencies/ { indeps = 1; next }
      /^\[workspace.dependencies\]/   { indeps = 1; next }
      /^\[/                           { indeps = 0 }
      indeps && /^[a-zA-Z0-9_-]+ *=/ && !/^tsvd-/ {
        printf "%s: %s\n", FILENAME, $0
      }') || true
if [ -n "$bad" ]; then
  echo "non-tsvd dependencies found:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok"

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

step "cargo build --release"
cargo build --release -q

step "cargo test --workspace"
cargo test --workspace -q

step "cargo test --workspace (TSVD_THREADS=1, serial fallbacks)"
TSVD_THREADS=1 cargo test --workspace -q

step "serving layer (default threads + TSVD_THREADS=1)"
cargo test -q -p tsvd-serve
cargo test -q --test serve_equivalence
TSVD_THREADS=1 cargo test -q -p tsvd-serve
TSVD_THREADS=1 cargo test -q --test serve_equivalence

step "serving layer, pipelined flushes (TSVD_PIPELINE_DEPTH=1)"
TSVD_PIPELINE_DEPTH=1 cargo test -q -p tsvd-serve
TSVD_PIPELINE_DEPTH=1 cargo test -q --test serve_equivalence
TSVD_PIPELINE_DEPTH=1 TSVD_THREADS=1 cargo test -q --test serve_equivalence

step "network front (default threads + TSVD_THREADS=1)"
cargo test -q -p tsvd-serve --test net_props --test net_loopback --test race_audit
cargo test -q --test net_soak
TSVD_THREADS=1 cargo test -q -p tsvd-serve --test net_props --test net_loopback --test race_audit
TSVD_THREADS=1 cargo test -q --test net_soak

step "network front, pipelined flushes (TSVD_PIPELINE_DEPTH=1)"
TSVD_PIPELINE_DEPTH=1 cargo test -q -p tsvd-serve --test net_loopback --test race_audit
TSVD_PIPELINE_DEPTH=1 cargo test -q --test net_soak

step "bench smoke (1 iteration per benchmark)"
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench svd_kernels
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench pool_dispatch
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench serving
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench net

printf '\nci.sh: all checks passed\n'
