#!/usr/bin/env bash
# Pre-PR gate for the tree-svd workspace. Run from the repo root:
#
#     ./ci.sh
#
# Steps (all must pass):
#   1. hermeticity — no external crate dependencies may reappear;
#   2. cargo fmt --check;
#   3. cargo clippy --workspace --all-targets -D warnings;
#   4. cargo build --release;
#   5. cargo test --workspace (tier-1 gate);
#   6. cargo test --workspace with TSVD_THREADS=1 — the serial fallbacks of
#      rt::pool must stay equivalent to the parallel paths;
#   7. svd-update oracle battery — incremental truncated-SVD updates vs the
#      exact-recompute oracle: subspace-angle and residual-drift bounds
#      over long randomized streams, under default threads and
#      TSVD_THREADS=1;
#   8. tsvd-store fault battery — WAL torn-tail truncation, interior
#      byte-flip corruption, and mutation fuzz, all through full recovery;
#   9. serve/net env matrix — one leg per env combo over
#      {TSVD_THREADS, TSVD_PIPELINE_DEPTH, TSVD_SVD_UPDATE, TSVD_TENANTS,
#      TSVD_WAL}. Each leg runs the tsvd-serve package battery once (unit
#      tests + codec property/fuzz tests + loopback equivalence + counter
#      race audit) plus the root serve_equivalence, multi-client TCP soak,
#      and multi-tenant suites — every tenant of a sharded server must
#      stay bitwise-equal to the offline pipeline replay of its own subset
#      under every combo. The `wal*` legs additionally run the durability
#      suites: SIGKILL crash recovery from checkpoint + WAL replay, and
#      journal-fed follower replicas over TCP. The `query*` legs pin the
#      top-k serving equivalence suite (scan ≡ clustered ≡ naive, wire,
#      router merge, follower) across thread/tenant env combos;
#  10. bench smoke — every rt::bench target runs once, no timing paid,
#      including the svd_update kernel/engine grid, the WAL
#      append/recovery suite, and the top-k query grid (which asserts
#      zero allocations per warm scan and recall@k == 1.0 even in smoke).
#
# A per-step wall-clock summary is printed at the end.
#
# The workspace builds offline by design (.cargo/config.toml pins
# `net.offline`); every dependency is an in-tree `tsvd-*` path crate, with
# `tsvd-rt` providing the runtime substrate (rng/json/check/bench).

set -euo pipefail
cd "$(dirname "$0")"

STEP_NAMES=()
STEP_SECS=()
CUR_STEP=""
CUR_START=0

end_step() {
  if [ -n "$CUR_STEP" ]; then
    STEP_NAMES+=("$CUR_STEP")
    STEP_SECS+=($(($(date +%s) - CUR_START)))
    CUR_STEP=""
  fi
}

step() {
  end_step
  CUR_STEP="$*"
  CUR_START=$(date +%s)
  printf '\n== %s ==\n' "$*"
}

summary() {
  end_step
  printf '\n== wall-clock summary ==\n'
  local i
  for i in "${!STEP_NAMES[@]}"; do
    printf '%4ds  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
  done
}

step "hermeticity: only tsvd-* path dependencies allowed"
# Any dependency line in any manifest must reference a tsvd-* crate (or be a
# section header/field). Catches a reintroduced `rand = "0.8"` before the
# (offline) build fails with a confusing resolution error.
bad=$(find . -name Cargo.toml -not -path "./target/*" -print0 \
  | xargs -0 awk '
      /^\[(dev-|build-)?dependencies/ { indeps = 1; next }
      /^\[workspace.dependencies\]/   { indeps = 1; next }
      /^\[/                           { indeps = 0 }
      indeps && /^[a-zA-Z0-9_-]+ *=/ && !/^tsvd-/ {
        printf "%s: %s\n", FILENAME, $0
      }') || true
if [ -n "$bad" ]; then
  echo "non-tsvd dependencies found:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok"

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

step "cargo build --release"
cargo build --release -q

step "cargo test --workspace"
cargo test --workspace -q

step "cargo test --workspace (TSVD_THREADS=1, serial fallbacks)"
TSVD_THREADS=1 cargo test --workspace -q

step "svd-update oracle battery (default + TSVD_THREADS=1)"
cargo test -q --test svd_update_oracle
TSVD_THREADS=1 cargo test -q --test svd_update_oracle

step "tsvd-store fault battery (torn tails, byte flips, fuzz)"
cargo test -q -p tsvd-store

# Serve/net env matrix: `name|ENV=V [ENV=V ...]`. Each leg runs the full
# tsvd-serve package battery (which already includes the net_props,
# net_loopback, and race_audit integration tests — listing them again
# would recompile and rerun them) plus the root-level serve_equivalence,
# net_soak, and multi_tenant suites. The `tenants` leg scales the
# multi-tenant soak to three tenants sharing one graph. The `wal*` legs
# also run the root recovery (SIGKILL + checkpoint/WAL replay) and
# follower (journal replication over TCP) suites — `wal-tenants` proves
# kill-and-recover stays bitwise under three tenants. The `router*` legs
# run the scale-out tier: the router fault battery plus the
# multi-process SIGKILL soak (router + 2 shards + follower as real
# child processes); `router-wal` re-runs the soak with every shard
# journaling through the WAL store. The `query*` legs run the top-k
# serving equivalence battery (blocked scan ≡ clustered index ≡ naive,
# wire ≡ in-process, router merge ≡ per-range naive global answer,
# follower stale-but-consistent) — the suite also rides every package
# battery leg above; the explicit legs pin the required env coverage by
# name, including TSVD_THREADS=4, which no other leg exercises.
SERVE_MATRIX=(
  "default|"
  "serial|TSVD_THREADS=1"
  "pipelined|TSVD_PIPELINE_DEPTH=1"
  "pipelined-serial|TSVD_PIPELINE_DEPTH=1 TSVD_THREADS=1"
  "svd-update|TSVD_SVD_UPDATE=1"
  "svd-update-serial|TSVD_SVD_UPDATE=1 TSVD_THREADS=1"
  "svd-update-pipelined|TSVD_SVD_UPDATE=1 TSVD_PIPELINE_DEPTH=1"
  "tenants|TSVD_TENANTS=3"
  "tenants-pipelined|TSVD_TENANTS=3 TSVD_PIPELINE_DEPTH=1"
  "wal|TSVD_WAL=1"
  "wal-tenants|TSVD_WAL=1 TSVD_TENANTS=3"
  "router|"
  "router-wal|TSVD_WAL=1"
  "query|"
  "query-serial|TSVD_THREADS=1"
  "query-threads4|TSVD_THREADS=4"
  "query-tenants|TSVD_TENANTS=3"
)
for leg in "${SERVE_MATRIX[@]}"; do
  name="${leg%%|*}"
  envs="${leg#*|}"
  step "serve/net matrix: ${name}${envs:+ (${envs})}"
  case "$name" in
    router*)
      # The router legs are additive: the package battery already ran in
      # the default/wal legs, so these run only the router-specific
      # suites (fault battery + multi-process soak).
      # shellcheck disable=SC2086
      env $envs cargo test -q -p tsvd-serve --test router_faults
      # shellcheck disable=SC2086
      env $envs cargo test -q --test router_soak
      continue
      ;;
    query*)
      # Additive like the router legs: only the top-k serving suite.
      # shellcheck disable=SC2086
      env $envs cargo test -q -p tsvd-serve --test query_equivalence
      continue
      ;;
  esac
  # shellcheck disable=SC2086
  env $envs cargo test -q -p tsvd-serve
  # shellcheck disable=SC2086
  env $envs cargo test -q --test serve_equivalence --test net_soak --test multi_tenant
  case "$name" in
    wal*)
      # shellcheck disable=SC2086
      env $envs cargo test -q --test recovery --test follower
      ;;
  esac
done

step "bench smoke (1 iteration per benchmark)"
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench svd_kernels
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench svd_update
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench pool_dispatch
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench serving
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench net
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench router
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench store
TSVD_BENCH_SMOKE=1 cargo bench -q -p tsvd-bench --bench query

summary
printf '\nci.sh: all checks passed\n'
