//! Property-based tests for the dataset generator and edge-list I/O.

use proptest::prelude::*;
use std::io::Cursor;
use tsvd_datasets::io::{parse_edge_list, write_edge_list};
use tsvd_datasets::{DatasetConfig, SyntheticDataset};

fn config_strategy() -> impl Strategy<Value = DatasetConfig> {
    (50usize..300, 2usize..6, 1usize..5, 0u64..50, 0.3f64..0.9).prop_map(
        |(n, classes, tau, seed, p_intra)| DatasetConfig {
            name: "prop".into(),
            num_nodes: n,
            num_edges: n * 4,
            num_classes: classes,
            tau,
            p_intra,
            delete_frac: 0.02,
            label_noise: 0.1,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_invariants(cfg in config_strategy()) {
        let ds = SyntheticDataset::generate(&cfg);
        prop_assert_eq!(ds.labels.len(), cfg.num_nodes);
        prop_assert!(ds.labels.iter().all(|&l| l < cfg.num_classes));
        prop_assert_eq!(ds.stream.num_snapshots(), cfg.tau);
        // Every event references valid nodes; the final graph is consistent.
        let g = ds.stream.snapshot(cfg.tau);
        prop_assert_eq!(g.num_nodes(), cfg.num_nodes);
        prop_assert!(g.num_edges() > 0);
        let out_sum: usize = (0..g.num_nodes() as u32).map(|u| g.out_degree(u)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        // No duplicate live edges (DynGraph would have rejected them, but
        // the generator promises not to emit duplicate inserts at all).
        let mut seen = std::collections::HashSet::new();
        for t in 1..=cfg.tau {
            for e in ds.stream.batch(t) {
                match e.kind {
                    tsvd_graph::EventKind::Insert => {
                        prop_assert!(seen.insert((e.u, e.v)), "duplicate insert {e:?}");
                    }
                    tsvd_graph::EventKind::Delete => {
                        prop_assert!(seen.remove(&(e.u, e.v)), "delete of absent edge {e:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn edge_list_round_trip(cfg in config_strategy()) {
        let ds = SyntheticDataset::generate(&cfg);
        let mut buf = Vec::new();
        write_edge_list(&ds.stream, &mut buf).unwrap();
        let back = parse_edge_list(Cursor::new(buf), cfg.tau).unwrap();
        prop_assert_eq!(back.num_events(), ds.stream.num_events());
        let g1 = ds.stream.snapshot(cfg.tau);
        let g2 = back.snapshot(cfg.tau);
        let mut a: Vec<_> = g1.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn subset_sampling_deterministic(cfg in config_strategy(), size in 5usize..40) {
        let ds = SyntheticDataset::generate(&cfg);
        let a = ds.sample_subset(size, 3);
        let b = ds.sample_subset(size, 3);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() <= size);
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
    }
}
