//! Property-based tests for the dataset generator and edge-list I/O.

use std::io::Cursor;
use tsvd_datasets::io::{parse_edge_list, write_edge_list};
use tsvd_datasets::{DatasetConfig, SyntheticDataset};
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::{ensure, ensure_eq};

fn random_config(g: &mut Gen) -> DatasetConfig {
    let n = g.usize_in(50..300);
    DatasetConfig {
        name: "prop".into(),
        num_nodes: n,
        num_edges: n * 4,
        num_classes: g.usize_in(2..6),
        tau: g.usize_in(1..5),
        p_intra: g.f64_in(0.3..0.9),
        delete_frac: 0.02,
        label_noise: 0.1,
        seed: g.u64_in(0..50),
    }
}

#[test]
fn generator_invariants() {
    Checker::new(24).run("generator_invariants", |gen| {
        let cfg = random_config(gen);
        let ds = SyntheticDataset::generate(&cfg);
        ensure_eq!(ds.labels.len(), cfg.num_nodes);
        ensure!(ds.labels.iter().all(|&l| l < cfg.num_classes));
        ensure_eq!(ds.stream.num_snapshots(), cfg.tau);
        // Every event references valid nodes; the final graph is consistent.
        let g = ds.stream.snapshot(cfg.tau);
        ensure_eq!(g.num_nodes(), cfg.num_nodes);
        ensure!(g.num_edges() > 0);
        let out_sum: usize = (0..g.num_nodes() as u32).map(|u| g.out_degree(u)).sum();
        ensure_eq!(out_sum, g.num_edges());
        // No duplicate live edges (DynGraph would have rejected them, but
        // the generator promises not to emit duplicate inserts at all).
        let mut seen = std::collections::HashSet::new();
        for t in 1..=cfg.tau {
            for e in ds.stream.batch(t) {
                match e.kind {
                    tsvd_graph::EventKind::Insert => {
                        ensure!(seen.insert((e.u, e.v)), "duplicate insert {e:?}");
                    }
                    tsvd_graph::EventKind::Delete => {
                        ensure!(seen.remove(&(e.u, e.v)), "delete of absent edge {e:?}");
                    }
                }
            }
        }
        Ok(())
    });
}

#[test]
fn edge_list_round_trip() {
    Checker::new(24).run("edge_list_round_trip", |gen| {
        let cfg = random_config(gen);
        let ds = SyntheticDataset::generate(&cfg);
        let mut buf = Vec::new();
        write_edge_list(&ds.stream, &mut buf).unwrap();
        let back = parse_edge_list(Cursor::new(buf), cfg.tau).unwrap();
        ensure_eq!(back.num_events(), ds.stream.num_events());
        let g1 = ds.stream.snapshot(cfg.tau);
        let g2 = back.snapshot(cfg.tau);
        let mut a: Vec<_> = g1.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        ensure_eq!(a, b);
        Ok(())
    });
}

#[test]
fn subset_sampling_deterministic() {
    Checker::new(24).run("subset_sampling_deterministic", |gen| {
        let cfg = random_config(gen);
        let size = gen.usize_in(5..40);
        let ds = SyntheticDataset::generate(&cfg);
        let a = ds.sample_subset(size, 3);
        let b = ds.sample_subset(size, 3);
        ensure_eq!(&a, &b);
        ensure!(a.len() <= size);
        ensure!(a.windows(2).all(|w| w[0] < w[1]));
        Ok(())
    });
}
