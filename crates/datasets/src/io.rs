//! Plain-text edge-list I/O, so real datasets can be dropped in next to the
//! synthetic generators.
//!
//! Format: one event per line, `u v [t [op]]`, whitespace-separated.
//! `t` is a non-negative integer timestamp (defaults to the line number);
//! `op` is `+` (insert, default) or `-` (delete). Lines starting with `#`
//! or `%` are comments. This covers SNAP-style edge lists as-is.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use tsvd_graph::{EdgeEvent, SnapshotStream, TimedEvent};

/// Parse errors from [`read_edge_list`].
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and content.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "io error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Read a timestamped edge list from `path` and cut it into `tau` snapshot
/// batches. The node-id space is `max id + 1`.
pub fn read_edge_list(path: &Path, tau: usize) -> Result<SnapshotStream, EdgeListError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(BufReader::new(file), tau)
}

/// Parse an edge list from any reader (see module docs for the format).
pub fn parse_edge_list<R: BufRead>(reader: R, tau: usize) -> Result<SnapshotStream, EdgeListError> {
    let mut log: Vec<TimedEvent> = Vec::new();
    let mut max_node = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let bad = || EdgeListError::Parse {
            line: lineno + 1,
            content: trimmed.to_string(),
        };
        let u: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let t: u64 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| bad())?,
            None => log.len() as u64,
        };
        let event = match parts.next() {
            None | Some("+") => EdgeEvent::insert(u, v),
            Some("-") => EdgeEvent::delete(u, v),
            Some(_) => return Err(bad()),
        };
        max_node = max_node.max(u).max(v);
        log.push(TimedEvent { time: t, event });
    }
    log.sort_by_key(|te| te.time);
    if log.is_empty() {
        return Ok(SnapshotStream::from_batches(0, vec![Vec::new()]));
    }
    Ok(SnapshotStream::from_log(max_node as usize + 1, &log, tau))
}

/// Write a snapshot stream back out as a timestamped edge list (inverse of
/// [`parse_edge_list`], suitable for sharing generated datasets).
pub fn write_edge_list<W: Write>(stream: &SnapshotStream, mut w: W) -> std::io::Result<()> {
    let mut t = 0u64;
    for (_, batch) in stream.iter_batches() {
        for e in batch {
            let op = match e.kind {
                tsvd_graph::EventKind::Insert => "+",
                tsvd_graph::EventKind::Delete => "-",
            };
            writeln!(w, "{} {} {} {}", e.u, e.v, t, op)?;
            t += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, SyntheticDataset};
    use std::io::Cursor;

    #[test]
    fn parses_basic_format() {
        let text = "# comment\n0 1\n1 2 5\n2 0 6 +\n0 1 7 -\n";
        let s = parse_edge_list(Cursor::new(text), 2).unwrap();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_events(), 4);
        let g = s.snapshot(2);
        assert!(!g.has_edge(0, 1), "deleted at t=7");
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn sorts_by_timestamp() {
        let text = "0 1 10\n1 2 5\n";
        let s = parse_edge_list(Cursor::new(text), 2).unwrap();
        // t=5 event lands in the first batch.
        assert_eq!(s.batch(1)[0], tsvd_graph::EdgeEvent::insert(1, 2));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_edge_list(Cursor::new("0 x\n"), 1).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("wrong error: {other}"),
        }
        assert!(parse_edge_list(Cursor::new("0 1 2 ?\n"), 1).is_err());
    }

    #[test]
    fn empty_input_is_empty_stream() {
        let s = parse_edge_list(Cursor::new("# nothing\n"), 3).unwrap();
        assert_eq!(s.num_events(), 0);
    }

    #[test]
    fn round_trips_generated_dataset() {
        let mut cfg = DatasetConfig::youtube();
        cfg.num_nodes = 200;
        cfg.num_edges = 800;
        cfg.tau = 3;
        let ds = SyntheticDataset::generate(&cfg);
        let mut buf = Vec::new();
        write_edge_list(&ds.stream, &mut buf).unwrap();
        let back = parse_edge_list(Cursor::new(buf), cfg.tau).unwrap();
        assert_eq!(back.num_events(), ds.stream.num_events());
        let g1 = ds.stream.snapshot(cfg.tau);
        let g2 = back.snapshot(cfg.tau);
        assert_eq!(g1.num_edges(), g2.num_edges());
        let mut a: Vec<_> = g1.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
