//! # tsvd-datasets
//!
//! Synthetic dynamic graphs standing in for the paper's datasets (Patent,
//! Mag-authors, Wikipedia, YouTube, Flickr, Twitter — Table 3), scaled so
//! the full experiment suite runs on one machine.
//!
//! The generator combines **preferential attachment** (the skewed degree
//! distribution that concentrates PPR mass, which the lazy-update strategy
//! exploits) with **planted label communities** (so node classification has
//! learnable structure and link prediction has locality). Edges carry
//! logical timestamps and are cut into `τ` snapshot batches per the paper's
//! dynamic-graph model; a configurable fraction of events are deletions.
//!
//! Why this preserves the paper's behaviour: every algorithm under test
//! consumes only an edge stream and (for NC) node labels. The experimental
//! *shape* — who wins, how update cost scales with change volume — depends
//! on degree skew, community locality, and event ordering, all of which the
//! generator reproduces; absolute F1/precision values differ from the
//! paper's real datasets and are not the reproduction target.

mod configs;
mod generator;
pub mod io;

pub use configs::{all_lp_datasets, all_nc_datasets, DatasetConfig};
pub use generator::SyntheticDataset;
