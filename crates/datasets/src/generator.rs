//! The dynamic-graph generator.

use crate::configs::DatasetConfig;
use tsvd_graph::{EdgeEvent, SnapshotStream, TimedEvent};
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

/// A generated dynamic graph with node labels.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The configuration it was generated from.
    pub config: DatasetConfig,
    /// The event stream cut into `τ` snapshots.
    pub stream: SnapshotStream,
    /// Community label per node (`0..num_classes`).
    pub labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generate deterministically from `cfg`.
    ///
    /// Nodes arrive in id order; each arriving node draws
    /// `edges_per_node ≈ m/n` edges. A target is chosen within the node's
    /// own community with probability `p_intra` (degree-preferentially
    /// inside the community), otherwise degree-preferentially over the
    /// whole graph. Edge direction is randomised. A `delete_frac` fraction
    /// of additional events delete a random earlier surviving edge.
    pub fn generate(cfg: &DatasetConfig) -> SyntheticDataset {
        assert!(cfg.num_nodes >= cfg.num_classes.max(4));
        assert!(
            cfg.num_edges >= cfg.num_nodes,
            "need ≥ 1 edge per node on average"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = cfg.num_nodes;
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..cfg.num_classes)).collect();

        // Degree-proportional sampling pools: every inserted edge appends
        // both endpoints, so uniform pool draws are preferential attachment.
        let mut global_pool: Vec<u32> = Vec::with_capacity(cfg.num_edges * 2);
        let mut comm_pool: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_classes];

        let mut log: Vec<TimedEvent> = Vec::with_capacity(cfg.num_edges);
        let mut alive: Vec<(u32, u32)> = Vec::new();
        let mut present = std::collections::HashSet::<(u32, u32)>::new();
        let mut time = 0u64;

        let edges_per_node = (cfg.num_edges as f64 / n as f64).max(1.0);
        // Seed pools with the first few nodes so early draws succeed.
        for u in 0..(cfg.num_classes.max(2) as u32) {
            global_pool.push(u);
            comm_pool[labels[u as usize]].push(u);
        }

        let emit_insert = |u: u32,
                           v: u32,
                           time: &mut u64,
                           log: &mut Vec<TimedEvent>,
                           alive: &mut Vec<(u32, u32)>,
                           present: &mut std::collections::HashSet<(u32, u32)>,
                           global_pool: &mut Vec<u32>,
                           comm_pool: &mut Vec<Vec<u32>>| {
            if u == v || present.contains(&(u, v)) {
                return false;
            }
            present.insert((u, v));
            alive.push((u, v));
            log.push(TimedEvent {
                time: *time,
                event: EdgeEvent::insert(u, v),
            });
            *time += 1;
            global_pool.push(u);
            global_pool.push(v);
            comm_pool[labels[u as usize]].push(u);
            comm_pool[labels[v as usize]].push(v);
            true
        };

        for u in 1..n as u32 {
            // Fractional edges-per-node accumulate across nodes.
            let quota =
                ((u as f64 + 1.0) * edges_per_node) as usize - (u as f64 * edges_per_node) as usize;
            let quota = quota.max(1);
            let c = labels[u as usize];
            for _ in 0..quota {
                // Pick a partner.
                let partner = if !comm_pool[c].is_empty() && rng.gen_bool(cfg.p_intra) {
                    comm_pool[c][rng.gen_range(0..comm_pool[c].len())]
                } else if !global_pool.is_empty() {
                    global_pool[rng.gen_range(0..global_pool.len())]
                } else {
                    continue;
                };
                if partner >= u {
                    continue; // only link to already-arrived nodes
                }
                let (a, b) = if rng.gen_bool(0.5) {
                    (u, partner)
                } else {
                    (partner, u)
                };
                emit_insert(
                    a,
                    b,
                    &mut time,
                    &mut log,
                    &mut alive,
                    &mut present,
                    &mut global_pool,
                    &mut comm_pool,
                );
                // Deletion churn.
                if cfg.delete_frac > 0.0 && !alive.is_empty() && rng.gen_bool(cfg.delete_frac) {
                    let k = rng.gen_range(0..alive.len());
                    let (du, dv) = alive.swap_remove(k);
                    present.remove(&(du, dv));
                    log.push(TimedEvent {
                        time,
                        event: EdgeEvent::delete(du, dv),
                    });
                    time += 1;
                }
            }
        }
        // Densification pass: keep attaching preferentially until the edge
        // budget is met (growing graphs real datasets resemble add edges
        // among existing nodes too).
        let mut guard = 0usize;
        while present.len() < cfg.num_edges && guard < cfg.num_edges * 20 {
            guard += 1;
            let u = global_pool[rng.gen_range(0..global_pool.len())];
            let c = labels[u as usize];
            let v = if !comm_pool[c].is_empty() && rng.gen_bool(cfg.p_intra) {
                comm_pool[c][rng.gen_range(0..comm_pool[c].len())]
            } else {
                global_pool[rng.gen_range(0..global_pool.len())]
            };
            emit_insert(
                u,
                v,
                &mut time,
                &mut log,
                &mut alive,
                &mut present,
                &mut global_pool,
                &mut comm_pool,
            );
        }

        let stream = SnapshotStream::from_log(n, &log, cfg.tau);
        // Label noise: re-randomise a fraction of labels after the topology
        // is fixed, so ground truth is imperfectly aligned with structure
        // (see DatasetConfig::label_noise).
        let mut labels = labels;
        if cfg.label_noise > 0.0 {
            for l in labels.iter_mut() {
                if rng.gen_bool(cfg.label_noise) {
                    *l = rng.gen_range(0..cfg.num_classes);
                }
            }
        }
        SyntheticDataset {
            config: cfg.clone(),
            stream,
            labels,
        }
    }

    /// Sample `size` distinct subset nodes present (i.e. with at least one
    /// incident edge) in snapshot 1, as the paper does (`|S|` random nodes
    /// from the first snapshot's topology).
    pub fn sample_subset(&self, size: usize, seed: u64) -> Vec<u32> {
        let g1 = self.stream.snapshot(1);
        let mut candidates: Vec<u32> = (0..g1.num_nodes() as u32)
            .filter(|&u| g1.out_degree(u) + g1.in_degree(u) > 0)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        use tsvd_rt::rng::SliceRandom;
        candidates.shuffle(&mut rng);
        candidates.truncate(size.min(candidates.len()));
        candidates.sort_unstable();
        candidates
    }

    /// Labels restricted to a subset, in subset order.
    pub fn subset_labels(&self, subset: &[u32]) -> Vec<usize> {
        subset.iter().map(|&u| self.labels[u as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            name: "test".into(),
            num_nodes: 500,
            num_edges: 2500,
            num_classes: 4,
            tau: 5,
            p_intra: 0.8,
            delete_frac: 0.02,
            label_noise: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn generates_requested_sizes() {
        let ds = SyntheticDataset::generate(&small_cfg());
        assert_eq!(ds.labels.len(), 500);
        assert_eq!(ds.stream.num_snapshots(), 5);
        let g = ds.stream.snapshot(5);
        assert_eq!(g.num_nodes(), 500);
        let m = g.num_edges();
        assert!((2200..=2600).contains(&m), "final edges {m}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticDataset::generate(&small_cfg());
        let b = SyntheticDataset::generate(&small_cfg());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.stream.num_events(), b.stream.num_events());
        let mut cfg2 = small_cfg();
        cfg2.seed = 99;
        let c = SyntheticDataset::generate(&cfg2);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Preferential attachment ⇒ max degree far above the average.
        let ds = SyntheticDataset::generate(&small_cfg());
        let g = ds.stream.snapshot(5);
        let degs: Vec<usize> = (0..500u32)
            .map(|u| g.out_degree(u) + g.in_degree(u))
            .collect();
        let avg = degs.iter().sum::<usize>() as f64 / 500.0;
        let max = *degs.iter().max().unwrap() as f64;
        assert!(max > 4.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn communities_are_assortative() {
        // With p_intra = 0.8, far more than 1/C of edges are intra-class.
        let ds = SyntheticDataset::generate(&small_cfg());
        let g = ds.stream.snapshot(5);
        let intra = g
            .edges()
            .filter(|&(u, v)| ds.labels[u as usize] == ds.labels[v as usize])
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.5, "intra fraction {frac}");
    }

    #[test]
    fn contains_deletions() {
        let ds = SyntheticDataset::generate(&small_cfg());
        let mut deletes = 0;
        for t in 1..=ds.stream.num_snapshots() {
            deletes += ds
                .stream
                .batch(t)
                .iter()
                .filter(|e| e.kind == tsvd_graph::EventKind::Delete)
                .count();
        }
        assert!(deletes > 0, "delete_frac > 0 must produce deletions");
    }

    #[test]
    fn subset_sampling_valid() {
        let ds = SyntheticDataset::generate(&small_cfg());
        let s = ds.sample_subset(50, 3);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        let g1 = ds.stream.snapshot(1);
        for &u in &s {
            assert!(
                g1.out_degree(u) + g1.in_degree(u) > 0,
                "node {u} isolated at t=1"
            );
        }
        let labels = ds.subset_labels(&s);
        assert_eq!(labels.len(), 50);
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn snapshots_grow_monotonically_in_events() {
        let ds = SyntheticDataset::generate(&small_cfg());
        let mut last = 0;
        for t in 1..=5 {
            let g = ds.stream.snapshot(t);
            assert!(g.num_edges() + 200 >= last, "snapshot {t} shrank a lot");
            last = g.num_edges();
        }
    }
}
