//! Named dataset configurations mirroring the paper's Table 3, scaled to
//! laptop size (documented substitution — see DESIGN.md §4).
//!
//! Class counts `|C|` match the paper; node/edge counts are scaled by
//! roughly 500–1000×; snapshot counts `τ` are kept in the paper's range
//! but capped so the full per-snapshot experiment suite stays fast.

/// Parameters of one synthetic dynamic-graph dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Human-readable name (e.g. `"patent"`).
    pub name: String,
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Target number of (final) edges `m`.
    pub num_edges: usize,
    /// Number of label classes `|C|` (ignored by LP-only datasets but kept
    /// so communities shape the topology).
    pub num_classes: usize,
    /// Number of snapshots `τ`.
    pub tau: usize,
    /// Probability a new edge stays within its community.
    pub p_intra: f64,
    /// Fraction of events that are deletions of earlier edges.
    pub delete_frac: f64,
    /// Fraction of nodes whose *label* is re-randomised after generation —
    /// their topology follows one community but their ground truth says
    /// another. Real-world labels are similarly noisy; without this, the
    /// planted partition is so clean every method saturates at 100% F1 and
    /// the paper's method ordering cannot show.
    pub label_noise: f64,
    /// Generator seed.
    pub seed: u64,
}

tsvd_rt::impl_json_struct!(DatasetConfig {
    name,
    num_nodes,
    num_edges,
    num_classes,
    tau,
    p_intra,
    delete_frac,
    label_noise,
    seed
});

impl DatasetConfig {
    fn new(
        name: &str,
        num_nodes: usize,
        num_edges: usize,
        num_classes: usize,
        tau: usize,
        seed: u64,
    ) -> Self {
        DatasetConfig {
            name: name.into(),
            num_nodes,
            num_edges,
            num_classes,
            tau,
            p_intra: 0.55,
            delete_frac: 0.01,
            label_noise: 0.15,
            seed,
        }
    }

    /// Patent-like citation graph (paper: 2.7M/14M, |C|=6, τ=25).
    pub fn patent() -> Self {
        DatasetConfig::new("patent", 12_000, 60_000, 6, 10, 10)
    }

    /// Mag-authors-like co-authorship graph (paper: 5.8M/27.7M, |C|=19, τ=9).
    pub fn mag_authors() -> Self {
        DatasetConfig::new("mag-authors", 18_000, 84_000, 19, 6, 11)
    }

    /// Wikipedia-like web-link graph (paper: 6.2M/178M, |C|=10, τ=20) —
    /// proportionally the densest labelled dataset.
    pub fn wikipedia() -> Self {
        DatasetConfig::new("wikipedia", 18_000, 270_000, 10, 8, 12)
    }

    /// YouTube-like social network (paper: 3.2M/9.4M, τ=8; LP only).
    pub fn youtube() -> Self {
        DatasetConfig::new("youtube", 9600, 30_000, 8, 8, 13)
    }

    /// Flickr-like social network (paper: 2.3M/33.1M, τ=6; LP only).
    pub fn flickr() -> Self {
        DatasetConfig::new("flickr", 7200, 102_000, 8, 6, 14)
    }

    /// Twitter-like graph for the scalability experiment (paper: 41.6M
    /// nodes / 1.5B edges, 8 random snapshots). The largest config here;
    /// still laptop-sized but ~10× the others.
    pub fn twitter() -> Self {
        DatasetConfig::new("twitter", 40_000, 400_000, 12, 8, 15)
    }
}

/// The three labelled datasets used for node classification (Exp. 1, 3).
pub fn all_nc_datasets() -> Vec<DatasetConfig> {
    vec![
        DatasetConfig::patent(),
        DatasetConfig::mag_authors(),
        DatasetConfig::wikipedia(),
    ]
}

/// The three datasets used for link prediction (Exp. 1, 3).
pub fn all_lp_datasets() -> Vec<DatasetConfig> {
    vec![
        DatasetConfig::youtube(),
        DatasetConfig::flickr(),
        DatasetConfig::mag_authors(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(DatasetConfig::patent().num_classes, 6);
        assert_eq!(DatasetConfig::mag_authors().num_classes, 19);
        assert_eq!(DatasetConfig::wikipedia().num_classes, 10);
    }

    #[test]
    fn density_ordering_mirrors_paper() {
        // Wikipedia is by far the densest labelled graph; Flickr denser
        // than YouTube; Twitter the largest overall.
        let avg = |c: &DatasetConfig| c.num_edges as f64 / c.num_nodes as f64;
        assert!(avg(&DatasetConfig::wikipedia()) > avg(&DatasetConfig::patent()));
        assert!(avg(&DatasetConfig::flickr()) > avg(&DatasetConfig::youtube()));
        assert!(DatasetConfig::twitter().num_edges > DatasetConfig::wikipedia().num_edges);
        assert!(DatasetConfig::twitter().num_nodes > 2 * DatasetConfig::wikipedia().num_nodes);
    }

    #[test]
    fn collections_have_three_each() {
        assert_eq!(all_nc_datasets().len(), 3);
        assert_eq!(all_lp_datasets().len(), 3);
    }
}
