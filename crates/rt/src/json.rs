//! Minimal JSON: a value type, a strict parser, a round-tripping writer,
//! and [`ToJson`]/[`FromJson`] codec traits with derive-replacement macros.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: pipeline
//! persistence (`core::persist`), experiment records (`bench::harness`), and
//! the experiment binaries. Design points:
//!
//! - **f64 round-trip by construction.** Finite floats are written with
//!   Rust's shortest round-trip formatting (`{:?}`, which always keeps a `.`
//!   or exponent), so `parse(write(x)) == x` bit-for-bit — the property the
//!   seed got from `serde_json`'s `float_roundtrip` feature. Non-finite
//!   values serialise as `null` and deserialise as NaN.
//! - **Integers stay integers.** Whole-number literals without `.`/`e` parse
//!   into [`Json::Int`], so `u64` version counters survive above 2^53.
//! - **Objects preserve insertion order** (a `Vec` of pairs, not a map), so
//!   output is deterministic given deterministic field order.

use std::collections::HashMap;
use std::fmt;

/// Codec failure: malformed text on parse, or a shape mismatch on decode.
#[derive(Debug, Clone)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A whole-number literal that fits `i64`.
    Int(i64),
    /// Any other numeric literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// An object from key/value pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field lookup (first match), `None` for absent keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64 (`Int` widens; `Null` is NaN — the writer's
    /// encoding of non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Integer value, if this is a whole-number literal.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Pretty serialisation (two-space indent). Compact serialisation is
    /// `to_string()`, via [`fmt::Display`].
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form and
                    // always keeps a '.' or exponent, so this re-parses as
                    // Num, never Int.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// `value[idx]`, `Json::Null` when out of bounds — mirrors `serde_json`.
impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// `value["key"]`, `Json::Null` when absent — mirrors `serde_json`.
impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return err("nesting too deep");
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return err("unpaired surrogate");
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("invalid codepoint".into()))?,
                            );
                        }
                        _ => return err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match s.parse::<f64>() {
            Ok(x) => Ok(Json::Num(x)),
            Err(_) => err(format!("invalid number '{s}'")),
        }
    }
}

// ---------------------------------------------------------------------------
// Codec traits.

/// Serialisation into a [`Json`] tree.
pub trait ToJson {
    /// This value as JSON.
    fn to_json(&self) -> Json;
}

/// Deserialisation from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Decode, failing on shape mismatches.
    fn from_json(j: &Json) -> Result<Self, JsonError>;

    /// The value an *absent* object field decodes to, if any. `None` means
    /// the field is required; `Option<T>` overrides this to permit absence
    /// (matching serde's implicit-`None` behaviour).
    fn on_missing() -> Option<Self> {
        None
    }
}

/// Decode object field `name` of `j` — the workhorse of
/// [`impl_json_struct!`](crate::impl_json_struct).
pub fn field<T: FromJson>(j: &Json, name: &str) -> Result<T, JsonError> {
    match j.get(name) {
        Some(v) => T::from_json(v).map_err(|e| JsonError(format!("field '{name}': {}", e.0))),
        None => T::on_missing().ok_or_else(|| JsonError(format!("missing field '{name}'"))),
    }
}

/// Like [`field`], but an absent key decodes to `T::default()` — the
/// replacement for `#[serde(default)]`.
pub fn field_or_default<T: FromJson + Default>(j: &Json, name: &str) -> Result<T, JsonError> {
    match j.get(name) {
        Some(v) => T::from_json(v).map_err(|e| JsonError(format!("field '{name}': {}", e.0))),
        None => Ok(T::default()),
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<bool, JsonError> {
        j.as_bool()
            .ok_or_else(|| JsonError(format!("expected bool, got {j}")))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<f64, JsonError> {
        j.as_f64()
            .ok_or_else(|| JsonError(format!("expected number, got {j}")))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<$t, JsonError> {
                let i = j.as_i64().ok_or_else(|| {
                    JsonError(format!("expected integer, got {j}"))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    JsonError(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, usize, i32, i64);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Values beyond i64 would wrap; they cannot occur for the version
        // counters and seeds this workspace stores, but degrade to the
        // nearest f64 rather than corrupting silently.
        if *self <= i64::MAX as u64 {
            Json::Int(*self as i64)
        } else {
            Json::Num(*self as f64)
        }
    }
}

impl FromJson for u64 {
    fn from_json(j: &Json) -> Result<u64, JsonError> {
        let i = j
            .as_i64()
            .ok_or_else(|| JsonError(format!("expected integer, got {j}")))?;
        u64::try_from(i).map_err(|_| JsonError(format!("integer {i} out of range for u64")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<String, JsonError> {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError(format!("expected string, got {j}")))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Vec<T>, JsonError> {
        j.as_array()
            .ok_or_else(|| JsonError(format!("expected array, got {j}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Option<T>, JsonError> {
        match j {
            Json::Null => Ok(None),
            v => Ok(Some(T::from_json(v)?)),
        }
    }

    fn on_missing() -> Option<Self> {
        Some(None)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<(A, B), JsonError> {
        match j.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => err(format!("expected 2-element array, got {j}")),
        }
    }
}

/// Types usable as JSON object keys (JSON keys are always strings).
pub trait JsonKey: Sized + Ord {
    /// Render as a key string.
    fn to_key(&self) -> String;
    /// Parse back from a key string.
    fn from_key(s: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<String, JsonError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<$t, JsonError> {
                s.parse().map_err(|_| JsonError(format!("bad integer key '{s}'")))
            }
        }
    )*};
}

impl_json_key_int!(u32, u64, usize, i64);

impl<K: JsonKey, V: ToJson, S: std::hash::BuildHasher> ToJson for HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        // Sort keys so serialised output is deterministic despite hash order.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: FromJson, S: std::hash::BuildHasher + Default> FromJson
    for HashMap<K, V, S>
{
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
                .collect(),
            _ => err(format!("expected object, got {j}")),
        }
    }
}

/// Generate [`ToJson`]/[`FromJson`] for a struct with named fields — the
/// replacement for `#[derive(Serialize, Deserialize)]`. Invoke in the
/// module defining the struct (private fields are fine).
///
/// ```
/// # use tsvd_rt::impl_json_struct;
/// # use tsvd_rt::json::{FromJson, ToJson};
/// struct Point { x: f64, y: f64 }
/// impl_json_struct!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($field: $crate::json::field(j, stringify!($field))?,)*
                })
            }
        }
    };
}

/// Generate [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// serialised as the variant-name string (serde's externally-tagged form).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($var:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $($ty::$var => $crate::json::Json::Str(stringify!($var).to_string()),)*
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match j.as_str() {
                    $(Some(stringify!($var)) => Ok($ty::$var),)*
                    _ => Err($crate::json::JsonError(format!(
                        "expected one of the {} variants, got {j}", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_documents() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        let v = Json::parse(r#"{"a": [1, 2.0, "x"], "b": {}}"#).unwrap();
        assert_eq!(v["a"][0], Json::Int(1));
        assert_eq!(v["a"][1], Json::Num(2.0));
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["b"], Json::Obj(vec![]));
        assert_eq!(v["missing"], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{not json at all",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), "é");
        assert_eq!(Json::parse(r#""😀""#).unwrap(), "😀");
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn float_round_trip_is_exact() {
        // The values serde_json's `float_roundtrip` feature exists for.
        let cases = [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            2.225_073_858_507_201e-308, // subnormal boundary
            1.797_693_134_862_315_7e308,
            -0.000_123_456_789,
            65_536.000_000_000_01,
            std::f64::consts::PI,
        ];
        for &x in &cases {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
        // Non-finite degrades to null (NaN on read), like serde_json.
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert!(f64::from_json(&Json::parse("null").unwrap())
            .unwrap()
            .is_nan());
    }

    #[test]
    fn integers_survive_beyond_f64_precision() {
        let big: u64 = (1 << 53) + 1;
        let text = big.to_json().to_string();
        assert_eq!(u64::from_json(&Json::parse(&text).unwrap()).unwrap(), big);
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{01} é 😀";
        let text = nasty.to_json().to_string();
        assert_eq!(Json::parse(&text).unwrap(), *nasty);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (7, -2.25)];
        let back: Vec<(u32, f64)> =
            FromJson::from_json(&Json::parse(&v.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(v, back);

        let mut m: HashMap<u32, f64> = HashMap::new();
        m.insert(3, 0.1);
        m.insert(1, 2.0);
        let back: HashMap<u32, f64> =
            FromJson::from_json(&Json::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(m, back);
        // Deterministic output despite hash iteration order.
        assert_eq!(m.to_json().to_string(), "{\"1\":2.0,\"3\":0.1}");

        let o: Option<f64> = None;
        assert_eq!(o.to_json(), Json::Null);
        let s: Option<f64> = Some(1.5);
        assert_eq!(Option::<f64>::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn struct_and_enum_macros() {
        #[derive(Debug, PartialEq, Default)]
        struct Rec {
            id: u32,
            score: f64,
            tags: Vec<String>,
            note: Option<String>,
        }
        impl_json_struct!(Rec {
            id,
            score,
            tags,
            note
        });

        #[derive(Debug, PartialEq)]
        enum Kind {
            A,
            B,
        }
        impl_json_enum!(Kind { A, B });

        let r = Rec {
            id: 9,
            score: 0.25,
            tags: vec!["x".into()],
            note: None,
        };
        let text = r.to_json().to_string_pretty();
        let back = Rec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(r, back);

        assert_eq!(Kind::A.to_json(), Json::Str("A".into()));
        assert_eq!(
            Kind::from_json(&Json::parse("\"B\"").unwrap()).unwrap(),
            Kind::B
        );
        assert!(Kind::from_json(&Json::parse("\"C\"").unwrap()).is_err());

        // Missing required field errors; missing Option field is None.
        let partial = Json::parse(r#"{"id": 1, "score": 2.0, "tags": []}"#).unwrap();
        let rec = Rec::from_json(&partial).unwrap();
        assert_eq!(rec.note, None);
        let broken = Json::parse(r#"{"id": 1}"#).unwrap();
        assert!(Rec::from_json(&broken).is_err());

        // field_or_default replaces #[serde(default)].
        let d: Rec = field_or_default(&Json::parse("{}").unwrap(), "absent").unwrap();
        assert_eq!(d, Rec::default());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::object([
            ("table", Json::Arr(vec![Json::Int(1), Json::Num(0.5)])),
            ("name", Json::Str("exp".into())),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }
}
