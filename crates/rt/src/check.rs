//! Seeded property testing: the workspace's `proptest` replacement.
//!
//! A property is a closure `Fn(&mut Gen) -> Result<(), String>`: it draws
//! its own input from the supplied deterministic generator and returns
//! `Err` (usually via [`ensure!`](crate::ensure)) when the property is
//! violated. The [`Checker`] runs the property over a budget of cases, each
//! derived from `(base seed, test name, case index)`, so:
//!
//! - every run of the suite executes the identical case list (deterministic
//!   CI), unless `TSVD_CHECK_SEED` overrides the base seed to explore;
//! - a failure report names the *case seed*, which replays that exact input
//!   regardless of its index — append it to the crate's regression file and
//!   it runs first on every subsequent invocation, forever;
//! - panics inside the property are caught and reported with the same seed,
//!   so an index-out-of-bounds in code under test is as diagnosable as a
//!   failed assertion.
//!
//! Regression files use the `proptest` line format the seed repo already
//! checked in (`cc <hex> # comment`): the leading 16 hex digits of each
//! `cc` entry are interpreted as the case seed to replay. Existing
//! `*.proptest-regressions` files therefore keep working as seed carriers.

use crate::rng::{splitmix64, SeedableRng, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Environment variable overriding the base seed (decimal or `0x…` hex).
pub const SEED_ENV: &str = "TSVD_CHECK_SEED";

/// Default number of cases when the caller does not specify one.
pub const DEFAULT_CASES: usize = 64;

/// Fixed base seed: runs are reproducible by default, exploration is opt-in
/// via [`SEED_ENV`].
const DEFAULT_BASE_SEED: u64 = 0x7533_7664_2d72_7431; // "tsvd-rt1"

/// A deterministic input generator handed to every property case.
///
/// Thin sugar over [`StdRng`]; the helpers mirror the `proptest` strategies
/// the old suites used (ranges, collections, probability flips).
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// A generator for an explicit seed (the harness does this for you).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG, for code that takes `&mut StdRng` directly.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn usize_in(&mut self, r: std::ops::Range<usize>) -> usize {
        use crate::rng::Rng;
        self.rng.gen_range(r)
    }

    /// Uniform `u32` in `lo..hi`.
    pub fn u32_in(&mut self, r: std::ops::Range<u32>) -> u32 {
        use crate::rng::Rng;
        self.rng.gen_range(r)
    }

    /// Uniform `u64` in `lo..hi`.
    pub fn u64_in(&mut self, r: std::ops::Range<u64>) -> u64 {
        use crate::rng::Rng;
        self.rng.gen_range(r)
    }

    /// Uniform `f64` in `lo..hi`.
    pub fn f64_in(&mut self, r: std::ops::Range<f64>) -> f64 {
        use crate::rng::Rng;
        self.rng.gen_range(r)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        use crate::rng::Rng;
        self.rng.gen::<bool>()
    }

    /// `true` with probability `p`.
    pub fn prob(&mut self, p: f64) -> bool {
        use crate::rng::Rng;
        self.rng.gen_bool(p)
    }

    /// A vector with uniformly chosen length in `len`, elements drawn by
    /// `f` — the analogue of `proptest::collection::vec`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A sorted, deduplicated `(key, value)` list with at most `max_len`
    /// entries and keys below `key_bound` — the analogue of
    /// `proptest::collection::btree_map` over `0..key_bound`.
    pub fn sparse_row(
        &mut self,
        key_bound: u32,
        max_len: usize,
        val: std::ops::Range<f64>,
    ) -> Vec<(u32, f64)> {
        let mut m = std::collections::BTreeMap::new();
        let n = self.usize_in(0..max_len + 1);
        for _ in 0..n {
            let k = self.u32_in(0..key_bound);
            let v = self.f64_in(val.clone());
            m.insert(k, v);
        }
        m.into_iter().collect()
    }
}

/// Seed for case `index` of test `name` under `base` — a pure function, so
/// a reported seed replays the same input with no index bookkeeping.
fn case_seed(base: u64, name: &str, index: u64) -> u64 {
    let mut h = base;
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ b as u64;
    }
    let mut s = h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Property-test runner: case budget, base seed, optional regression file.
pub struct Checker {
    cases: usize,
    base_seed: u64,
    regressions: Option<PathBuf>,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new(DEFAULT_CASES)
    }
}

impl Checker {
    /// A runner executing `cases` generated cases per property.
    pub fn new(cases: usize) -> Checker {
        let base_seed = std::env::var(SEED_ENV)
            .ok()
            .and_then(|s| {
                let s = s.trim();
                if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                }
            })
            .unwrap_or(DEFAULT_BASE_SEED);
        Checker {
            cases,
            base_seed,
            regressions: None,
        }
    }

    /// Replay the `cc` seeds in `path` (proptest regression-file format)
    /// before generating novel cases. A missing file is fine; it only has
    /// to exist once a failure has been recorded.
    pub fn with_regressions(mut self, path: impl Into<PathBuf>) -> Checker {
        self.regressions = Some(path.into());
        self
    }

    /// Run `prop` on every regression seed, then on `cases` fresh cases.
    /// Panics with a replayable seed report on the first failure.
    pub fn run(&self, name: &str, prop: impl Fn(&mut Gen) -> Result<(), String>) {
        for seed in self.regression_seeds() {
            self.run_case(name, seed, "regression", &prop);
        }
        for i in 0..self.cases {
            let seed = case_seed(self.base_seed, name, i as u64);
            self.run_case(name, seed, "generated", &prop);
        }
    }

    fn run_case(
        &self,
        name: &str,
        seed: u64,
        kind: &str,
        prop: &impl Fn(&mut Gen) -> Result<(), String>,
    ) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut gen = Gen::from_seed(seed);
            prop(&mut gen)
        }));
        let failure = match outcome {
            Ok(Ok(())) => return,
            Ok(Err(msg)) => msg,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                format!("panicked: {msg}")
            }
        };
        panic!(
            "property '{name}' failed on {kind} case (seed {seed:#018x}): {failure}\n\
             replay: add the line 'cc {seed:016x}' to this crate's regression file\n\
             (tests/proptests.proptest-regressions), or set {SEED_ENV} to explore."
        );
    }

    fn regression_seeds(&self) -> Vec<u64> {
        let Some(path) = &self.regressions else {
            return Vec::new();
        };
        parse_regression_file(path)
    }
}

/// Extract replay seeds from a proptest-format regression file: every line
/// `cc <hex…>` contributes its first 16 hex digits as a u64 seed.
pub fn parse_regression_file(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.len() < 16 {
                return None;
            }
            u64::from_str_radix(&hex[..16], 16).ok()
        })
        .collect()
}

/// Fail the surrounding property unless `cond` holds; formats like
/// `assert!` but returns `Err` so the harness can report the case seed.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("condition failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// [`ensure!`](crate::ensure) for equality, printing both sides on failure.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{} != {} ({a:?} vs {b:?})", stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("{} ({a:?} vs {b:?})", format!($($fmt)+)));
        }
    }};
}

/// Discard the current case (counts as a pass) unless `cond` holds — the
/// analogue of `prop_assume!`.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        Checker::new(32).run("always_true", |g| {
            count.set(count.get() + 1);
            let x = g.f64_in(0.0..1.0);
            ensure!((0.0..1.0).contains(&x));
            Ok(())
        });
        assert_eq!(count.get(), 32);
    }

    #[test]
    fn failing_property_reports_seed_and_replays() {
        // Find the seed the harness reports, then replay it directly.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new(64).run("finds_big", |g| {
                let v = g.usize_in(0..100);
                ensure!(v < 90, "drew {v}");
                Ok(())
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("finds_big"), "{msg}");
        let hex = msg.split("seed 0x").nth(1).unwrap()[..16].to_string();
        let seed = u64::from_str_radix(&hex, 16).unwrap();
        let mut gen = Gen::from_seed(seed);
        assert!(
            gen.usize_in(0..100) >= 90,
            "reported seed must replay the failure"
        );
    }

    #[test]
    fn panics_are_caught_and_attributed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new(4).run("explodes", |g| {
                let v: Vec<u32> = g.vec(0..3, |g| g.u32_in(0..10));
                let _ = v[10]; // out of bounds
                Ok(())
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("should have panicked"),
        };
        assert!(
            msg.contains("explodes") && msg.contains("panicked"),
            "{msg}"
        );
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let draw = |name: &str| {
            let out = std::cell::RefCell::new(Vec::new());
            Checker::new(8).run(name, |g| {
                out.borrow_mut().push(g.u64_in(0..u64::MAX));
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(draw("a"), draw("a"));
        assert_ne!(draw("a"), draw("b"), "different tests see different cases");
    }

    #[test]
    fn regression_file_parsing() {
        let dir = std::env::temp_dir().join(format!("tsvd_rt_regress_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\n\
             cc 98d4c6ccc99e405bf8eef8edc1a19fe9f888eb4d564d61df1dc7c868c5a507f4 # shrinks to x\n\
             cc 0000000000000001\n\
             cc short\n\
             not a seed line\n",
        )
        .unwrap();
        let seeds = parse_regression_file(&path);
        assert_eq!(seeds, vec![0x98d4_c6cc_c99e_405b, 1]);

        // Replayed before generated cases.
        let seen = std::cell::RefCell::new(Vec::new());
        Checker::new(2).with_regressions(&path).run("order", |g| {
            seen.borrow_mut().push(g.u64_in(0..u64::MAX));
            Ok(())
        });
        assert_eq!(seen.borrow().len(), 4);
        let mut direct = Gen::from_seed(0x98d4_c6cc_c99e_405b);
        assert_eq!(seen.borrow()[0], direct.u64_in(0..u64::MAX));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparse_row_sorted_distinct_bounded() {
        Checker::new(64).run("sparse_row_shape", |g| {
            let row = g.sparse_row(30, 10, 0.1..5.0);
            ensure!(row.len() <= 10);
            ensure!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "unsorted or duplicate keys"
            );
            ensure!(row.iter().all(|&(k, v)| k < 30 && (0.1..5.0).contains(&v)));
            Ok(())
        });
    }
}
