//! Timing harness: the workspace's `criterion` replacement.
//!
//! A bench target (`harness = false` under `[[bench]]`) constructs a
//! [`BenchHarness`] from the command line, registers closures with
//! [`BenchHarness::bench`], and calls [`BenchHarness::finish`]. Each
//! benchmark runs `warmup` throwaway iterations then `iters` timed ones;
//! the report prints min/mean/median/p95 and is written as JSON (via
//! [`crate::json`]) under `target/rt-bench/<suite>.json` so experiment
//! tooling can diff runs.
//!
//! Modes:
//! - default: 3 warmup + 15 timed iterations per benchmark;
//! - `--smoke` (or `TSVD_BENCH_SMOKE=1`): no warmup, 1 iteration — the CI
//!   gate that every bench target still *runs* without paying bench time;
//! - any other non-flag argument filters benchmarks by substring (the
//!   `cargo bench <filter>` convention). Unknown `--flags` are ignored so
//!   cargo's own harness arguments pass through harmlessly.

use crate::json::{Json, ToJson};
use std::time::Instant;

/// Re-export of the optimisation barrier benchmarks should wrap inputs and
/// outputs in (criterion's `black_box` equivalent).
pub use std::hint::black_box;

/// One benchmark's timing summary, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (p50).
    pub median_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
}

impl BenchResult {
    fn from_samples(name: &str, mut ns: Vec<f64>) -> BenchResult {
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let iters = ns.len();
        let mean = ns.iter().sum::<f64>() / iters as f64;
        // Linearly interpolated percentile over the sorted samples.
        let pct = |q: f64| {
            let pos = (iters as f64 - 1.0) * q;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            ns[lo] + (ns[hi] - ns[lo]) * (pos - lo as f64)
        };
        BenchResult {
            name: name.to_string(),
            iters,
            min_ns: ns[0],
            mean_ns: mean,
            median_ns: pct(0.50),
            p95_ns: pct(0.95),
        }
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::Str(self.name.clone())),
            ("iters", Json::Int(self.iters as i64)),
            ("min_ns", Json::Num(self.min_ns)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("median_ns", Json::Num(self.median_ns)),
            ("p95_ns", Json::Num(self.p95_ns)),
        ])
    }
}

/// Collects and runs a suite of benchmarks.
pub struct BenchHarness {
    suite: String,
    warmup: usize,
    iters: usize,
    filter: Option<String>,
    results: Vec<BenchResult>,
    /// Suite-level workload parameters (shard counts, batch windows, …)
    /// persisted in the JSON record alongside the thread count.
    params: Vec<(String, Json)>,
}

impl BenchHarness {
    /// A harness configured from `std::env::args` (see module docs).
    pub fn from_args(suite: &str) -> BenchHarness {
        let mut smoke = std::env::var("TSVD_BENCH_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--smoke" {
                smoke = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        let (warmup, iters) = if smoke { (0, 1) } else { (3, 15) };
        BenchHarness {
            suite: suite.to_string(),
            warmup,
            iters,
            filter,
            results: Vec::new(),
            params: Vec::new(),
        }
    }

    /// A harness with explicit warmup/iteration counts (tests, tooling).
    pub fn with_iters(suite: &str, warmup: usize, iters: usize) -> BenchHarness {
        assert!(iters >= 1, "need at least one timed iteration");
        BenchHarness {
            suite: suite.to_string(),
            warmup,
            iters,
            filter: None,
            results: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Record a workload parameter (shard count `R`, batch-window size, …)
    /// to be persisted in the suite's JSON record next to the thread count.
    /// Recording the same key again replaces the value.
    pub fn record_param(&mut self, key: &str, value: impl ToJson) {
        let v = value.to_json();
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            self.params.push((key.to_string(), v));
        }
    }

    /// Time `f`, unless the command-line filter excludes `name`. The
    /// closure's return value is passed through [`black_box`] so its
    /// computation cannot be optimised away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed().as_secs_f64() * 1e9);
        }
        let r = BenchResult::from_samples(name, samples);
        eprintln!(
            "bench {suite}/{name}: median {median} p95 {p95} (n={n})",
            suite = self.suite,
            median = fmt_ns(r.median_ns),
            p95 = fmt_ns(r.p95_ns),
            n = r.iters,
        );
        self.results.push(r);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The JSON record [`BenchHarness::finish`] persists. Carries the
    /// resolved pool thread count so perf trajectories stay comparable
    /// across machines and `TSVD_THREADS` settings.
    fn suite_record(&self) -> Json {
        Json::object([
            ("suite", Json::Str(self.suite.clone())),
            ("threads", Json::Int(crate::pool::num_threads() as i64)),
            (
                "params",
                Json::object(self.params.iter().map(|(k, v)| (k.clone(), v.clone()))),
            ),
            ("results", self.results.to_json()),
        ])
    }

    /// Print the summary table and persist `target/rt-bench/<suite>.json`.
    pub fn finish(self) {
        println!("\n## bench suite: {}\n", self.suite);
        println!(
            "| {:<40} | {:>6} | {:>12} | {:>12} | {:>12} |",
            "benchmark", "iters", "min", "median", "p95"
        );
        println!(
            "| {} | {} | {} | {} | {} |",
            "-".repeat(40),
            "-".repeat(6),
            "-".repeat(12),
            "-".repeat(12),
            "-".repeat(12)
        );
        for r in &self.results {
            println!(
                "| {:<40} | {:>6} | {:>12} | {:>12} | {:>12} |",
                r.name,
                r.iters,
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns),
            );
        }
        let record = self.suite_record();
        let dir = std::path::Path::new("target/rt-bench");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{}.json", self.suite));
            if std::fs::write(&path, record.to_string_pretty()).is_ok() {
                eprintln!("[saved {}]", path.display());
            }
        }
    }
}

/// Human-readable nanosecond count.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::FromJson;

    #[test]
    fn summary_statistics_are_order_statistics() {
        let r =
            BenchResult::from_samples("t", vec![5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0]);
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.median_ns, 5.5);
        assert!((r.p95_ns - 9.55).abs() < 1e-12, "{}", r.p95_ns);
        assert!((r.mean_ns - 5.5).abs() < 1e-12);
        assert_eq!(r.iters, 10);
    }

    #[test]
    fn harness_runs_and_records() {
        let mut h = BenchHarness::with_iters("unit", 1, 5);
        let mut calls = 0usize;
        h.bench("count_calls", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6, "1 warmup + 5 timed");
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].min_ns >= 0.0);
        assert!(h.results()[0].p95_ns >= h.results()[0].median_ns);
    }

    #[test]
    fn result_json_round_trips() {
        // The record type rt::bench emits must survive rt::json.
        let r = BenchResult {
            name: "kernel".into(),
            iters: 15,
            min_ns: 102.5,
            mean_ns: 110.25,
            median_ns: 108.0,
            p95_ns: 131.125,
        };
        let j = Json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(j["name"], "kernel");
        assert_eq!(i64::from_json(&j["iters"]).unwrap(), 15);
        assert_eq!(f64::from_json(&j["p95_ns"]).unwrap(), 131.125);
    }

    #[test]
    fn suite_record_carries_thread_count() {
        let mut h = BenchHarness::with_iters("unit", 0, 1);
        h.bench("noop", || 0);
        let j = Json::parse(&h.suite_record().to_string()).unwrap();
        assert_eq!(j["suite"], "unit");
        let threads = i64::from_json(&j["threads"]).unwrap();
        assert_eq!(threads, crate::pool::num_threads() as i64);
        assert!(threads >= 1);
    }

    #[test]
    fn suite_record_carries_workload_params() {
        let mut h = BenchHarness::with_iters("unit", 0, 1);
        h.bench("noop", || 0);
        h.record_param("shards", 4i64);
        h.record_param("batch_window", 512i64);
        h.record_param("shards", 8i64); // replaces, no duplicate key
        let j = Json::parse(&h.suite_record().to_string()).unwrap();
        assert_eq!(i64::from_json(&j["params"]["shards"]).unwrap(), 8);
        assert_eq!(i64::from_json(&j["params"]["batch_window"]).unwrap(), 512);
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
