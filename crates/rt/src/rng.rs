//! Seedable pseudo-random numbers: xoshiro256++ seeded via SplitMix64.
//!
//! A drop-in replacement for the slice of the `rand` 0.8 API this workspace
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::fill`], and the [`SliceRandom`] shuffle/choose
//! helpers. The generator is xoshiro256++ (Blackman & Vigna), whose 256-bit
//! state is expanded from the 64-bit seed with SplitMix64 — the standard
//! seeding recipe, which guarantees the all-zero state is unreachable.
//!
//! The stream produced by a given seed is part of this workspace's contract:
//! persisted experiments and regression seeds depend on it. Do not change
//! the constants or the seeding path.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for state expansion ([`StdRng::seed_from_u64`]) and for deriving
/// independent child seeds in the test harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw 64-bit generator interface. Everything else ([`Rng`],
/// [`SliceRandom`]) is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all 64 random bits (the `rand` crate's
/// `Standard` distribution, without the distribution object).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Types with uniform sampling over a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Map 64 random bits onto `0..span` by fixed-point multiplication.
///
/// The bias relative to exact rejection sampling is at most `span / 2^64` —
/// unobservable at the range sizes this workspace draws (node ids, block
/// indices), and the method is branch-free and deterministic.
#[inline]
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi - lo) as u64;
                lo + mul_shift(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(mul_shift(rng.next_u64(), span) as $u as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range");
        let unit = f64::sample(rng);
        // Clamp: lo + (hi-lo)*u can round up to hi for u just below 1.
        let v = lo + (hi - lo) * unit;
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// One value of type `T` from the full-width uniform distribution
    /// (`[0, 1)` for floats, all bit patterns for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from the half-open range `r`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, r: std::ops::Range<T>) -> T {
        T::sample_range(self, r.start, r.end)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample(self) < p
    }

    /// Fill `dest` with independent `[0, 1)` uniforms.
    fn fill(&mut self, dest: &mut [f64]) {
        for v in dest {
            *v = f64::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random helpers on slices: the `rand::seq::SliceRandom` surface we use.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = mul_shift(rng.next_u64(), i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[mul_shift(rng.next_u64(), self.len() as u64) as usize])
        }
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// 256 bits of state, period `2^256 − 1`, passes BigCrush; `next_u64` is a
/// handful of shifts and adds. The name mirrors the `rand` crate’s `StdRng` so the
/// ~280 ported call sites read identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// One standard-normal draw via the Box–Muller transform.
///
/// Two uniforms per call; the second Box–Muller output is discarded so the
/// stream position is a simple function of the call count (the same
/// trade-off the old `linalg::rng` helper made on top of `rand`).
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Sample u1 from (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_stream() {
        // Reference values computed from the published xoshiro256++ C code
        // with state seeded by SplitMix64(0): this pins the stream forever.
        let mut sm = 0u64;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        assert_eq!(s[0], 0xE220_A839_7B1D_CDAF);
        let mut rng = StdRng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut rng2 = StdRng::seed_from_u64(0);
        assert_eq!(first, rng2.next_u64());
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn same_seed_identical_stream_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And across value types drawn in the same order.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_uniform_in_range_and_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0..3.0f64);
            assert!((-3.0..3.0).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn standard_normal_moments() {
        // Port of the old linalg::rng moment test: mean ≈ 0, var ≈ 1.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_permutes_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");

        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        assert!([0usize; 0].choose(&mut rng).is_none());
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [2.0f64; 33];
        rng.fill(&mut buf);
        assert!(buf.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
