//! `tsvd-rt` — the runtime substrate every other crate in this workspace
//! stands on.
//!
//! DESIGN.md commits to building every substrate from scratch because there
//! is no usable crate stack in the offline build environment. This crate is
//! where that commitment lands for the *infrastructure* dependencies the
//! seed still declared: it replaces `rand` ([`rng`]), `serde`/`serde_json`
//! ([`json`]), `proptest` ([`check`]), and `criterion` ([`bench`]) with
//! in-tree implementations small enough to audit and deterministic by
//! construction. The workspace builds hermetically: `cargo build` touches no
//! registry, no network, no vendored sources.
//!
//! Determinism is the organising principle, not a nice-to-have: every
//! experiment in the Tree-SVD reproduction (and in the dynamic forward-push
//! line of work it follows) depends on seeded reproducibility. [`rng`] is a
//! counter-seeded xoshiro256++ whose stream is fixed forever by this file;
//! [`check`] derives every test case from an explicit seed and reports the
//! failing seed on error; [`bench`] never samples timers for control flow;
//! [`pool`] — the persistent work-stealing pool every parallel region in
//! the workspace dispatches through — places results by index so outputs
//! are bitwise identical for every thread count; [`exec`] is the hermetic
//! single-threaded event loop (mailbox + keyed deadlines, no tokio) that
//! the serving layer sequences its batching and flushing on.

pub mod bench;
pub mod check;
pub mod exec;
pub mod json;
pub mod pool;
pub mod rng;
