//! Persistent work-stealing worker pool — the workspace's parallel runtime.
//!
//! Every parallel region in the system (PPR pushes over sources, level-1
//! block SVDs, CSR matvec bands, dynamic-update fan-out) dispatches through
//! this module. The pool exists because the alternative — spawning fresh OS
//! threads per region via `std::thread::scope`, as the seed did — puts
//! hundreds of microseconds of spawn/join overhead on exactly the path that
//! must be millisecond-scale: small-batch dynamic updates (Algorithms 2
//! and 4). Workers are spawned once, on first use, and park on a condition
//! variable between jobs; dispatching a job costs one lock + wakeup.
//!
//! Architecture:
//!
//! * **Sizing** — [`num_threads`] participants: the `TSVD_THREADS` env var
//!   if set, else available parallelism capped at 16. Resolved once per
//!   process ([`OnceLock`]); the pool spawns `num_threads() − 1` workers and
//!   the *caller of each parallel region is the final participant*, so a
//!   region always makes progress even if every worker is busy elsewhere.
//! * **Injector queue** — jobs are published as `num_workers` copies of a
//!   stack-allocated job record on a global injector deque; each parked
//!   worker pops one copy and joins the job. The caller retracts unclaimed
//!   copies before returning, so a job record never outlives its region.
//! * **Per-participant chunk deques** — each job pre-deals its index range
//!   into per-participant deques of contiguous chunks. A participant pops
//!   from the front of its own deque (locality) and steals from the back of
//!   a victim's when empty (balance under skew, e.g. hub-heavy PPR sources).
//! * **Nested-call safety** — a parallel primitive invoked *from inside* a
//!   worker runs its region inline on that worker (caller-runs fallback).
//!   The outer region already occupies the pool; nesting therefore cannot
//!   deadlock and does not oversubscribe.
//! * **Panic propagation** — participant panics are caught, the first
//!   payload is stored on the job, and the caller re-raises it after every
//!   participant has left the region (so borrowed inputs are never touched
//!   after an unwind).
//!
//! Determinism: primitives place results by index (or hand each chunk a
//! disjoint output band), never reducing across participants, so outputs
//! are bitwise identical for every `TSVD_THREADS` setting — a property the
//! cross-crate `thread_determinism` test pins.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};

/// Number of pool participants: `TSVD_THREADS` env var if set, otherwise
/// the machine's available parallelism (capped at 16 — the workloads here
/// saturate memory bandwidth well before that). Resolved once per process
/// and memoized; later changes to the env var have no effect.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(s) = std::env::var("TSVD_THREADS") {
            if let Ok(n) = s.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

thread_local! {
    /// Set for pool worker threads; parallel primitives called on such a
    /// thread run inline (caller-runs fallback for nested regions).
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

/// A raw-pointer wrapper that asserts cross-thread use is externally
/// synchronised. The pool's primitives use it for disjoint-index writes
/// into caller-owned buffers; call sites with band-structured output (e.g.
/// CSR matvecs) use it the same way.
pub struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Wrap `p`. The wrapper itself is safe; dereferencing the pointer from
    /// [`SendPtr::get`] is where the caller's disjointness argument lives.
    pub fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    /// The wrapped pointer.
    pub fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the holder promises disjoint access (one writer per index/band),
// which is exactly the contract the pool's primitives maintain.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// The process-wide pool: injector queue + parked workers.
struct Pool {
    injector: Mutex<VecDeque<JobRef>>,
    work_ready: Condvar,
    /// Spawned worker threads (`num_threads() − 1`); the caller of each
    /// region is the extra participant, so slots run `0..=workers`.
    workers: usize,
}

impl Pool {
    /// The global pool, spawning its workers on first use.
    fn global() -> &'static Pool {
        static POOL: OnceLock<&'static Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let pool: &'static Pool = Box::leak(Box::new(Pool {
                injector: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
                workers: num_threads() - 1,
            }));
            for slot in 0..pool.workers {
                std::thread::Builder::new()
                    .name(format!("tsvd-pool-{slot}"))
                    .spawn(move || worker_loop(pool, slot))
                    .expect("spawn pool worker");
            }
            pool
        })
    }
}

fn worker_loop(pool: &'static Pool, slot: usize) {
    IN_POOL.with(|c| c.set(true));
    loop {
        let job = {
            let mut q = pool.injector.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool.work_ready.wait(q).unwrap();
            }
        };
        // SAFETY: the job record outlives every injected copy — the caller
        // retracts unclaimed copies and blocks until `pending` reaches zero
        // before its stack frame unwinds.
        unsafe { (*job.0).run(slot) };
    }
}

/// One copy of a job on the injector. The pointee lives on the stack of the
/// caller running [`run_participants`].
#[derive(Clone, Copy)]
struct JobRef(*const Job);
// SAFETY: see the lifetime argument on `worker_loop`/`run_participants`.
unsafe impl Send for JobRef {}

/// A job record: the participant body plus completion/panic state.
struct Job {
    /// Participant body: claims chunks until the job is drained. The
    /// `'static` is a lie erased in [`run_participants`], which blocks
    /// until every participant has left the closure.
    f: &'static (dyn Fn(usize) + Sync),
    /// Injected copies not yet finished (retracted copies are subtracted).
    pending: Mutex<usize>,
    done: Condvar,
    /// First participant panic, re-raised by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Job {
    /// Run the body as participant `slot`, then sign off.
    fn run(&self, slot: usize) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| (self.f)(slot))) {
            let mut stored = self.panic.lock().unwrap();
            if stored.is_none() {
                *stored = Some(p);
            }
        }
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Run `f(slot)` once per participant (workers on slots `0..workers`, the
/// caller on slot `workers`) and return when all of them have finished.
/// Panics from any participant are re-raised here, after the region quiesces.
fn run_participants(f: &(dyn Fn(usize) + Sync)) {
    let pool = Pool::global();
    if pool.workers == 0 || in_pool() {
        // Single-threaded, or nested inside a worker: caller-runs.
        f(pool.workers);
        return;
    }
    // SAFETY: the erased lifetime never escapes — this function blocks
    // until `pending == 0`, i.e. until no worker can still call `f`.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    };
    let job = Job {
        f: f_static,
        pending: Mutex::new(pool.workers),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    let jref = JobRef(&job);
    {
        let mut q = pool.injector.lock().unwrap();
        for _ in 0..pool.workers {
            q.push_back(jref);
        }
    }
    pool.work_ready.notify_all();
    // The caller is the last participant; its own panic (if any) is held
    // until the workers have drained out of the region.
    let mine = catch_unwind(AssertUnwindSafe(|| (job.f)(pool.workers)));
    let retracted = {
        let mut q = pool.injector.lock().unwrap();
        let before = q.len();
        q.retain(|j| !std::ptr::eq(j.0, jref.0));
        before - q.len()
    };
    {
        let mut pending = job.pending.lock().unwrap();
        *pending -= retracted;
        while *pending > 0 {
            pending = job.done.wait(pending).unwrap();
        }
    }
    if let Err(p) = mine {
        resume_unwind(p);
    }
    let stored = job.panic.lock().unwrap().take();
    if let Some(p) = stored {
        resume_unwind(p);
    }
}

/// Per-participant deques of contiguous index chunks: pop your own front,
/// steal a victim's back.
struct ChunkQueues {
    queues: Vec<Mutex<VecDeque<Range<usize>>>>,
}

impl ChunkQueues {
    /// Deal `0..n` into `slots` deques: participant `s` owns the `s`-th
    /// contiguous band, subdivided into `chunk`-sized ranges.
    fn deal(n: usize, chunk: usize, slots: usize) -> ChunkQueues {
        let per = n.div_ceil(slots);
        let queues = (0..slots)
            .map(|s| {
                let (lo, hi) = ((s * per).min(n), ((s + 1) * per).min(n));
                let mut q = VecDeque::new();
                let mut start = lo;
                while start < hi {
                    let end = (start + chunk).min(hi);
                    q.push_back(start..end);
                    start = end;
                }
                Mutex::new(q)
            })
            .collect();
        ChunkQueues { queues }
    }

    fn next(&self, slot: usize) -> Option<Range<usize>> {
        if let Some(r) = self.queues[slot].lock().unwrap().pop_front() {
            return Some(r);
        }
        for off in 1..self.queues.len() {
            let victim = (slot + off) % self.queues.len();
            if let Some(r) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(r);
            }
        }
        None
    }
}

/// Apply `body(&mut state, i)` for every `i` in `0..n`, with one lazily
/// created `init()` state per participating thread (amortises per-worker
/// scratch such as a dense push workspace). Indices are visited exactly
/// once; visit order across participants is unspecified, so `body`'s side
/// effects must be index-disjoint.
pub fn par_for_init<S, I, F>(n: usize, init: I, body: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    if n == 0 {
        return;
    }
    if num_threads() <= 1 || n < 2 || in_pool() {
        let mut s = init();
        for i in 0..n {
            body(&mut s, i);
        }
        return;
    }
    let slots = Pool::global().workers + 1;
    // Fine chunks so skewed work balances via stealing.
    let chunk = (n / (slots * 8)).max(1);
    let queues = ChunkQueues::deal(n, chunk, slots);
    run_participants(&|slot| {
        let mut scratch: Option<S> = None;
        while let Some(r) = queues.next(slot) {
            let s = scratch.get_or_insert_with(&init);
            for i in r {
                body(s, i);
            }
        }
    });
}

/// Apply `f(i)` for every `i` in `0..n`, collecting results in index order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_init(n, || (), move |(), i| f(i))
}

/// [`par_map`] with one `init()` scratch state per participating thread.
pub fn par_map_init<T, S, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    par_for_init(n, init, |s, i| {
        let v = f(s, i);
        // SAFETY: each index is visited exactly once, so writes are
        // disjoint; `out` outlives the region (par_for_init blocks).
        unsafe { *out_ptr.get().add(i) = Some(v) };
    });
    out.into_iter()
        .map(|v| v.expect("pool filled every slot"))
        .collect()
}

/// Apply `f(i)` for every `i` in `0..n` for its side effects.
pub fn par_for_each<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_for_init(n, || (), move |(), i| f(i));
}

/// Apply `f` to every element of `items` in parallel. The exclusive
/// borrows handed to `f` are disjoint, so no `Sync` bound is needed on `T`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let base = SendPtr::new(items.as_mut_ptr());
    par_for_each(items.len(), |i| {
        // SAFETY: each index is visited exactly once ⇒ the &mut are
        // disjoint, and `items` outlives the region.
        f(unsafe { &mut *base.get().add(i) });
    });
}

/// A handle to a computation started with [`background`]: join it (blocking
/// or not) to take the result. Dropping the handle detaches the task — it
/// still runs to completion, its result is discarded.
pub struct TaskHandle<T> {
    rx: mpsc::Receiver<std::thread::Result<T>>,
}

impl<T> TaskHandle<T> {
    /// Block until the task finishes and return its result. A panic inside
    /// the task is re-raised here (same contract as the pool primitives).
    pub fn join(self) -> T {
        match self.rx.recv() {
            Ok(Ok(v)) => v,
            Ok(Err(p)) => resume_unwind(p),
            Err(_) => unreachable!("courier dropped the result channel"),
        }
    }

    /// Non-blocking join: the result if the task has finished, otherwise
    /// the handle back, untouched. Panics propagate as in `join`.
    pub fn try_join(self) -> Result<T, TaskHandle<T>> {
        match self.rx.try_recv() {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(p)) => resume_unwind(p),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => {
                unreachable!("courier dropped the result channel")
            }
        }
    }
}

/// A boxed task body for a courier thread.
type BgJob = Box<dyn FnOnce() + Send>;

/// Parked courier threads, each represented by the sender of its job
/// channel. A courier re-registers itself here after finishing a job, so
/// steady-state `background` calls reuse threads instead of spawning.
static IDLE_COURIERS: Mutex<Vec<mpsc::Sender<BgJob>>> = Mutex::new(Vec::new());

fn courier_loop(tx: mpsc::Sender<BgJob>, rx: mpsc::Receiver<BgJob>) {
    // The courier holds a clone of its own sender, so the channel never
    // disconnects: couriers persist for the process lifetime, exactly like
    // pool workers. Courier threads are *not* pool participants — a task
    // body that calls a parallel primitive dispatches to the shared pool
    // rather than running inline, which is what lets a backgrounded region
    // and caller-side regions share the workers concurrently.
    while let Ok(job) = rx.recv() {
        job();
        IDLE_COURIERS.lock().unwrap().push(tx.clone());
    }
}

/// Run `f` concurrently with the caller and return a [`TaskHandle`] to its
/// result. The task body runs on a dedicated courier thread (lazily
/// spawned, reused across calls), **off** the pool: parallel primitives
/// invoked inside `f` fan out to the shared pool normally, interleaving
/// with any regions the caller dispatches meanwhile — both sides stay
/// deterministic because every primitive places results by index.
///
/// This is the detached-region primitive behind pipelined flushes: phase 2
/// of window `k` runs under `background` while the caller stages phase 1 of
/// window `k+1`, and the join is the ordered commit point.
pub fn background<T, F>(f: F) -> TaskHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (res_tx, res_rx) = mpsc::channel();
    let mut job: BgJob = Box::new(move || {
        let _ = res_tx.send(catch_unwind(AssertUnwindSafe(f)));
    });
    loop {
        let idle = IDLE_COURIERS.lock().unwrap().pop();
        match idle {
            Some(tx) => match tx.send(job) {
                Ok(()) => return TaskHandle { rx: res_rx },
                // Defensive: a dead courier's sender just falls out of the
                // idle stack and we try the next one.
                Err(mpsc::SendError(j)) => job = j,
            },
            None => break,
        }
    }
    let (tx, rx) = mpsc::channel();
    tx.send(job).expect("fresh courier channel");
    std::thread::Builder::new()
        .name("tsvd-courier".into())
        .spawn(move || courier_loop(tx, rx))
        .expect("spawn courier thread");
    TaskHandle { rx: res_rx }
}

/// Run `f(range)` over disjoint contiguous chunks covering `0..n`, each at
/// least `min_chunk` long (except possibly the last); serial (one chunk
/// `0..n`) when `n ≤ min_chunk` or only one thread is available.
pub fn par_chunks<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    if num_threads() <= 1 || n <= min_chunk || in_pool() {
        f(0..n);
        return;
    }
    let slots = Pool::global().workers + 1;
    let chunk = n.div_ceil(slots * 4).max(min_chunk.max(1));
    let queues = ChunkQueues::deal(n, chunk, slots);
    run_participants(&|slot| {
        while let Some(r) = queues.next(slot) {
            f(r);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(1000, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        // The inner region must complete correctly from inside an outer
        // region (caller-runs fallback on workers; no deadlock).
        let out = par_map(8, |i| par_map(50, |j| i * j).iter().sum::<usize>());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * (0..50).sum::<usize>());
        }
    }

    #[test]
    fn par_for_init_reuses_scratch_per_thread() {
        let inits = AtomicUsize::new(0);
        let visited: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        par_for_init(
            500,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0u8; 16] // stand-in for a per-worker workspace
            },
            |scratch, i| {
                scratch[0] ^= 1;
                visited[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(visited.iter().all(|v| v.load(Ordering::Relaxed) == 1));
        let n_inits = inits.load(Ordering::Relaxed);
        assert!(
            (1..=num_threads()).contains(&n_inits),
            "one scratch per participating thread, got {n_inits}"
        );
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        let mut items: Vec<usize> = (0..777).collect();
        par_for_each_mut(&mut items, |v| *v += 1000);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i + 1000);
        }
    }

    #[test]
    fn par_chunks_covers_everything_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        par_chunks(500, 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            par_map(100, |i| {
                if i == 37 {
                    panic!("boom in worker");
                }
                i
            })
        }));
        assert!(r.is_err(), "participant panic must reach the caller");
        // The pool must still dispatch jobs after a panicked region.
        let out = par_map(64, |i| i + 1);
        assert_eq!(out[63], 64);
    }

    #[test]
    fn concurrent_regions_from_user_threads() {
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    let out = par_map(300, move |i| i * t);
                    for (i, v) in out.iter().enumerate() {
                        assert_eq!(*v, i * t);
                    }
                });
            }
        });
    }

    #[test]
    fn background_returns_result_and_reuses_couriers() {
        // Sequential tasks must work (and exercise courier reuse: after the
        // first join an idle courier exists for the second call to claim).
        for round in 0..16u64 {
            let h = background(move || round * 3);
            assert_eq!(h.join(), round * 3);
        }
        // Concurrent handles resolve independently, in any join order.
        let a = background(|| 1u64);
        let b = background(|| 2u64);
        assert_eq!(b.join(), 2);
        assert_eq!(a.join(), 1);
    }

    #[test]
    fn background_try_join_round_trips() {
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let mut h = background(move || {
            gate_rx.recv().unwrap();
            7usize
        });
        // Not finished yet: the handle comes back.
        h = match h.try_join() {
            Ok(_) => panic!("task finished before the gate opened"),
            Err(h) => h,
        };
        gate_tx.send(()).unwrap();
        loop {
            match h.try_join() {
                Ok(v) => {
                    assert_eq!(v, 7);
                    break;
                }
                Err(back) => {
                    h = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    #[test]
    fn background_panic_propagates_on_join() {
        let h = background(|| -> usize { panic!("boom in courier") });
        let r = catch_unwind(AssertUnwindSafe(|| h.join()));
        assert!(r.is_err(), "task panic must reach the joiner");
        // The courier machinery survives a panicked task.
        assert_eq!(background(|| 5usize).join(), 5);
    }

    #[test]
    fn background_task_can_use_pool_concurrently_with_caller() {
        // The backgrounded body and the caller both dispatch pool regions at
        // the same time; results must be placed by index on both sides.
        let h = background(|| par_map(200, |i| i * 2));
        let mine = par_map(200, |i| i * 3);
        let theirs = h.join();
        for i in 0..200 {
            assert_eq!(theirs[i], i * 2);
            assert_eq!(mine[i], i * 3);
        }
    }

    #[test]
    fn num_threads_memoized_and_positive() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }
}
