//! A hermetic single-threaded event loop — the asynchrony substrate under
//! the serving layer (`tsvd-serve`), built with nothing but `std`.
//!
//! There is no tokio in this workspace (and no external crates at all), but
//! a request-oriented serving front still needs *reactive* control flow:
//! "flush the pending batch when it reaches N events **or** when its oldest
//! event is W milliseconds old, whichever comes first". This module provides
//! exactly that shape and nothing more:
//!
//! * [`Mailbox`] — a cloneable sender; any thread can post messages. A
//!   mailbox is unbounded by default ([`EventLoop::new`]) or bounded with
//!   blocking-send backpressure ([`EventLoop::bounded`]) — the shape the
//!   serving layer's network connection handlers use so a bursty client
//!   cannot queue unbounded memory ahead of its dispatcher;
//! * [`EventLoop`] — the single-threaded reactor that owns the receiving
//!   end. [`EventLoop::run`] blocks on the mailbox with a timeout equal to
//!   the nearest armed timer deadline, delivering [`Event::Message`] and
//!   [`Event::Timer`] values to a handler closure in a single thread — so
//!   handler state needs no locks;
//! * [`Timers`] — keyed one-shot deadlines ([`Instant`]-based). Re-arming a
//!   key replaces its deadline; a fired or cancelled key is disarmed. The
//!   handler gets `&mut Timers` on every event, which is how count-triggered
//!   logic cancels a pending deadline flush and vice versa.
//!
//! Ordering guarantees: messages are delivered in send order; a timer fires
//! only when its deadline has passed *and* every message sent before the
//! deadline was delivered first (due timers are checked before each mailbox
//! wait). When every mailbox clone is dropped, remaining armed timers still
//! fire at their deadlines; the loop returns once no message can ever
//! arrive and no timer is armed, or when the handler returns [`Flow::Stop`].
//!
//! CPU-heavy work inside a handler should be dispatched through
//! [`crate::pool`] — the reactor thread is for sequencing, not for number
//! crunching.

use std::collections::HashMap;
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::time::{Duration, Instant};

/// What the reactor delivers to the handler.
#[derive(Debug)]
pub enum Event<M> {
    /// A message posted through a [`Mailbox`].
    Message(M),
    /// The timer armed under this key reached its deadline.
    Timer(u64),
}

/// Handler verdict: keep running or shut the loop down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep processing events.
    Continue,
    /// Return from [`EventLoop::run`] immediately.
    Stop,
}

/// Outcome of a non-blocking [`Mailbox::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// The message was enqueued.
    Sent,
    /// The mailbox is bounded and currently full (message returned unsent).
    Full,
    /// The event loop is gone; no message can ever be delivered.
    Closed,
}

/// The sending channel behind a [`Mailbox`]: unbounded or bounded.
enum Tx<M> {
    Unbounded(mpsc::Sender<M>),
    Bounded(mpsc::SyncSender<M>),
}

impl<M> Clone for Tx<M> {
    fn clone(&self) -> Self {
        match self {
            Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
        }
    }
}

/// Cloneable sending half of an event loop's mailbox.
pub struct Mailbox<M> {
    tx: Tx<M>,
}

impl<M> std::fmt::Debug for Mailbox<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.tx {
            Tx::Unbounded(_) => f.write_str("Mailbox(unbounded)"),
            Tx::Bounded(_) => f.write_str("Mailbox(bounded)"),
        }
    }
}

// Manual impl: `M` itself need not be `Clone` for the handle to be.
impl<M> Clone for Mailbox<M> {
    fn clone(&self) -> Self {
        Mailbox {
            tx: self.tx.clone(),
        }
    }
}

impl<M> Mailbox<M> {
    /// Post a message; returns `false` if the event loop is gone. On a
    /// bounded mailbox this **blocks** while the queue is full — the
    /// backpressure that keeps a bursty producer from outrunning its
    /// consumer by unbounded memory.
    pub fn send(&self, msg: M) -> bool {
        match &self.tx {
            Tx::Unbounded(tx) => tx.send(msg).is_ok(),
            Tx::Bounded(tx) => tx.send(msg).is_ok(),
        }
    }

    /// Post without blocking. An unbounded mailbox is never
    /// [`SendStatus::Full`]; a bounded one reports `Full` instead of
    /// waiting, so callers can shed load or retry on their own schedule.
    pub fn try_send(&self, msg: M) -> SendStatus {
        match &self.tx {
            Tx::Unbounded(tx) => match tx.send(msg) {
                Ok(()) => SendStatus::Sent,
                Err(_) => SendStatus::Closed,
            },
            Tx::Bounded(tx) => match tx.try_send(msg) {
                Ok(()) => SendStatus::Sent,
                Err(TrySendError::Full(_)) => SendStatus::Full,
                Err(TrySendError::Disconnected(_)) => SendStatus::Closed,
            },
        }
    }
}

/// Keyed one-shot deadlines owned by an event loop.
#[derive(Debug, Default)]
pub struct Timers {
    armed: HashMap<u64, Instant>,
}

impl Timers {
    /// Arm (or re-arm, replacing the deadline of) timer `key`.
    pub fn arm(&mut self, key: u64, deadline: Instant) {
        self.armed.insert(key, deadline);
    }

    /// Arm timer `key` to fire `delay` from now.
    pub fn arm_after(&mut self, key: u64, delay: Duration) {
        self.arm(key, Instant::now() + delay);
    }

    /// Disarm timer `key`; returns whether it was armed.
    pub fn cancel(&mut self, key: u64) -> bool {
        self.armed.remove(&key).is_some()
    }

    /// Whether timer `key` is currently armed.
    pub fn is_armed(&self, key: u64) -> bool {
        self.armed.contains_key(&key)
    }

    /// The earliest armed `(key, deadline)`, ties broken by smaller key so
    /// firing order is deterministic.
    fn next(&self) -> Option<(u64, Instant)> {
        self.armed
            .iter()
            .map(|(&k, &d)| (k, d))
            .min_by_key(|&(k, d)| (d, k))
    }

    /// Pop one due timer (earliest deadline first), if any.
    fn pop_due(&mut self, now: Instant) -> Option<u64> {
        let (key, deadline) = self.next()?;
        if deadline <= now {
            self.armed.remove(&key);
            Some(key)
        } else {
            None
        }
    }
}

/// The single-threaded reactor: a mailbox receiver plus [`Timers`].
#[derive(Debug)]
pub struct EventLoop<M> {
    rx: mpsc::Receiver<M>,
    timers: Timers,
}

impl<M> EventLoop<M> {
    /// A fresh loop and the first handle to its (unbounded) mailbox.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (Mailbox<M>, EventLoop<M>) {
        let (tx, rx) = mpsc::channel();
        (
            Mailbox {
                tx: Tx::Unbounded(tx),
            },
            EventLoop {
                rx,
                timers: Timers::default(),
            },
        )
    }

    /// A fresh loop whose mailbox holds at most `capacity` undelivered
    /// messages: [`Mailbox::send`] blocks while full (backpressure) and
    /// [`Mailbox::try_send`] reports [`SendStatus::Full`]. Delivery order
    /// and timer semantics are identical to [`EventLoop::new`].
    pub fn bounded(capacity: usize) -> (Mailbox<M>, EventLoop<M>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (
            Mailbox {
                tx: Tx::Bounded(tx),
            },
            EventLoop {
                rx,
                timers: Timers::default(),
            },
        )
    }

    /// Arm a timer before the loop starts (e.g. a periodic bootstrap tick).
    pub fn timers(&mut self) -> &mut Timers {
        &mut self.timers
    }

    /// Run the reactor on the current thread until the handler returns
    /// [`Flow::Stop`], or until every mailbox is dropped and no timer is
    /// armed (see module docs for the delivery guarantees).
    pub fn run<H>(mut self, mut handler: H)
    where
        H: FnMut(&mut Timers, Event<M>) -> Flow,
    {
        let mut disconnected = false;
        loop {
            // Deliver every due timer before blocking again.
            while let Some(key) = self.timers.pop_due(Instant::now()) {
                if handler(&mut self.timers, Event::Timer(key)) == Flow::Stop {
                    return;
                }
            }
            let event = match self.timers.next() {
                None => {
                    if disconnected {
                        return; // nothing can ever happen again
                    }
                    match self.rx.recv() {
                        Ok(m) => Event::Message(m),
                        Err(_) => return,
                    }
                }
                Some((_, deadline)) => {
                    if disconnected {
                        // No messages can arrive: just wait out the deadline.
                        let now = Instant::now();
                        if deadline > now {
                            std::thread::sleep(deadline - now);
                        }
                        continue; // due-timer drain above delivers it
                    }
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(timeout) {
                        Ok(m) => Event::Message(m),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => {
                            disconnected = true;
                            continue;
                        }
                    }
                }
            };
            if handler(&mut self.timers, event) == Flow::Stop {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_delivered_in_send_order() {
        let (tx, ev) = EventLoop::new();
        for i in 0..100 {
            assert!(tx.send(i));
        }
        drop(tx);
        let mut seen = Vec::new();
        ev.run(|_, e| {
            if let Event::Message(m) = e {
                seen.push(m);
            }
            Flow::Continue
        });
        assert_eq!(seen, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn stop_halts_immediately() {
        let (tx, ev) = EventLoop::new();
        for i in 0..10 {
            tx.send(i);
        }
        let mut count = 0;
        ev.run(|_, _| {
            count += 1;
            if count == 3 {
                Flow::Stop
            } else {
                Flow::Continue
            }
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn timer_fires_after_deadline_even_when_disconnected() {
        let (tx, ev) = EventLoop::new();
        tx.send(());
        drop(tx);
        let start = Instant::now();
        let delay = Duration::from_millis(20);
        let mut fired = false;
        ev.run(|timers, e| match e {
            Event::Message(()) => {
                timers.arm_after(7, delay);
                Flow::Continue
            }
            Event::Timer(key) => {
                assert_eq!(key, 7);
                fired = true;
                Flow::Stop
            }
        });
        assert!(fired);
        assert!(start.elapsed() >= delay, "timer fired early");
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let (tx, ev) = EventLoop::new();
        tx.send(1);
        tx.send(2);
        drop(tx);
        let mut timer_events = 0;
        ev.run(|timers, e| {
            match e {
                Event::Message(1) => timers.arm_after(1, Duration::from_millis(5)),
                Event::Message(2) => {
                    assert!(timers.cancel(1));
                    assert!(!timers.is_armed(1));
                }
                Event::Timer(_) => timer_events += 1,
                _ => {}
            }
            Flow::Continue
        });
        assert_eq!(timer_events, 0, "cancelled timer fired");
    }

    #[test]
    fn rearming_replaces_deadline() {
        let (tx, ev) = EventLoop::new();
        tx.send(());
        drop(tx);
        let start = Instant::now();
        let mut fired_at = None;
        ev.run(|timers, e| match e {
            Event::Message(()) => {
                timers.arm_after(3, Duration::from_millis(500));
                timers.arm_after(3, Duration::from_millis(10)); // replaces
                Flow::Continue
            }
            Event::Timer(3) => {
                fired_at = Some(start.elapsed());
                Flow::Stop
            }
            Event::Timer(_) => Flow::Continue,
        });
        let at = fired_at.expect("timer fired");
        assert!(at < Duration::from_millis(400), "old deadline used: {at:?}");
    }

    #[test]
    fn messages_from_other_threads_interleave_with_timers() {
        let (tx, ev) = EventLoop::new();
        let sender = std::thread::spawn(move || {
            for i in 0..20 {
                tx.send(i);
                std::thread::sleep(Duration::from_millis(1));
            }
            // Mailbox drops here; the loop must drain and exit.
        });
        let mut messages = 0;
        let mut ticks = 0;
        let mut ev = ev;
        ev.timers().arm_after(0, Duration::from_millis(2));
        ev.run(|timers, e| {
            match e {
                Event::Message(_) => messages += 1,
                Event::Timer(0) => {
                    ticks += 1;
                    if ticks < 50 {
                        timers.arm_after(0, Duration::from_millis(2));
                    }
                }
                Event::Timer(_) => {}
            }
            Flow::Continue
        });
        sender.join().unwrap();
        assert_eq!(messages, 20);
        assert!(ticks >= 1, "periodic tick never fired");
    }

    #[test]
    fn loop_exits_when_idle_and_disconnected() {
        let (tx, ev) = EventLoop::<u8>::new();
        drop(tx);
        ev.run(|_, _| Flow::Continue); // must return, not hang
    }

    #[test]
    fn same_deadline_timers_fire_in_key_order() {
        // Ties on the deadline must break deterministically by smaller
        // key — the network front arms per-connection timers and relies
        // on a stable firing order for reproducible tests.
        let (tx, ev) = EventLoop::new();
        tx.send(());
        drop(tx);
        let mut fired = Vec::new();
        ev.run(|timers, e| {
            match e {
                Event::Message(()) => {
                    let deadline = Instant::now() + Duration::from_millis(5);
                    for key in [9u64, 1, 5, 3] {
                        timers.arm(key, deadline);
                    }
                }
                Event::Timer(key) => fired.push(key),
            }
            Flow::Continue
        });
        assert_eq!(fired, vec![1, 3, 5, 9], "tie-break must be by key");
    }

    #[test]
    fn multiple_timers_fire_in_deadline_order_after_mailbox_drop() {
        // Armed timers survive every mailbox handle being dropped and
        // still fire, earliest deadline first; the loop exits once the
        // last one has fired.
        let (tx, ev) = EventLoop::new();
        tx.send(());
        drop(tx);
        let start = Instant::now();
        let mut fired = Vec::new();
        ev.run(|timers, e| {
            match e {
                Event::Message(()) => {
                    timers.arm_after(30, Duration::from_millis(30));
                    timers.arm_after(10, Duration::from_millis(10));
                    timers.arm_after(20, Duration::from_millis(20));
                }
                Event::Timer(key) => fired.push(key),
            }
            Flow::Continue
        });
        assert_eq!(fired, vec![10, 20, 30]);
        assert!(start.elapsed() >= Duration::from_millis(30), "fired early");
    }

    #[test]
    fn rearm_inside_timer_handler_keeps_disconnected_loop_alive() {
        // A timer handler re-arming after disconnect must keep ticking
        // (the sleep-out path), and cancelling must let the loop exit.
        let (tx, ev) = EventLoop::<u8>::new();
        drop(tx);
        let mut ev = ev;
        ev.timers().arm_after(1, Duration::from_millis(2));
        let mut ticks = 0;
        ev.run(|timers, e| {
            if let Event::Timer(1) = e {
                ticks += 1;
                if ticks < 4 {
                    timers.arm_after(1, Duration::from_millis(2));
                }
            }
            Flow::Continue
        });
        assert_eq!(ticks, 4);
    }

    #[test]
    fn bounded_mailbox_delivers_burst_in_order_under_backpressure() {
        // A burst far larger than the queue: blocking sends throttle the
        // producer, nothing is lost, order is preserved.
        let (tx, ev) = EventLoop::bounded(4);
        let producer = std::thread::spawn(move || {
            for i in 0..200u32 {
                assert!(tx.send(i), "loop vanished mid-burst");
            }
        });
        let mut seen = Vec::new();
        ev.run(|_, e| {
            if let Event::Message(m) = e {
                // Make the consumer slower than the producer so the queue
                // is actually full most of the time.
                if m % 16 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
                seen.push(m);
            }
            Flow::Continue
        });
        producer.join().unwrap();
        assert_eq!(seen, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, ev) = EventLoop::bounded(2);
        assert_eq!(tx.try_send(1), SendStatus::Sent);
        assert_eq!(tx.try_send(2), SendStatus::Sent);
        assert_eq!(tx.try_send(3), SendStatus::Full, "capacity 2 exceeded");
        drop(ev); // receiver gone: everything is now Closed
        assert_eq!(tx.try_send(4), SendStatus::Closed);
        assert!(!tx.send(5), "blocking send must fail, not hang");

        let (utx, uev) = EventLoop::new();
        assert_eq!(utx.try_send(1), SendStatus::Sent, "unbounded never Full");
        drop(uev);
        assert_eq!(utx.try_send(2), SendStatus::Closed);
    }
}
