//! Property-based tests for the linear-algebra kernels: every invariant a
//! numerics stack must keep, checked on arbitrary inputs.

use tsvd_linalg::qr::qr;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::sketch::FrequentDirections;
use tsvd_linalg::svd::{exact_svd, exact_truncated_svd};
use tsvd_linalg::{
    svd_core_patch, svd_update_rows, CsrMatrix, DenseMatrix, RandomizedSvdConfig, RowDelta,
};
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::rng::{SeedableRng, StdRng};
use tsvd_rt::{ensure, ensure_eq};

/// A dense matrix with bounded entries and dims in `1..=max_dim`.
fn dense_matrix(g: &mut Gen, max_dim: usize) -> DenseMatrix {
    let m = g.usize_in(1..max_dim + 1);
    let n = g.usize_in(1..max_dim + 1);
    let data: Vec<f64> = (0..m * n).map(|_| g.f64_in(-10.0..10.0)).collect();
    DenseMatrix::from_vec(m, n, data)
}

/// A sparse matrix as per-row (col, val) lists.
fn sparse_matrix(g: &mut Gen, max_rows: usize, max_cols: usize) -> CsrMatrix {
    let m = g.usize_in(1..max_rows + 1);
    let n = g.usize_in(1..max_cols + 1);
    let rows: Vec<Vec<(u32, f64)>> = (0..m)
        .map(|_| g.sparse_row(n as u32, n.min(12), -5.0..5.0))
        .collect();
    CsrMatrix::from_rows(n, &rows)
}

#[test]
fn qr_reconstructs_and_q_is_orthonormal() {
    Checker::new(64).run("qr_reconstructs_and_q_is_orthonormal", |g| {
        let a = dense_matrix(g, 20);
        // Thin QR needs rows ≥ cols.
        let a = if a.rows() >= a.cols() {
            a
        } else {
            a.transpose()
        };
        let f = qr(&a);
        let back = f.q.mul(&f.r);
        ensure!(back.sub(&a).max_abs() < 1e-8 * (1.0 + a.max_abs()));
        let gram = f.q.t_mul(&f.q);
        ensure!(gram.sub(&DenseMatrix::identity(a.cols())).max_abs() < 1e-8);
        // R upper-triangular.
        for i in 0..f.r.rows() {
            for j in 0..i {
                ensure!(f.r.get(i, j).abs() < 1e-10);
            }
        }
        Ok(())
    });
}

#[test]
fn svd_reconstructs_any_matrix() {
    Checker::new(64).run("svd_reconstructs_any_matrix", |g| {
        let a = dense_matrix(g, 24);
        let svd = exact_svd(&a);
        let back = svd.reconstruct();
        ensure!(
            back.sub(&a).max_abs() < 1e-7 * (1.0 + a.max_abs()),
            "reconstruction error {}",
            back.sub(&a).max_abs()
        );
        // Descending, non-negative spectrum.
        ensure!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        ensure!(svd.s.iter().all(|&x| x >= 0.0));
        Ok(())
    });
}

#[test]
fn svd_frobenius_identity() {
    Checker::new(64).run("svd_frobenius_identity", |g| {
        // ‖A‖_F² == Σ σ_i² — the identity the lazy-update residual
        // bookkeeping relies on.
        let a = dense_matrix(g, 16);
        let svd = exact_svd(&a);
        let frob_sq = a.frobenius_norm().powi(2);
        let spec_sq: f64 = svd.s.iter().map(|s| s * s).sum();
        ensure!((frob_sq - spec_sq).abs() < 1e-7 * (1.0 + frob_sq));
        Ok(())
    });
}

#[test]
fn eckart_young_optimality() {
    Checker::new(64).run("eckart_young_optimality", |g| {
        // Truncated SVD residual equals the tail of the spectrum.
        let a = dense_matrix(g, 14);
        let d = g.usize_in(1..6);
        let svd = exact_svd(&a);
        let t = exact_truncated_svd(&a, d);
        let resid = t.reconstruct().sub(&a).frobenius_norm();
        let tail: f64 = svd.s.iter().skip(d).map(|s| s * s).sum::<f64>().sqrt();
        ensure!((resid - tail).abs() < 1e-6 * (1.0 + tail));
        Ok(())
    });
}

#[test]
fn transpose_has_same_spectrum() {
    Checker::new(64).run("transpose_has_same_spectrum", |g| {
        let a = dense_matrix(g, 16);
        let s1 = exact_svd(&a);
        let s2 = exact_svd(&a.transpose());
        for (x, y) in s1.s.iter().zip(&s2.s) {
            ensure!((x - y).abs() < 1e-8 * (1.0 + x));
        }
        Ok(())
    });
}

#[test]
fn randomized_svd_matches_exact_on_small() {
    Checker::new(64).run("randomized_svd_matches_exact_on_small", |g| {
        // With rank ≥ min-dim the randomized SVD is exact (up to rounding).
        let a = dense_matrix(g, 16);
        let full = a.rows().min(a.cols());
        let cfg = RandomizedSvdConfig {
            rank: full,
            oversample: 6,
            power_iters: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let rs = randomized_svd(&a, &cfg, &mut rng);
        let ex = exact_svd(&a);
        for (x, y) in rs.s.iter().zip(&ex.s) {
            ensure!((x - y).abs() < 1e-6 * (1.0 + y), "{x} vs {y}");
        }
        Ok(())
    });
}

#[test]
fn sparse_dense_svd_agree() {
    Checker::new(64).run("sparse_dense_svd_agree", |g| {
        let m = sparse_matrix(g, 12, 20);
        let cfg = RandomizedSvdConfig {
            rank: 4,
            oversample: 6,
            power_iters: 2,
        };
        let s1 = randomized_svd(&m, &cfg, &mut StdRng::seed_from_u64(2));
        let s2 = randomized_svd(&m.to_dense(), &cfg, &mut StdRng::seed_from_u64(2));
        for (x, y) in s1.s.iter().zip(&s2.s) {
            ensure!((x - y).abs() < 1e-8 * (1.0 + y));
        }
        Ok(())
    });
}

#[test]
fn csr_products_match_dense() {
    Checker::new(64).run("csr_products_match_dense", |g| {
        let m = sparse_matrix(g, 10, 15);
        let k = g.usize_in(1..5);
        let b = DenseMatrix::from_fn(m.cols(), k, |i, j| ((i * 3 + j * 7) % 5) as f64 - 2.0);
        let fast = m.mul_dense(&b);
        let slow = m.to_dense().mul(&b);
        ensure!(fast.sub(&slow).max_abs() < 1e-10);
        let bt = DenseMatrix::from_fn(m.rows(), k, |i, j| ((i + j) % 4) as f64 - 1.5);
        let fast_t = m.t_mul_dense(&bt);
        let slow_t = m.to_dense().t_mul(&bt);
        ensure!(fast_t.sub(&slow_t).max_abs() < 1e-10);
        Ok(())
    });
}

#[test]
fn csr_column_slices_partition() {
    Checker::new(64).run("csr_column_slices_partition", |g| {
        let m = sparse_matrix(g, 8, 30);
        let cut = g.u32_in(1..29).min(m.cols() as u32 - 1);
        let a = m.slice_cols(0, cut);
        let b = m.slice_cols(cut, m.cols() as u32);
        ensure_eq!(a.nnz() + b.nnz(), m.nnz());
        let total = a.frobenius_norm_sq() + b.frobenius_norm_sq();
        ensure!((total - m.frobenius_norm_sq()).abs() < 1e-9 * (1.0 + total));
        Ok(())
    });
}

/// `c` sparse row deltas with distinct rows, `c ≤ min(m, n, 4)`.
fn row_deltas(g: &mut Gen, m: usize, n: usize) -> Vec<RowDelta> {
    let c = g.usize_in(1..m.min(n).min(4) + 1);
    let mut pool: Vec<usize> = (0..m).collect();
    (0..c)
        .map(|_| {
            let i = g.usize_in(0..pool.len());
            RowDelta {
                row: pool.swap_remove(i),
                entries: g.sparse_row(n as u32, n.min(6), -4.0..4.0),
            }
        })
        .collect()
}

#[test]
fn svd_update_residual_qr_stays_orthonormal() {
    Checker::new(64).run("svd_update_residual_qr_stays_orthonormal", |g| {
        // The out-of-subspace residual block (I − UUᵀ)·S that svd_update
        // QR-factorises keeps an orthonormal Q within 1e-10, and Q·R
        // reproduces the block — the invariant that lets [U Qp] act as an
        // orthonormal expanded basis.
        let a = dense_matrix(g, 16);
        let m = a.rows();
        let k = g.usize_in(1..m.min(a.cols()).min(5) + 1);
        let svd = exact_svd(&a).truncate(k);
        let deltas = row_deltas(g, m, a.cols());
        let c = deltas.len();
        let mut s_mat = DenseMatrix::zeros(m, c);
        for (i, d) in deltas.iter().enumerate() {
            s_mat.set(d.row, i, 1.0);
        }
        let p = s_mat.sub(&svd.u.mul(&svd.u.t_mul(&s_mat)));
        let f = qr(&p);
        let gram = f.q.t_mul(&f.q);
        ensure!(
            gram.sub(&DenseMatrix::identity(c)).max_abs() < 1e-10,
            "Q gram deviates by {}",
            gram.sub(&DenseMatrix::identity(c)).max_abs()
        );
        ensure!(f.q.mul(&f.r).sub(&p).max_abs() < 1e-10 * (1.0 + p.max_abs()));
        Ok(())
    });
}

#[test]
fn svd_update_then_rediagonalize_is_idempotent() {
    Checker::new(64).run("svd_update_then_rediagonalize_is_idempotent", |g| {
        // An incremental update already yields a diagonalised factorisation:
        // exactly re-diagonalising its reconstruction changes nothing — same
        // spectrum, same low-rank matrix.
        let a = dense_matrix(g, 12);
        let k = g.usize_in(1..a.rows().min(a.cols()).min(5) + 1);
        let svd = exact_svd(&a).truncate(k);
        let deltas = row_deltas(g, a.rows(), a.cols());
        let up = svd_update_rows(&svd, &deltas, k);
        let back = up.reconstruct();
        let again = exact_svd(&back).truncate(up.rank());
        for (x, y) in up.s.iter().zip(&again.s) {
            ensure!((x - y).abs() < 1e-8 * (1.0 + y), "{x} vs {y}");
        }
        ensure!(
            again.reconstruct().sub(&back).max_abs() < 1e-8 * (1.0 + back.max_abs()),
            "re-diagonalisation moved the matrix"
        );
        Ok(())
    });
}

#[test]
fn svd_update_zero_delta_is_bitwise_noop() {
    Checker::new(64).run("svd_update_zero_delta_is_bitwise_noop", |g| {
        // Deltas with no entries leave both kernels bitwise untouched.
        let a = dense_matrix(g, 12);
        let k = g.usize_in(1..a.rows().min(a.cols()).min(5) + 1);
        let svd = exact_svd(&a).truncate(k);
        let deltas: Vec<RowDelta> = (0..g.usize_in(0..3))
            .map(|i| RowDelta {
                row: i % a.rows(),
                entries: Vec::new(),
            })
            .collect();
        for out in [
            svd_update_rows(&svd, &deltas, k),
            svd_core_patch(&svd, &deltas),
        ] {
            ensure_eq!(out.s, svd.s);
            ensure!(out.u.sub(&svd.u).max_abs() == 0.0);
            ensure!(out.vt.sub(&svd.vt).max_abs() == 0.0);
        }
        Ok(())
    });
}

#[test]
fn frequent_directions_covariance_bound() {
    Checker::new(64).run("frequent_directions_covariance_bound", |g| {
        let rows: Vec<Vec<f64>> = g.vec(1..40, |g| (0..10).map(|_| g.f64_in(-3.0..3.0)).collect());
        let l = g.usize_in(2..8);
        let mut fd = FrequentDirections::new(l, 10);
        let mut frob_sq = 0.0;
        for r in &rows {
            fd.append_dense(r);
            frob_sq += r.iter().map(|v| v * v).sum::<f64>();
        }
        let b = fd.sketch();
        // ‖AᵀA − BᵀB‖_F ≤ √10 · ‖A‖_F²/l is implied by the spectral bound;
        // check the (weaker) max-entry form which needs no eigensolver.
        let mut a_cov = DenseMatrix::zeros(10, 10);
        for r in &rows {
            for i in 0..10 {
                for j in 0..10 {
                    let v = a_cov.get(i, j) + r[i] * r[j];
                    a_cov.set(i, j, v);
                }
            }
        }
        let b_cov = b.t_mul(&b);
        let err = a_cov.sub(&b_cov).max_abs();
        ensure!(
            err <= frob_sq / l as f64 + 1e-9,
            "{err} > {}",
            frob_sq / l as f64
        );
        Ok(())
    });
}
