//! Property-based tests for the linear-algebra kernels: every invariant a
//! numerics stack must keep, checked on arbitrary inputs.

use proptest::prelude::*;
use tsvd_linalg::qr::qr;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::sketch::FrequentDirections;
use tsvd_linalg::svd::{exact_svd, exact_truncated_svd};
use tsvd_linalg::{CsrMatrix, DenseMatrix, RandomizedSvdConfig};

/// Strategy: a dense matrix with bounded entries and dims in `1..=max_dim`.
fn dense_matrix(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0..10.0f64, m * n)
            .prop_map(move |data| DenseMatrix::from_vec(m, n, data))
    })
}

/// Strategy: a sparse matrix as per-row (col, val) lists.
fn sparse_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::vec((0..n as u32, -5.0..5.0f64), 0..=n.min(12)),
            m,
        )
        .prop_map(move |rows| CsrMatrix::from_rows(n, &rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in dense_matrix(20)) {
        // Thin QR needs rows ≥ cols.
        let a = if a.rows() >= a.cols() { a } else { a.transpose() };
        let f = qr(&a);
        let back = f.q.mul(&f.r);
        prop_assert!(back.sub(&a).max_abs() < 1e-8 * (1.0 + a.max_abs()));
        let g = f.q.t_mul(&f.q);
        prop_assert!(g.sub(&DenseMatrix::identity(a.cols())).max_abs() < 1e-8);
        // R upper-triangular.
        for i in 0..f.r.rows() {
            for j in 0..i {
                prop_assert!(f.r.get(i, j).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn svd_reconstructs_any_matrix(a in dense_matrix(24)) {
        let svd = exact_svd(&a);
        let back = svd.reconstruct();
        prop_assert!(
            back.sub(&a).max_abs() < 1e-7 * (1.0 + a.max_abs()),
            "reconstruction error {}", back.sub(&a).max_abs()
        );
        // Descending, non-negative spectrum.
        prop_assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        prop_assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in dense_matrix(16)) {
        // ‖A‖_F² == Σ σ_i² — the identity the lazy-update residual
        // bookkeeping relies on.
        let svd = exact_svd(&a);
        let frob_sq = a.frobenius_norm().powi(2);
        let spec_sq: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((frob_sq - spec_sq).abs() < 1e-7 * (1.0 + frob_sq));
    }

    #[test]
    fn eckart_young_optimality(a in dense_matrix(14), d in 1usize..6) {
        // Truncated SVD residual equals the tail of the spectrum, and no
        // projection does better (checked against a random projector).
        let svd = exact_svd(&a);
        let t = exact_truncated_svd(&a, d);
        let resid = t.reconstruct().sub(&a).frobenius_norm();
        let tail: f64 = svd.s.iter().skip(d).map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((resid - tail).abs() < 1e-6 * (1.0 + tail));
    }

    #[test]
    fn transpose_has_same_spectrum(a in dense_matrix(16)) {
        let s1 = exact_svd(&a);
        let s2 = exact_svd(&a.transpose());
        for (x, y) in s1.s.iter().zip(&s2.s) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x));
        }
    }

    #[test]
    fn randomized_svd_matches_exact_on_small(a in dense_matrix(16)) {
        // With rank ≥ min-dim the randomized SVD is exact (up to rounding).
        let full = a.rows().min(a.cols());
        let cfg = RandomizedSvdConfig { rank: full, oversample: 6, power_iters: 2 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let rs = randomized_svd(&a, &cfg, &mut rng);
        let ex = exact_svd(&a);
        for (x, y) in rs.s.iter().zip(&ex.s) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y), "{x} vs {y}");
        }
    }

    #[test]
    fn sparse_dense_svd_agree(m in sparse_matrix(12, 20)) {
        let cfg = RandomizedSvdConfig { rank: 4, oversample: 6, power_iters: 2 };
        use rand::SeedableRng;
        let s1 = randomized_svd(&m, &cfg, &mut rand::rngs::StdRng::seed_from_u64(2));
        let s2 = randomized_svd(&m.to_dense(), &cfg, &mut rand::rngs::StdRng::seed_from_u64(2));
        for (x, y) in s1.s.iter().zip(&s2.s) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + y));
        }
    }

    #[test]
    fn csr_products_match_dense(m in sparse_matrix(10, 15), k in 1usize..5) {
        let b = DenseMatrix::from_fn(m.cols(), k, |i, j| ((i * 3 + j * 7) % 5) as f64 - 2.0);
        let fast = m.mul_dense(&b);
        let slow = m.to_dense().mul(&b);
        prop_assert!(fast.sub(&slow).max_abs() < 1e-10);
        let bt = DenseMatrix::from_fn(m.rows(), k, |i, j| ((i + j) % 4) as f64 - 1.5);
        let fast_t = m.t_mul_dense(&bt);
        let slow_t = m.to_dense().t_mul(&bt);
        prop_assert!(fast_t.sub(&slow_t).max_abs() < 1e-10);
    }

    #[test]
    fn csr_column_slices_partition(m in sparse_matrix(8, 30), cut in 1u32..29) {
        let cut = cut.min(m.cols() as u32 - 1);
        let a = m.slice_cols(0, cut);
        let b = m.slice_cols(cut, m.cols() as u32);
        prop_assert_eq!(a.nnz() + b.nnz(), m.nnz());
        let total = a.frobenius_norm_sq() + b.frobenius_norm_sq();
        prop_assert!((total - m.frobenius_norm_sq()).abs() < 1e-9 * (1.0 + total));
    }

    #[test]
    fn frequent_directions_covariance_bound(
        rows in proptest::collection::vec(
            proptest::collection::vec(-3.0..3.0f64, 10),
            1..40,
        ),
        l in 2usize..8,
    ) {
        let mut fd = FrequentDirections::new(l, 10);
        let mut frob_sq = 0.0;
        for r in &rows {
            fd.append_dense(r);
            frob_sq += r.iter().map(|v| v * v).sum::<f64>();
        }
        let b = fd.sketch();
        // ‖AᵀA − BᵀB‖_F ≤ √10 · ‖A‖_F²/l is implied by the spectral bound;
        // check the (weaker) max-entry form which needs no eigensolver.
        let mut a_cov = DenseMatrix::zeros(10, 10);
        for r in &rows {
            for i in 0..10 {
                for j in 0..10 {
                    let v = a_cov.get(i, j) + r[i] * r[j];
                    a_cov.set(i, j, v);
                }
            }
        }
        let b_cov = b.t_mul(&b);
        let err = a_cov.sub(&b_cov).max_abs();
        prop_assert!(err <= frob_sq / l as f64 + 1e-9, "{err} > {}", frob_sq / l as f64);
    }
}
