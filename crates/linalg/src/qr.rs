//! Householder QR factorisation (thin variant).
//!
//! `A = Q·R` with `Q` an `m × n` matrix with orthonormal columns and `R`
//! upper-triangular `n × n` (requires `m ≥ n`). This is the
//! orthonormalisation kernel used by the randomized range finder and by the
//! tall-matrix pre-reduction in [`crate::svd`].

use crate::dense::DenseMatrix;

/// Result of a thin QR factorisation.
#[derive(Debug, Clone)]
pub struct QrResult {
    /// `m × n` with orthonormal columns.
    pub q: DenseMatrix,
    /// `n × n` upper-triangular.
    pub r: DenseMatrix,
}

/// Thin Householder QR of `a` (`m ≥ n`).
///
/// Numerically stable (Householder reflections, not Gram–Schmidt); cost
/// `O(m·n²)`.
pub fn qr(a: &DenseMatrix) -> QrResult {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "thin QR needs rows ≥ cols (got {m}×{n})");
    // Work on a column-major copy: Householder ops walk columns.
    let mut w = a.transpose(); // n × m, row i of w = column i of a
    let mut taus = Vec::with_capacity(n);
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build Householder vector for column k, rows k..m. The column is
        // pre-scaled by its max-abs entry: a nearly-dependent column can
        // leave a remainder around 1e-160 whose *squared* norm underflows
        // to zero, which would turn τ = 2/‖v‖² into inf. The reflector
        // H = I − τ·v·vᵀ is exact for any scaling of v with τ = 2/‖v‖²,
        // so scaling changes nothing algebraically.
        let col = &w.row(k)[k..];
        let scale = col.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if scale == 0.0 {
            // Zero column: identity reflector.
            taus.push(0.0);
            vs.push(vec![0.0; col.len()]);
            continue;
        }
        let mut v: Vec<f64> = col.iter().map(|x| x / scale).collect();
        let norm_x = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let alpha = if v[0] >= 0.0 { -norm_x } else { norm_x };
        v[0] -= alpha;
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        let tau = if vnorm_sq == 0.0 { 0.0 } else { 2.0 / vnorm_sq };
        // Apply reflector H = I − τ v vᵀ to columns k..n (rows k..m).
        for j in k..n {
            let dot: f64 = v.iter().zip(&w.row(j)[k..]).map(|(a, b)| a * b).sum();
            let f = tau * dot;
            for (vi, wj) in v.iter().zip(&mut w.row_mut(j)[k..]) {
                *wj -= f * vi;
            }
        }
        taus.push(tau);
        vs.push(v);
    }

    // Extract R from the transformed matrix (upper triangle).
    let mut r = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r.set(i, j, w.get(j, i));
        }
    }

    // Form thin Q by applying reflectors to the first n columns of I,
    // in reverse order. Work column-major again.
    let mut qt = DenseMatrix::zeros(n, m); // row j = column j of Q
    for j in 0..n {
        qt.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        let v = &vs[k];
        for j in 0..n {
            let dot: f64 = v.iter().zip(&qt.row(j)[k..]).map(|(a, b)| a * b).sum();
            let f = tau * dot;
            for (vi, qj) in v.iter().zip(&mut qt.row_mut(j)[k..]) {
                *qj -= f * vi;
            }
        }
    }
    QrResult {
        q: qt.transpose(),
        r,
    }
}

/// Orthonormalise the columns of `a`: returns just the thin `Q` factor.
pub fn orthonormalize(a: &DenseMatrix) -> DenseMatrix {
    qr(a).q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::SeedableRng;
    use tsvd_rt::rng::StdRng;

    fn check_orthonormal(q: &DenseMatrix, tol: f64) {
        let g = q.t_mul(q);
        let eye = DenseMatrix::identity(q.cols());
        assert!(
            g.sub(&eye).max_abs() < tol,
            "QᵀQ deviates from identity by {}",
            g.sub(&eye).max_abs()
        );
    }

    #[test]
    fn reconstructs_small_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let QrResult { q, r } = qr(&a);
        check_orthonormal(&q, 1e-12);
        let back = q.mul(&r);
        assert!(back.sub(&a).max_abs() < 1e-12);
        // R upper-triangular
        assert!(r.get(1, 0).abs() < 1e-14);
    }

    #[test]
    fn random_matrices_reconstruct() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, n) in &[(10usize, 10usize), (50, 20), (31, 7), (5, 1)] {
            let a = gaussian_matrix(&mut rng, m, n);
            let QrResult { q, r } = qr(&a);
            check_orthonormal(&q, 1e-10);
            assert!(q.mul(&r).sub(&a).max_abs() < 1e-10, "({m},{n})");
        }
    }

    #[test]
    fn rank_deficient_input() {
        // Column 2 = 2 × column 1.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let QrResult { q, r } = qr(&a);
        assert!(q.mul(&r).sub(&a).max_abs() < 1e-12);
        // Second diagonal of R collapses.
        assert!(r.get(1, 1).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(4, 2);
        let QrResult { q, r } = qr(&a);
        assert!(r.max_abs() < 1e-15);
        assert_eq!(q.rows(), 4);
        assert_eq!(q.cols(), 2);
    }

    #[test]
    fn orthonormalize_idempotent_on_q() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gaussian_matrix(&mut rng, 20, 6);
        let q1 = orthonormalize(&a);
        let q2 = orthonormalize(&q1);
        check_orthonormal(&q2, 1e-12);
        // Spans agree: Q2ᵀQ1 is unitary ⇒ |det| related check via norms.
        let p = q2.t_mul(&q1);
        let pp = p.t_mul(&p);
        assert!(pp.sub(&DenseMatrix::identity(6)).max_abs() < 1e-10);
    }
}
