//! # tsvd-linalg
//!
//! Self-contained dense/sparse linear algebra for the Tree-SVD reproduction.
//! No linear-algebra crate exists in the offline set, so everything the paper
//! needs is implemented here:
//!
//! * [`DenseMatrix`] — row-major dense matrix with the usual products;
//! * [`CsrMatrix`] — compressed sparse row matrix (the proximity matrix and
//!   adjacency operators);
//! * [`qr`] — Householder QR (thin Q), the orthonormalisation kernel of
//!   randomized SVD;
//! * [`eigen`] — cyclic Jacobi eigensolver for small symmetric matrices;
//! * [`svd`] — exact truncated SVD via one-sided Jacobi (with a QR
//!   pre-reduction for tall matrices);
//! * [`randomized`] — Halko–Martinsson–Tropp randomized SVD, including the
//!   sparse variant the paper uses at Tree-SVD's first level (cost
//!   `O(nnz·(d+p))` plus small dense work);
//! * [`lanczos`] — Golub–Kahan–Lanczos bidiagonalization with full
//!   reorthogonalisation, the deterministic alternative for sparse
//!   truncated SVDs (level-1 ablation);
//! * [`svd_update`] — incremental truncated-SVD updates from sparse row
//!   deltas (Brand/Zha–Simon), the cheap tiers of the dynamic layer's
//!   three-tier update policy;
//! * [`sketch`] — Frequent-Directions matrix sketching (the FREDE baseline);
//! * [`topk`] — cache-blocked, deterministic top-k similarity scan (the
//!   serving layer's tier-1 query kernel);
//! * [`rng`] — Gaussian sampling via Box–Muller on top of `rand`.
//!
//! All numerics are `f64`. Matrices are small enough in this system
//! (`|S| ≤ a few thousand` rows) that cache-oblivious blocking is not needed;
//! the hot loops are laid out for contiguous row access instead.

mod csr;
mod dense;
pub mod eigen;
pub(crate) mod gr;
pub mod lanczos;
pub mod qr;
pub mod randomized;
pub mod rng;
pub mod sketch;
pub mod svd;
pub mod svd_update;
pub mod topk;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use randomized::{MatrixProduct, RandomizedSvdConfig};
pub use svd::Svd;
pub use svd_update::{svd_core_patch, svd_update_rows, RowDelta};
