//! Cache-blocked top-k similarity scan over a row-major matrix.
//!
//! The serving layer's tier-1 query kernel: given a query vector `q` and a
//! row-major matrix (the live embedding), find the `k` rows with the
//! largest dot/cosine score. The matrix is walked in **panels** of rows
//! sized so a panel plus the query stays inside L1/L2, and inside each
//! panel four rows are accumulated per pass with four independent
//! accumulators (FMA-friendly instruction-level parallelism; `q` is
//! streamed once per four rows instead of once per row). Candidates feed a
//! fixed-size binary min-heap whose root is the *worst* kept hit, so each
//! row costs one comparison in the common case.
//!
//! Determinism is a hard contract, matching the rest of the system:
//!
//! * each row's dot product is reduced **sequentially** over `j` — never
//!   split across threads — so every score is bitwise equal to the naive
//!   `q.iter().zip(row).map(|(a, b)| a * b).sum()`;
//! * the total order on hits is `score` descending ([`f64::total_cmp`])
//!   with ties broken by **ascending row**, so the kept set (and its
//!   sorted output order) is unique regardless of offer order;
//! * the panel split depends only on `dim`, never on the thread count, and
//!   panels merge through the same total order — results are identical at
//!   any `TSVD_THREADS`.
//!
//! Cosine is expressed as scaling: `score = (dot * q_scale) *
//! row_scale[row]` with precomputed inverse norms (see
//! `tsvd-serve`'s query layer). That parenthesisation is canonical — every
//! caller must use the same one for bitwise agreement.

use tsvd_rt::pool;

/// One scored candidate row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Row index in the scanned matrix.
    pub row: u32,
    /// Similarity score (dot product, optionally scaled).
    pub score: f64,
}

/// The canonical strict total order on hits: is `(a_score, a_row)` a
/// strictly better hit than `(b_score, b_row)`? Higher score wins;
/// [`f64::total_cmp`] keeps NaN/±0 deterministic; ties go to the lower
/// row index.
#[inline]
pub fn better(a_score: f64, a_row: u32, b_score: f64, b_row: u32) -> bool {
    match a_score.total_cmp(&b_score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a_row < b_row,
    }
}

/// Comparator form of [`better`]: best hits first.
#[inline]
pub fn cmp_hits(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then(a.row.cmp(&b.row))
}

/// Fixed-capacity top-k accumulator: a binary min-heap (under [`better`])
/// whose root is the worst kept hit. `offer` is O(1) for rows that do not
/// make the cut and O(log k) otherwise; no allocation after the first
/// [`reset`](TopK::reset) at a given `k`.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: Vec<Hit>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Clear kept hits and set the capacity to `k`, reusing the buffer.
    pub fn reset(&mut self, k: usize) {
        self.heap.clear();
        if self.heap.capacity() < k {
            self.heap.reserve(k);
        }
        self.k = k;
    }

    /// Number of hits currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The worst kept hit once `k` hits are held (`None` while filling):
    /// the pruning threshold for index tiers.
    pub fn worst(&self) -> Option<Hit> {
        if self.k > 0 && self.heap.len() == self.k {
            Some(self.heap[0])
        } else {
            None
        }
    }

    /// Offer one candidate; keeps it iff it beats the current worst (or
    /// the heap is still filling).
    #[inline]
    pub fn offer(&mut self, score: f64, row: u32) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Hit { row, score });
            self.sift_up(self.heap.len() - 1);
        } else {
            let root = self.heap[0];
            if better(score, row, root.score, root.row) {
                self.heap[0] = Hit { row, score };
                self.sift_down(0);
            }
        }
    }

    /// Offer every hit kept by `other` (panel → global merge).
    pub fn merge_from(&mut self, other: &TopK) {
        for h in &other.heap {
            self.offer(h.score, h.row);
        }
    }

    /// Write the kept hits into `out`, best first, clearing the heap.
    /// `out` is cleared first (reused across queries without allocating).
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Hit>) {
        out.clear();
        out.extend_from_slice(&self.heap);
        out.sort_unstable_by(cmp_hits);
        self.heap.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = (i - 1) / 2;
            let (n, pa) = (self.heap[i], self.heap[p]);
            // Parent must be the worse one; swap while it is better.
            if better(pa.score, pa.row, n.score, n.row) {
                self.heap.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut w = i;
            if l < n
                && better(
                    self.heap[w].score,
                    self.heap[w].row,
                    self.heap[l].score,
                    self.heap[l].row,
                )
            {
                w = l;
            }
            if r < n
                && better(
                    self.heap[w].score,
                    self.heap[w].row,
                    self.heap[r].score,
                    self.heap[r].row,
                )
            {
                w = r;
            }
            if w == i {
                break;
            }
            self.heap.swap(i, w);
            i = w;
        }
    }
}

/// Rows per panel: target ~32 KiB of matrix data per panel (half a typical
/// L1d), multiple of 4 for the unrolled inner loop, clamped to `[4, 512]`.
/// Depends only on `dim` — never on the thread count.
pub fn panel_rows(dim: usize) -> usize {
    let raw = (32 * 1024) / (8 * dim.max(1));
    let raw = raw.clamp(4, 512);
    (raw - raw % 4).max(4)
}

/// One panel's work slot: its row range plus a private heap, so the
/// parallel scan writes only disjoint state.
#[derive(Debug)]
struct PanelTask {
    lo: usize,
    hi: usize,
    topk: TopK,
}

/// Reusable workspace for [`topk_scan`]: per-panel heaps, the global merge
/// heap. Steady-state queries at a fixed `(rows, dim, k)` allocate
/// nothing.
#[derive(Debug)]
pub struct ScanScratch {
    panels: Vec<PanelTask>,
    global: TopK,
    /// Force the single-threaded path (no pool dispatch, no per-panel
    /// state): used by the bench-side allocation counter to assert the
    /// kernel proper is allocation-free, and by anyone wanting the scan
    /// off the shared pool.
    pub serial: bool,
}

impl Default for ScanScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanScratch {
    pub fn new() -> Self {
        ScanScratch {
            panels: Vec::new(),
            global: TopK::new(0),
            serial: false,
        }
    }
}

/// Scan rows `lo..hi` of `data` (row-major, `dim` columns), offering every
/// row except `exclude` to `topk`. Four rows per pass with independent
/// accumulators; each row's reduction is sequential over `j` (bitwise
/// equal to the naive dot).
#[allow(clippy::too_many_arguments)]
fn scan_range(
    data: &[f64],
    dim: usize,
    lo: usize,
    hi: usize,
    q: &[f64],
    exclude: Option<u32>,
    q_scale: f64,
    row_scale: Option<&[f64]>,
    topk: &mut TopK,
) {
    #[inline]
    fn offer(
        topk: &mut TopK,
        row: usize,
        dot: f64,
        exclude: Option<u32>,
        q_scale: f64,
        row_scale: Option<&[f64]>,
    ) {
        let row = row as u32;
        if exclude == Some(row) {
            return;
        }
        let score = match row_scale {
            // Canonical parenthesisation — see module docs.
            Some(rs) => (dot * q_scale) * rs[row as usize],
            None => dot,
        };
        topk.offer(score, row);
    }

    let mut r = lo;
    while r + 4 <= hi {
        let base = r * dim;
        let r0 = &data[base..base + dim];
        let r1 = &data[base + dim..base + 2 * dim];
        let r2 = &data[base + 2 * dim..base + 3 * dim];
        let r3 = &data[base + 3 * dim..base + 4 * dim];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for j in 0..dim {
            let qj = q[j];
            a0 += qj * r0[j];
            a1 += qj * r1[j];
            a2 += qj * r2[j];
            a3 += qj * r3[j];
        }
        offer(topk, r, a0, exclude, q_scale, row_scale);
        offer(topk, r + 1, a1, exclude, q_scale, row_scale);
        offer(topk, r + 2, a2, exclude, q_scale, row_scale);
        offer(topk, r + 3, a3, exclude, q_scale, row_scale);
        r += 4;
    }
    while r < hi {
        let row = &data[r * dim..(r + 1) * dim];
        let mut acc = 0.0f64;
        for j in 0..dim {
            acc += q[j] * row[j];
        }
        offer(topk, r, acc, exclude, q_scale, row_scale);
        r += 1;
    }
}

/// Blocked top-k scan over the whole matrix (see module docs). Results are
/// written into `out`, best hit first, bitwise identical at any thread
/// count and to [`topk_scan_naive`]. `q_scale`/`row_scale` implement
/// cosine scoring (`None` = plain dot product).
#[allow(clippy::too_many_arguments)]
pub fn topk_scan(
    data: &[f64],
    rows: usize,
    dim: usize,
    q: &[f64],
    k: usize,
    exclude: Option<u32>,
    q_scale: f64,
    row_scale: Option<&[f64]>,
    scratch: &mut ScanScratch,
    out: &mut Vec<Hit>,
) {
    assert_eq!(data.len(), rows * dim, "data/rows/dim mismatch");
    assert_eq!(q.len(), dim, "query dimension mismatch");
    if let Some(rs) = row_scale {
        assert_eq!(rs.len(), rows, "row_scale length mismatch");
    }
    let pr = panel_rows(dim);
    let npanels = rows.div_ceil(pr).max(1);
    if scratch.serial || npanels == 1 || pool::num_threads() <= 1 {
        scratch.global.reset(k);
        scan_range(
            data,
            dim,
            0,
            rows,
            q,
            exclude,
            q_scale,
            row_scale,
            &mut scratch.global,
        );
        scratch.global.drain_sorted_into(out);
        return;
    }
    // Panel slots carry their own row range so the parallel body needs no
    // index; heaps are reset serially (cheap) and reused across queries.
    scratch.panels.truncate(npanels);
    while scratch.panels.len() < npanels {
        scratch.panels.push(PanelTask {
            lo: 0,
            hi: 0,
            topk: TopK::new(k),
        });
    }
    for (p, t) in scratch.panels.iter_mut().enumerate() {
        t.lo = p * pr;
        t.hi = ((p + 1) * pr).min(rows);
        t.topk.reset(k);
    }
    let ScanScratch { panels, global, .. } = scratch;
    pool::par_for_each_mut(panels, |t| {
        scan_range(
            data,
            dim,
            t.lo,
            t.hi,
            q,
            exclude,
            q_scale,
            row_scale,
            &mut t.topk,
        );
    });
    global.reset(k);
    for t in panels.iter() {
        global.merge_from(&t.topk);
    }
    global.drain_sorted_into(out);
}

/// Gather-variant scan: offer only the rows listed in `rows_list` (an
/// index tier's surviving cluster members) to `topk`. Same scoring and
/// determinism contract as [`topk_scan`]; always serial.
#[allow(clippy::too_many_arguments)]
pub fn scan_rows_into(
    data: &[f64],
    dim: usize,
    rows_list: &[u32],
    q: &[f64],
    exclude: Option<u32>,
    q_scale: f64,
    row_scale: Option<&[f64]>,
    topk: &mut TopK,
) {
    for &r in rows_list {
        let r = r as usize;
        let row = &data[r * dim..(r + 1) * dim];
        let mut acc = 0.0f64;
        for j in 0..dim {
            acc += q[j] * row[j];
        }
        let row_u = r as u32;
        if exclude == Some(row_u) {
            continue;
        }
        let score = match row_scale {
            Some(rs) => (acc * q_scale) * rs[r],
            None => acc,
        };
        topk.offer(score, row_u);
    }
}

/// The naive reference: score every row with a plain per-row dot loop,
/// sort everything, truncate. This is the baseline the blocked kernel is
/// benchmarked against and the oracle the equivalence tests compare to.
#[allow(clippy::too_many_arguments)]
pub fn topk_scan_naive(
    data: &[f64],
    rows: usize,
    dim: usize,
    q: &[f64],
    k: usize,
    exclude: Option<u32>,
    q_scale: f64,
    row_scale: Option<&[f64]>,
) -> Vec<Hit> {
    let mut hits: Vec<Hit> = (0..rows)
        .filter(|&r| exclude != Some(r as u32))
        .map(|r| {
            let row = &data[r * dim..(r + 1) * dim];
            let dot: f64 = q.iter().zip(row).map(|(a, b)| a * b).sum();
            let score = match row_scale {
                Some(rs) => (dot * q_scale) * rs[r],
                None => dot,
            };
            Hit {
                row: r as u32,
                score,
            }
        })
        .collect();
    hits.sort_unstable_by(cmp_hits);
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn random_data(seed: u64, rows: usize, dim: usize) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * dim)
            .map(|_| rng.gen_range(-1000..1000) as f64 / 97.0)
            .collect();
        let q: Vec<f64> = (0..dim)
            .map(|_| rng.gen_range(-1000..1000) as f64 / 97.0)
            .collect();
        (data, q)
    }

    #[test]
    fn heap_keeps_true_top_k_with_row_tie_break() {
        let mut tk = TopK::new(3);
        tk.reset(3);
        // Two ties at 5.0: rows 7 and 2 — row 2 must win over row 7.
        for &(score, row) in &[
            (1.0, 0u32),
            (5.0, 7),
            (3.0, 4),
            (5.0, 2),
            (2.0, 9),
            (4.0, 1),
        ] {
            tk.offer(score, row);
        }
        let mut out = Vec::new();
        tk.drain_sorted_into(&mut out);
        assert_eq!(
            out,
            vec![
                Hit { row: 2, score: 5.0 },
                Hit { row: 7, score: 5.0 },
                Hit { row: 1, score: 4.0 },
            ]
        );
    }

    #[test]
    fn heap_k_zero_and_short_input() {
        let mut tk = TopK::new(0);
        tk.offer(1.0, 0);
        assert!(tk.is_empty());
        let mut tk = TopK::new(10);
        tk.offer(1.0, 3);
        tk.offer(2.0, 1);
        assert_eq!(tk.len(), 2);
        assert!(tk.worst().is_none(), "not full yet");
        let mut out = Vec::new();
        tk.drain_sorted_into(&mut out);
        assert_eq!(out[0].row, 1);
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        let mut scratch = ScanScratch::new();
        let mut out = Vec::new();
        for &(rows, dim, k) in &[
            (1usize, 3usize, 1usize),
            (5, 4, 3),
            (37, 8, 5),
            (130, 8, 10),  // crosses panel boundaries (panel_rows(8)=512 → clamp)
            (700, 64, 16), // multiple panels at dim 64
            (513, 7, 8),   // odd dim, odd rows
        ] {
            let (data, q) = random_data(rows as u64 * 31 + dim as u64, rows, dim);
            for exclude in [None, Some(0u32), Some((rows - 1) as u32)] {
                let naive = topk_scan_naive(&data, rows, dim, &q, k, exclude, 1.0, None);
                topk_scan(
                    &data,
                    rows,
                    dim,
                    &q,
                    k,
                    exclude,
                    1.0,
                    None,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(out.len(), naive.len());
                for (a, b) in out.iter().zip(&naive) {
                    assert_eq!(a.row, b.row, "rows={rows} dim={dim} exclude={exclude:?}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn serial_flag_matches_parallel_path_bitwise() {
        let rows = 800;
        let dim = 32;
        let (data, q) = random_data(9, rows, dim);
        let mut s1 = ScanScratch::new();
        let mut s2 = ScanScratch::new();
        s2.serial = true;
        let mut o1 = Vec::new();
        let mut o2 = Vec::new();
        topk_scan(
            &data,
            rows,
            dim,
            &q,
            12,
            Some(5),
            1.0,
            None,
            &mut s1,
            &mut o1,
        );
        topk_scan(
            &data,
            rows,
            dim,
            &q,
            12,
            Some(5),
            1.0,
            None,
            &mut s2,
            &mut o2,
        );
        assert_eq!(o1.len(), o2.len());
        for (a, b) in o1.iter().zip(&o2) {
            assert_eq!((a.row, a.score.to_bits()), (b.row, b.score.to_bits()));
        }
    }

    #[test]
    fn cosine_scaling_matches_naive() {
        let rows = 300;
        let dim = 16;
        let (data, q) = random_data(17, rows, dim);
        let row_scale: Vec<f64> = (0..rows)
            .map(|r| {
                let row = &data[r * dim..(r + 1) * dim];
                let n: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
                if n == 0.0 {
                    0.0
                } else {
                    1.0 / n
                }
            })
            .collect();
        let qn: f64 = q.iter().map(|v| v * v).sum::<f64>().sqrt();
        let q_scale = 1.0 / qn;
        let naive = topk_scan_naive(&data, rows, dim, &q, 7, None, q_scale, Some(&row_scale));
        let mut scratch = ScanScratch::new();
        let mut out = Vec::new();
        topk_scan(
            &data,
            rows,
            dim,
            &q,
            7,
            None,
            q_scale,
            Some(&row_scale),
            &mut scratch,
            &mut out,
        );
        for (a, b) in out.iter().zip(&naive) {
            assert_eq!((a.row, a.score.to_bits()), (b.row, b.score.to_bits()));
            assert!(a.score.abs() <= 1.0 + 1e-12, "cosine out of range");
        }
    }

    #[test]
    fn gather_scan_over_all_rows_matches_full_scan() {
        let rows = 97;
        let dim = 12;
        let (data, q) = random_data(23, rows, dim);
        let all: Vec<u32> = (0..rows as u32).collect();
        let mut tk = TopK::new(9);
        tk.reset(9);
        scan_rows_into(&data, dim, &all, &q, Some(3), 1.0, None, &mut tk);
        let mut out = Vec::new();
        tk.drain_sorted_into(&mut out);
        let naive = topk_scan_naive(&data, rows, dim, &q, 9, Some(3), 1.0, None);
        assert_eq!(out.len(), naive.len());
        for (a, b) in out.iter().zip(&naive) {
            assert_eq!((a.row, a.score.to_bits()), (b.row, b.score.to_bits()));
        }
    }

    #[test]
    fn panel_rows_is_bounded_and_aligned() {
        for dim in [1, 4, 8, 16, 64, 128, 1024, 100_000] {
            let pr = panel_rows(dim);
            assert!((4..=512).contains(&pr));
            assert_eq!(pr % 4, 0);
        }
    }
}
