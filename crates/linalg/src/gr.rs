//! Golub–Reinsch SVD: Householder bidiagonalization followed by
//! implicit-shift QR iterations on the bidiagonal form.
//!
//! This is the classic EISPACK/`svdcmp` algorithm (Golub & Reinsch 1970,
//! as presented in Golub & Van Loan §8.6), ported with 0-based indexing and
//! scaled-epsilon convergence tests instead of the float-rounding trick of
//! older codes. Cost is `O(m·n²)` with a small constant — an order of
//! magnitude faster than cyclic one-sided Jacobi on the few-hundred-column
//! merge matrices Tree-SVD factorises at its interior levels. Jacobi
//! remains in [`crate::svd`] as the small-matrix path, the fallback on
//! (never observed) non-convergence, and the test oracle.
//!
//! The working buffers are **column-major** (`U` and `V` columns are
//! contiguous slices): every hot loop — Householder updates, the Givens
//! rotations of the QR phase — walks contiguous memory and autovectorises.
//! The only strided passes left are the `O(n)`-per-step row extractions of
//! the bidiagonalization's second stage, which copy the row into a scratch
//! buffer first.

use crate::dense::DenseMatrix;

/// `sqrt(a² + b²)` without destructive underflow or overflow.
fn pythag(a: f64, b: f64) -> f64 {
    let (absa, absb) = (a.abs(), b.abs());
    if absa > absb {
        let r = absb / absa;
        absa * (1.0 + r * r).sqrt()
    } else if absb > 0.0 {
        let r = absa / absb;
        absb * (1.0 + r * r).sqrt()
    } else {
        0.0
    }
}

#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Split two distinct columns out of a column-major buffer.
#[inline]
fn two_cols(buf: &mut [f64], rows: usize, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert_ne!(a, b);
    let (lo, hi) = (a.min(b), a.max(b));
    let (head, tail) = buf.split_at_mut(hi * rows);
    let first = &mut head[lo * rows..(lo + 1) * rows];
    let second = &mut tail[..rows];
    if a < b {
        (first, second)
    } else {
        (second, first)
    }
}

/// Rotate two columns: `(x, y) ← (x·c + y·s, y·c − x·s)`.
#[inline]
fn rotate_cols(buf: &mut [f64], rows: usize, j1: usize, j2: usize, c: f64, s: f64) {
    let (col1, col2) = two_cols(buf, rows, j1, j2);
    for (x, y) in col1.iter_mut().zip(col2.iter_mut()) {
        let xv = *x;
        let yv = *y;
        *x = xv * c + yv * s;
        *y = yv * c - xv * s;
    }
}

/// Raw Golub–Reinsch on `a` with `m ≥ n`. Returns `(U, w, V)` with `U`
/// `m×n`, `w` the unsorted singular values, `V` `n×n` — or `None` if the QR
/// phase failed to converge in 60 iterations for some value (caller falls
/// back to Jacobi).
pub(crate) fn golub_reinsch(a: &DenseMatrix) -> Option<(DenseMatrix, Vec<f64>, DenseMatrix)> {
    let (m, n) = (a.rows(), a.cols());
    debug_assert!(m >= n && n > 0);
    // Column-major copies: uc[j*m + i] = A[i][j], vc[j*n + i] = V[i][j].
    let mut uc = vec![0.0_f64; m * n];
    for i in 0..m {
        for (j, &val) in a.row(i).iter().enumerate() {
            uc[j * m + i] = val;
        }
    }
    let mut vc = vec![0.0_f64; n * n];
    let mut w = vec![0.0_f64; n];
    let mut rv1 = vec![0.0_f64; n];
    let mut scratch = vec![0.0_f64; m.max(n)];

    // --- Householder reduction to bidiagonal form ---
    let mut g = 0.0_f64;
    let mut scale = 0.0_f64;
    let mut anorm = 0.0_f64;
    for i in 0..n {
        let l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m {
            // Stage 1: Householder on column i, rows i..m.
            {
                let col = &uc[i * m..(i + 1) * m];
                for &x in &col[i..] {
                    scale += x.abs();
                }
            }
            if scale != 0.0 {
                let mut s = 0.0;
                {
                    let col = &mut uc[i * m..(i + 1) * m];
                    for x in &mut col[i..] {
                        *x /= scale;
                        s += *x * *x;
                    }
                    let f = col[i];
                    g = -sign(s.sqrt(), f);
                    col[i] = f - g;
                }
                // h = f·g − s with f the pre-update pivot, recovered from
                // the stored f − g.
                let h = (uc[i * m + i] + g) * g - s;
                for j in l..n {
                    let (ci, cj) = two_cols(&mut uc, m, i, j);
                    let mut s2 = 0.0;
                    for (x, y) in ci[i..].iter().zip(&cj[i..]) {
                        s2 += x * y;
                    }
                    let f2 = s2 / h;
                    for (x, y) in cj[i..].iter_mut().zip(&ci[i..]) {
                        *x += f2 * y;
                    }
                }
                let col = &mut uc[i * m..(i + 1) * m];
                for x in &mut col[i..] {
                    *x *= scale;
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            // Stage 2: Householder on row i, columns l..n.
            for k in l..n {
                scale += uc[k * m + i].abs();
            }
            if scale != 0.0 {
                let mut s = 0.0;
                for k in l..n {
                    let x = uc[k * m + i] / scale;
                    uc[k * m + i] = x;
                    s += x * x;
                }
                let f = uc[l * m + i];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                uc[l * m + i] = f - g;
                for k in l..n {
                    rv1[k] = uc[k * m + i] / h;
                }
                // s2[j] = Σ_k u[j][k]·u[i][k]; computed column-by-column so
                // the inner loop is contiguous.
                let s2 = &mut scratch[..m];
                s2[l..m].fill(0.0);
                for k in l..n {
                    let uik = uc[k * m + i];
                    let col = &uc[k * m..(k + 1) * m];
                    for (acc, &x) in s2[l..m].iter_mut().zip(&col[l..m]) {
                        *acc += x * uik;
                    }
                }
                for k in l..n {
                    let rk = rv1[k];
                    let col = &mut uc[k * m..(k + 1) * m];
                    for (x, &add) in col[l..m].iter_mut().zip(&s2[l..m]) {
                        *x += add * rk;
                    }
                }
                for k in l..n {
                    uc[k * m + i] *= scale;
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulate right-hand transformations into V ---
    let mut g = 0.0_f64;
    for i in (0..n).rev() {
        let l = i + 1;
        if i < n - 1 {
            if g != 0.0 {
                // Row i of U, columns l..n, into scratch (strided once).
                let urow = &mut scratch[..n];
                for k in l..n {
                    urow[k] = uc[k * m + i];
                }
                let pivot = urow[l];
                {
                    let coli = &mut vc[i * n..(i + 1) * n];
                    // Double division avoids underflow of u[i][l]·g.
                    for j in l..n {
                        coli[j] = (urow[j] / pivot) / g;
                    }
                }
                for j in l..n {
                    let (ci, cj) = two_cols(&mut vc, n, i, j);
                    let mut s = 0.0;
                    for k in l..n {
                        s += urow[k] * cj[k];
                    }
                    for (x, &y) in cj[l..].iter_mut().zip(&ci[l..]) {
                        *x += s * y;
                    }
                }
            }
            for j in l..n {
                vc[j * n + i] = 0.0; // V[i][j]
                vc[i * n + j] = 0.0; // V[j][i]
            }
        }
        vc[i * n + i] = 1.0;
        g = rv1[i];
    }

    // --- Accumulate left-hand transformations into U ---
    for i in (0..n.min(m)).rev() {
        let l = i + 1;
        let g = w[i];
        for j in l..n {
            uc[j * m + i] = 0.0; // U[i][j]
        }
        if g != 0.0 {
            let ginv = 1.0 / g;
            for j in l..n {
                let (ci, cj) = two_cols(&mut uc, m, i, j);
                let mut s = 0.0;
                for (x, y) in ci[l..].iter().zip(&cj[l..]) {
                    s += x * y;
                }
                let f = (s / ci[i]) * ginv;
                for (x, &y) in cj[i..].iter_mut().zip(&ci[i..]) {
                    *x += f * y;
                }
            }
            let col = &mut uc[i * m..(i + 1) * m];
            for x in &mut col[i..] {
                *x *= ginv;
            }
        } else {
            let col = &mut uc[i * m..(i + 1) * m];
            for x in &mut col[i..] {
                *x = 0.0;
            }
        }
        uc[i * m + i] += 1.0;
    }

    // --- Diagonalise the bidiagonal form by implicit-shift QR ---
    let eps = f64::EPSILON;
    for k in (0..n).rev() {
        let mut converged = false;
        for _its in 0..60 {
            // Find the start `l` of the unreduced trailing block; rv1[0] is
            // structurally zero, so the search terminates.
            let mut l = k;
            let mut flag = true;
            loop {
                if rv1[l].abs() <= eps * anorm {
                    flag = false;
                    break;
                }
                if w[l - 1].abs() <= eps * anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // w[l-1] is negligible: cancel rv1[l] with Givens rotations
                // applied from the left (mixing U columns l-1 and i).
                let nm = l - 1;
                let mut c = 0.0_f64;
                let mut s = 1.0_f64;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() <= eps * anorm {
                        break;
                    }
                    let g = w[i];
                    let h = pythag(f, g);
                    w[i] = h;
                    let hinv = 1.0 / h;
                    c = g * hinv;
                    s = -f * hinv;
                    // (y, z) ← (y·c + z·s, z·c − y·s) for columns (nm, i).
                    rotate_cols(&mut uc, m, nm, i, c, s);
                }
            }
            let z = w[k];
            if l == k {
                // Converged; enforce non-negative singular value.
                if z < 0.0 {
                    w[k] = -z;
                    let col = &mut vc[k * n..(k + 1) * n];
                    for x in col {
                        *x = -*x;
                    }
                }
                converged = true;
                break;
            }
            // Shift from the bottom 2×2 minor.
            let x0 = w[l];
            let nm = k - 1;
            let y = w[nm];
            let g = rv1[nm];
            let h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            let g2 = pythag(f, 1.0);
            f = ((x0 - z) * (x0 + z) + h * ((y / (f + sign(g2, f))) - h)) / x0;
            // Next QR sweep.
            let (mut c, mut s) = (1.0_f64, 1.0_f64);
            let mut x = x0;
            for j in l..=nm {
                let i = j + 1;
                let mut g = rv1[i];
                let mut y = w[i];
                let mut h = s * g;
                g *= c;
                let mut z = pythag(f, h);
                rv1[j] = z;
                c = f / z;
                s = h / z;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                rotate_cols(&mut vc, n, j, i, c, s);
                z = pythag(f, h);
                w[j] = z;
                if z != 0.0 {
                    let zinv = 1.0 / z;
                    c = f * zinv;
                    s = h * zinv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                rotate_cols(&mut uc, m, j, i, c, s);
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
        if !converged {
            return None;
        }
    }

    // Convert back to row-major matrices.
    let u = DenseMatrix::from_fn(m, n, |i, j| uc[j * m + i]);
    let v = DenseMatrix::from_fn(n, n, |i, j| vc[j * n + i]);
    Some((u, w, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::SeedableRng;
    use tsvd_rt::rng::StdRng;

    #[test]
    fn pythag_safe() {
        assert_eq!(pythag(3.0, 4.0), 5.0);
        assert_eq!(pythag(0.0, 0.0), 0.0);
        // No overflow for huge components.
        let big = pythag(1e200, 1e200);
        assert!((big - 1e200 * 2.0_f64.sqrt()).abs() / big < 1e-12);
    }

    #[test]
    fn reconstructs_random_tall() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, n) in &[(8usize, 5usize), (30, 30), (64, 17), (5, 1), (200, 100)] {
            let a = gaussian_matrix(&mut rng, m, n);
            let (u, w, v) = golub_reinsch(&a).expect("converges");
            // U diag(w) Vᵀ == A
            let mut uw = u.clone();
            uw.scale_cols(&w);
            let back = uw.mul(&v.transpose());
            assert!(back.sub(&a).max_abs() < 1e-9, "({m},{n})");
            // Orthogonality.
            let gu = u.t_mul(&u);
            assert!(
                gu.sub(&DenseMatrix::identity(n)).max_abs() < 1e-9,
                "U ({m},{n})"
            );
            let gv = v.t_mul(&v);
            assert!(
                gv.sub(&DenseMatrix::identity(n)).max_abs() < 1e-9,
                "V ({m},{n})"
            );
            // All singular values non-negative.
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn handles_rank_deficiency_and_zeros() {
        let z = DenseMatrix::zeros(6, 4);
        let (_, w, _) = golub_reinsch(&z).unwrap();
        assert!(w.iter().all(|&x| x == 0.0));

        // Rank-1.
        let mut rng = StdRng::seed_from_u64(2);
        let col = gaussian_matrix(&mut rng, 10, 1);
        let row = gaussian_matrix(&mut rng, 1, 6);
        let a = col.mul(&row);
        let (u, w, v) = golub_reinsch(&a).unwrap();
        let mut uw = u;
        uw.scale_cols(&w);
        assert!(uw.mul(&v.transpose()).sub(&a).max_abs() < 1e-10);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(sorted[1] < 1e-9 * sorted[0].max(1.0));
    }

    #[test]
    fn matches_jacobi_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n) in &[(12usize, 12usize), (40, 25), (100, 60)] {
            let a = gaussian_matrix(&mut rng, m, n);
            let (_, mut w, _) = golub_reinsch(&a).unwrap();
            w.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let jac = crate::svd::exact_svd_jacobi_for_tests(&a);
            for (g, j) in w.iter().zip(&jac.s) {
                assert!((g - j).abs() < 1e-8 * (1.0 + j), "{g} vs {j} ({m},{n})");
            }
        }
    }

    #[test]
    fn concatenated_orthogonal_blocks() {
        // The exact shape Tree-SVD merges: [U₁Σ₁ | U₂Σ₂ | …] with strongly
        // correlated columns — the case that made Jacobi crawl.
        let mut rng = StdRng::seed_from_u64(4);
        // Tall enough that the 4-block concat still has rows ≥ cols (the
        // kernel's contract; exact_svd handles wide inputs by transposing).
        let base = gaussian_matrix(&mut rng, 150, 30);
        let blocks: Vec<DenseMatrix> = (0..4)
            .map(|_| {
                let noise = gaussian_matrix(&mut rng, 150, 30);
                DenseMatrix::from_fn(150, 30, |i, j| base.get(i, j) + 0.01 * noise.get(i, j))
            })
            .collect();
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        let a = DenseMatrix::hconcat(&refs);
        let (u, w, v) = golub_reinsch(&a).expect("converges");
        let mut uw = u;
        uw.scale_cols(&w);
        assert!(uw.mul(&v.transpose()).sub(&a).max_abs() < 1e-8);
    }
}
