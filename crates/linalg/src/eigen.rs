//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! Used for the Gram-matrix trick in the left-only randomized SVD (computing
//! `U, Σ` of a short-fat `B` from the eigendecomposition of `B·Bᵀ`).

use crate::dense::DenseMatrix;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix,
/// eigenvalues sorted descending.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column `j` of `vectors` is the eigenvector for `values[j]`.
    pub vectors: DenseMatrix,
}

/// Jacobi eigendecomposition of symmetric `a`.
///
/// Cyclic sweeps of 2×2 rotations; converges quadratically. Panics if `a` is
/// not square; symmetry is assumed (only the upper triangle drives the
/// rotations, and the matrix is symmetrised up front to be safe).
pub fn sym_eigen(a: &DenseMatrix) -> SymEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigendecomposition needs a square matrix");
    if n == 0 {
        return SymEigen {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(0, 0),
        };
    }
    // Symmetrise defensively (callers pass B·Bᵀ which is symmetric up to
    // rounding).
    let mut m = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = DenseMatrix::identity(n);

    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j).powi(2);
            }
        }
        let diag_scale: f64 = (0..n).map(|i| m.get(i, i).powi(2)).sum::<f64>().max(1e-300);
        if off <= 1e-28 * diag_scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq == 0.0 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle zeroing (p,q).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p,q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.get(j, j).partial_cmp(&m.get(i, i)).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::SeedableRng;
    use tsvd_rt::rng::StdRng;

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = (e.vectors.get(0, 0), e.vectors.get(1, 0));
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0.0 - v0.1).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_random() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 3, 8, 20] {
            let g = gaussian_matrix(&mut rng, n, n);
            let a = g.t_mul(&g); // symmetric PSD
            let e = sym_eigen(&a);
            // A == V Λ Vᵀ
            let mut vl = e.vectors.clone();
            vl.scale_cols(&e.values);
            let back = vl.mul(&e.vectors.transpose());
            assert!(back.sub(&a).max_abs() < 1e-8 * (1.0 + a.max_abs()), "n={n}");
            // V orthonormal
            let g2 = e.vectors.t_mul(&e.vectors);
            assert!(g2.sub(&DenseMatrix::identity(n)).max_abs() < 1e-9);
            // sorted descending
            assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = DenseMatrix::identity(4);
        let e = sym_eigen(&a);
        assert!(e.values.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        let g = e.vectors.t_mul(&e.vectors);
        assert!(g.sub(&DenseMatrix::identity(4)).max_abs() < 1e-12);
    }

    #[test]
    fn zero_size() {
        let e = sym_eigen(&DenseMatrix::zeros(0, 0));
        assert!(e.values.is_empty());
    }
}
