//! Frequent-Directions matrix sketching (Liberty 2013).
//!
//! This is the streaming factorisation behind the FREDE baseline: rows of the
//! proximity matrix arrive one at a time and are compressed into an `ℓ × n`
//! sketch `B` such that `‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F² / ℓ`. FREDE reads 2ℓ rows,
//! compresses to ℓ via SVD, and repeats — exactly the loop implemented here.

use crate::dense::DenseMatrix;
use crate::svd::exact_svd;

/// A Frequent-Directions sketch with `ℓ` retained directions over `cols`
/// columns.
#[derive(Debug, Clone)]
pub struct FrequentDirections {
    l: usize,
    cols: usize,
    /// `2ℓ × cols` buffer; rows `0..filled` are live.
    buf: DenseMatrix,
    filled: usize,
}

impl FrequentDirections {
    /// A fresh sketch retaining `l ≥ 1` directions over `cols` columns.
    pub fn new(l: usize, cols: usize) -> Self {
        assert!(l >= 1, "sketch size must be positive");
        FrequentDirections {
            l,
            cols,
            buf: DenseMatrix::zeros(2 * l, cols),
            filled: 0,
        }
    }

    /// Sketch size `ℓ`.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Column dimension.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Append a dense row.
    pub fn append_dense(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols);
        if self.filled == 2 * self.l {
            self.shrink();
        }
        self.buf.row_mut(self.filled).copy_from_slice(row);
        self.filled += 1;
    }

    /// Append a sparse row given as `(col, value)` pairs.
    pub fn append_sparse(&mut self, row: &[(u32, f64)]) {
        if self.filled == 2 * self.l {
            self.shrink();
        }
        let r = self.buf.row_mut(self.filled);
        r.fill(0.0);
        for &(c, v) in row {
            r[c as usize] = v;
        }
        self.filled += 1;
    }

    /// SVD-shrink the buffer back to `ℓ` live rows:
    /// `σ'_i = sqrt(max(σ_i² − σ_ℓ², 0))`, rows ← `diag(σ')·Vᵀ`.
    fn shrink(&mut self) {
        if self.filled <= self.l {
            return;
        }
        let live = DenseMatrix::from_fn(self.filled, self.cols, |i, j| self.buf.get(i, j));
        let svd = exact_svd(&live);
        let pivot_sq = svd.s.get(self.l - 1).map_or(0.0, |s| s * s);
        let keep = self.l.min(svd.rank());
        for i in 0..keep {
            let scale = (svd.s[i] * svd.s[i] - pivot_sq).max(0.0).sqrt();
            let vrow = svd.vt.row(i);
            let out = self.buf.row_mut(i);
            for (o, &v) in out.iter_mut().zip(vrow) {
                *o = scale * v;
            }
        }
        for i in keep..self.filled {
            self.buf.row_mut(i).fill(0.0);
        }
        self.filled = keep;
    }

    /// Finalise and return the `ℓ × cols` sketch matrix (zero-padded if fewer
    /// than `ℓ` directions are live).
    pub fn sketch(&mut self) -> DenseMatrix {
        self.shrink();
        DenseMatrix::from_fn(self.l, self.cols, |i, j| {
            if i < self.filled {
                self.buf.get(i, j)
            } else {
                0.0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::SeedableRng;
    use tsvd_rt::rng::StdRng;

    /// Spectral norm via power iteration (test helper).
    fn spectral_norm(a: &DenseMatrix) -> f64 {
        let n = a.cols();
        let mut x = vec![1.0 / (n as f64).sqrt(); n];
        for _ in 0..200 {
            let y = a.mul_vec(&x);
            let z = a.transpose().mul_vec(&y);
            let norm = z.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm == 0.0 {
                return 0.0;
            }
            x = z.iter().map(|v| v / norm).collect();
        }
        let y = a.mul_vec(&x);
        y.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    #[test]
    fn exact_when_rows_fit() {
        // Fewer than ℓ rows: sketch covariance must equal input covariance.
        let mut rng = StdRng::seed_from_u64(1);
        let a = gaussian_matrix(&mut rng, 4, 10);
        let mut fd = FrequentDirections::new(6, 10);
        for i in 0..4 {
            fd.append_dense(a.row(i));
        }
        let b = fd.sketch();
        let ca = a.t_mul(&a);
        let cb = b.t_mul(&b);
        assert!(ca.sub(&cb).max_abs() < 1e-9);
    }

    #[test]
    fn covariance_error_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gaussian_matrix(&mut rng, 120, 30);
        let l = 12;
        let mut fd = FrequentDirections::new(l, 30);
        for i in 0..a.rows() {
            fd.append_dense(a.row(i));
        }
        let b = fd.sketch();
        let diff = a.t_mul(&a).sub(&b.t_mul(&b));
        let bound = a.frobenius_norm().powi(2) / l as f64;
        let err = spectral_norm(&diff);
        assert!(
            err <= bound * 1.0001,
            "FD guarantee violated: {err} > {bound}"
        );
    }

    #[test]
    fn sparse_append_matches_dense() {
        let mut fd1 = FrequentDirections::new(3, 8);
        let mut fd2 = FrequentDirections::new(3, 8);
        let rows = vec![
            vec![(0u32, 1.0), (5, -2.0)],
            vec![(2, 3.0)],
            vec![(1, 1.0), (7, 4.0)],
            vec![(0, -1.0), (2, 2.0), (4, 0.5)],
            vec![(6, 2.5)],
            vec![(3, 1.5), (5, 1.0)],
            vec![(4, -3.0)],
        ];
        for r in &rows {
            fd1.append_sparse(r);
            let mut dense = vec![0.0; 8];
            for &(c, v) in r {
                dense[c as usize] = v;
            }
            fd2.append_dense(&dense);
        }
        let b1 = fd1.sketch();
        let b2 = fd2.sketch();
        assert!(b1.sub(&b2).max_abs() < 1e-12);
    }

    #[test]
    fn sketch_rank_at_most_l() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, 50, 20);
        let mut fd = FrequentDirections::new(5, 20);
        for i in 0..a.rows() {
            fd.append_dense(a.row(i));
        }
        let b = fd.sketch();
        assert_eq!(b.rows(), 5);
        let svd = exact_svd(&b);
        assert!(svd.s.iter().filter(|&&s| s > 1e-9).count() <= 5);
    }
}
