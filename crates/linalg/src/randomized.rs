//! Randomized truncated SVD (Halko–Martinsson–Tropp).
//!
//! This is the "sparse randomized SVD" of the paper's level-1 Tree-SVD step
//! and also the engine behind the FRPCA and STRAP baselines: when the input
//! is a [`CsrMatrix`], every product with the `(d+p)`-column test matrix runs
//! through sparse matvecs, so the cost is `O(nnz·(d+p))` plus dense work on
//! `(d+p)`-sized factors — matching the `O(nnz(M) + |S|·d²/ε⁴)` bound the
//! paper quotes from Clarkson–Woodruff-style analyses. The CSR products
//! themselves dispatch over `tsvd_rt::pool` in deterministic disjoint bands
//! (see [`CsrMatrix::mul_dense`]), so top-level randomized SVDs (FRPCA,
//! STRAP) parallelise while level-1 calls nested inside the Tree-SVD block
//! fan-out fall back to running inline on their worker.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::qr::orthonormalize;
use crate::rng::gaussian_matrix;
use crate::svd::{exact_svd, Svd};
use tsvd_rt::rng::Rng;

/// Anything that can multiply dense blocks from the left and (transposed)
/// from the right — the only access pattern randomized SVD needs.
pub trait MatrixProduct {
    /// Number of rows of the operator.
    fn n_rows(&self) -> usize;
    /// Number of columns of the operator.
    fn n_cols(&self) -> usize;
    /// `A · B` where `B` is `n_cols × k`.
    fn mul_dense(&self, b: &DenseMatrix) -> DenseMatrix;
    /// `Aᵀ · B` where `B` is `n_rows × k`.
    fn t_mul_dense(&self, b: &DenseMatrix) -> DenseMatrix;
}

impl MatrixProduct for DenseMatrix {
    fn n_rows(&self) -> usize {
        self.rows()
    }
    fn n_cols(&self) -> usize {
        self.cols()
    }
    fn mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        self.mul(b)
    }
    fn t_mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        self.t_mul(b)
    }
}

impl MatrixProduct for CsrMatrix {
    fn n_rows(&self) -> usize {
        self.rows()
    }
    fn n_cols(&self) -> usize {
        self.cols()
    }
    fn mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        CsrMatrix::mul_dense(self, b)
    }
    fn t_mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        CsrMatrix::t_mul_dense(self, b)
    }
}

/// Parameters of the randomized range finder.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedSvdConfig {
    /// Target rank `d` of the truncated SVD.
    pub rank: usize,
    /// Oversampling `p` (columns of the test matrix beyond `d`). 8–16 is
    /// plenty for the decaying PPR spectra this system factorises.
    pub oversample: usize,
    /// Subspace (power) iterations. 1–2 sharpen the spectrum of matrices
    /// with slowly decaying singular values; each costs two extra passes.
    pub power_iters: usize,
}

tsvd_rt::impl_json_struct!(RandomizedSvdConfig {
    rank,
    oversample,
    power_iters
});

impl RandomizedSvdConfig {
    /// A config with the given rank and the defaults `p = 10`, 1 power
    /// iteration.
    pub fn with_rank(rank: usize) -> Self {
        RandomizedSvdConfig {
            rank,
            oversample: 10,
            power_iters: 1,
        }
    }
}

/// Randomized truncated SVD of `a`, keeping `cfg.rank` triplets.
///
/// Returns `U (m×d)`, `σ (d)`, `Vᵀ (d×n)` with the `(1+ε)` Frobenius
/// guarantee of Eqn. (1) in the paper (holding with high probability over
/// the Gaussian test matrix).
pub fn randomized_svd<A, R>(a: &A, cfg: &RandomizedSvdConfig, rng: &mut R) -> Svd
where
    A: MatrixProduct + ?Sized,
    R: Rng + ?Sized,
{
    let (m, n) = (a.n_rows(), a.n_cols());
    let full = m.min(n);
    if full == 0 {
        return Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            vt: DenseMatrix::zeros(0, n),
        };
    }
    let l = (cfg.rank + cfg.oversample).min(full);
    // Range finding: Y = A·Ω, Q = orth(Y), with optional power iterations
    // (A·Aᵀ)^q applied with re-orthonormalisation to avoid losing digits.
    let omega = gaussian_matrix(rng, n, l);
    let mut q = orthonormalize(&a.mul_dense(&omega));
    for _ in 0..cfg.power_iters {
        let z = orthonormalize(&a.t_mul_dense(&q));
        q = orthonormalize(&a.mul_dense(&z));
    }
    // Project: B = Qᵀ·A computed as (Aᵀ·Q)ᵀ, then exact SVD of the small B.
    let bt = a.t_mul_dense(&q); // n × l
    let svd_bt = exact_svd(&bt); // Bᵀ = U_bt Σ Vᵀ_bt  ⇒  B = V_bt Σ Uᵀ_bt
    let d = cfg.rank.min(svd_bt.rank());
    let tr = svd_bt.truncate(d);
    let u = q.mul(&tr.vt.transpose()); // Q · V_bt
    Svd {
        u,
        s: tr.s,
        vt: tr.u.transpose(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::SeedableRng;
    use tsvd_rt::rng::StdRng;

    /// A random matrix with prescribed singular values.
    fn matrix_with_spectrum(rng: &mut StdRng, m: usize, n: usize, spectrum: &[f64]) -> DenseMatrix {
        let r = spectrum.len();
        let u = orthonormalize(&gaussian_matrix(rng, m, r));
        let v = orthonormalize(&gaussian_matrix(rng, n, r));
        let mut us = u;
        us.scale_cols(spectrum);
        us.mul(&v.transpose())
    }

    #[test]
    fn recovers_low_rank_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = matrix_with_spectrum(&mut rng, 40, 120, &[10.0, 5.0, 2.0]);
        let cfg = RandomizedSvdConfig {
            rank: 3,
            oversample: 6,
            power_iters: 1,
        };
        let svd = randomized_svd(&a, &cfg, &mut rng);
        assert!((svd.s[0] - 10.0).abs() < 1e-8);
        assert!((svd.s[1] - 5.0).abs() < 1e-8);
        assert!((svd.s[2] - 2.0).abs() < 1e-8);
        assert!(svd.reconstruct().sub(&a).frobenius_norm() < 1e-7);
    }

    #[test]
    fn near_optimal_on_decaying_spectrum() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec: Vec<f64> = (0..30).map(|i| 0.8f64.powi(i)).collect();
        let a = matrix_with_spectrum(&mut rng, 60, 200, &spec);
        let d = 8;
        let cfg = RandomizedSvdConfig {
            rank: d,
            oversample: 10,
            power_iters: 2,
        };
        let svd = randomized_svd(&a, &cfg, &mut rng);
        let err = svd.reconstruct().sub(&a).frobenius_norm();
        let opt: f64 = spec[d..].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err <= 1.10 * opt, "err {err} vs optimal {opt}");
    }

    #[test]
    fn sparse_and_dense_agree() {
        // Build a sparse matrix, run both code paths with the same seed.
        let rows: Vec<Vec<(u32, f64)>> = (0..30)
            .map(|i| {
                (0..100)
                    .filter(|j| (i * 7 + j * 13) % 11 == 0)
                    .map(|j| (j as u32, ((i + j) % 5) as f64 + 0.5))
                    .collect()
            })
            .collect();
        let sp = CsrMatrix::from_rows(100, &rows);
        let de = sp.to_dense();
        let cfg = RandomizedSvdConfig {
            rank: 6,
            oversample: 8,
            power_iters: 1,
        };
        let s1 = randomized_svd(&sp, &cfg, &mut StdRng::seed_from_u64(5));
        let s2 = randomized_svd(&de, &cfg, &mut StdRng::seed_from_u64(5));
        for (a, b) in s1.s.iter().zip(&s2.s) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(s1.reconstruct().sub(&s2.reconstruct()).max_abs() < 1e-8);
    }

    #[test]
    fn orthonormal_factors() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = gaussian_matrix(&mut rng, 25, 70);
        let cfg = RandomizedSvdConfig::with_rank(5);
        let svd = randomized_svd(&a, &cfg, &mut rng);
        let gu = svd.u.t_mul(&svd.u);
        assert!(gu.sub(&DenseMatrix::identity(5)).max_abs() < 1e-9);
        let gv = svd.vt.mul(&svd.vt.transpose());
        assert!(gv.sub(&DenseMatrix::identity(5)).max_abs() < 1e-9);
    }

    #[test]
    fn rank_clamped_to_matrix_rank_dims() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = gaussian_matrix(&mut rng, 4, 50);
        let cfg = RandomizedSvdConfig {
            rank: 10,
            oversample: 10,
            power_iters: 0,
        };
        let svd = randomized_svd(&a, &cfg, &mut rng);
        assert!(svd.rank() <= 4);
        // A 4-row matrix is reconstructed exactly by a rank-4 SVD.
        assert!(svd.reconstruct().sub(&a).max_abs() < 1e-8);
    }

    #[test]
    fn empty_matrix() {
        let a = DenseMatrix::zeros(0, 10);
        let cfg = RandomizedSvdConfig::with_rank(3);
        let svd = randomized_svd(&a, &cfg, &mut StdRng::seed_from_u64(0));
        assert_eq!(svd.rank(), 0);
    }
}
