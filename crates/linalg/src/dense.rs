//! Row-major dense matrix.

use std::fmt;

/// A row-major dense `f64` matrix.
///
/// The workhorse of every SVD in this workspace. Storage is a single
/// contiguous `Vec<f64>`; row `i` occupies `data[i*cols .. (i+1)*cols]`.
///
/// # Examples
///
/// ```
/// use tsvd_linalg::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = DenseMatrix::identity(2);
/// assert_eq!(a.mul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

tsvd_rt::impl_json_struct!(DenseMatrix { rows, cols, data });

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(6);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            writeln!(f, "{}", if self.cols > show_c { "…" } else { "" })?;
        }
        if self.rows > show_r {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a generator on `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer. Panics on size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Build from nested row slices (mostly for tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// Plain i-k-j loop: with row-major storage both the `other` row and the
    /// output row stream contiguously, which is all these sizes need.
    pub fn mul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    pub fn t_mul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "outer dimension mismatch");
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len());
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scale every column `j` by `s[j]` in place (i.e. `self · diag(s)`).
    pub fn scale_cols(&mut self, s: &[f64]) {
        assert_eq!(self.cols, s.len());
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (v, &f) in row.iter_mut().zip(s) {
                *v *= f;
            }
        }
    }

    /// Keep only the first `k` columns.
    pub fn take_cols(&self, k: usize) -> DenseMatrix {
        assert!(k <= self.cols);
        let mut out = DenseMatrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// Horizontally concatenate `blocks` (all with equal row counts).
    pub fn hconcat(blocks: &[&DenseMatrix]) -> DenseMatrix {
        assert!(!blocks.is_empty());
        let rows = blocks[0].rows;
        assert!(blocks.iter().all(|b| b.rows == rows), "row count mismatch");
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            let orow = out.row_mut(i);
            let mut off = 0;
            for b in blocks {
                orow[off..off + b.cols].copy_from_slice(b.row(i));
                off += b.cols;
            }
        }
        out
    }

    /// `self − other` (elementwise).
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Squared Euclidean norm of column `j`.
    pub fn col_norm_sq(&self, j: usize) -> f64 {
        (0..self.rows).map(|i| self.get(i, j).powi(2)).sum()
    }

    /// `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn identity_mul_is_noop() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let out = m.mul(&DenseMatrix::identity(2));
        assert_eq!(out, m);
        let out2 = DenseMatrix::identity(3).mul(&m);
        assert_eq!(out2, m);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        assert!(approx(c.get(0, 0), 19.0));
        assert!(approx(c.get(0, 1), 22.0));
        assert!(approx(c.get(1, 0), 43.0));
        assert!(approx(c.get(1, 1), 50.0));
    }

    #[test]
    fn t_mul_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 * 0.5);
        let b = DenseMatrix::from_fn(4, 2, |i, j| (i * j + 1) as f64);
        let fast = a.t_mul(&b);
        let slow = a.transpose().mul(&b);
        assert!(fast.sub(&slow).frobenius_norm() < 1e-12);
    }

    #[test]
    fn transpose_round_trip() {
        let m = DenseMatrix::from_fn(3, 5, |i, j| (i * j) as f64 - 1.5);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn hconcat_layout() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = DenseMatrix::hconcat(&[&a, &b]);
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn scale_cols_and_take_cols() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        m.scale_cols(&[2.0, 0.0, -1.0]);
        assert_eq!(m.row(0), &[2.0, 0.0, -3.0]);
        let t = m.take_cols(2);
        assert_eq!(t.row(1), &[8.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_value() {
        let m = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!(approx(m.frobenius_norm(), 5.0));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let via_vec = a.mul_vec(&x);
        let xm = DenseMatrix::from_vec(4, 1, x.clone());
        let via_mat = a.mul(&xm);
        for (i, &v) in via_vec.iter().enumerate() {
            assert!(approx(v, via_mat.get(i, 0)));
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mul_dimension_checked() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
