//! Compressed sparse row matrix.

use crate::dense::DenseMatrix;
use tsvd_rt::pool::{self, SendPtr};

/// Below this `nnz · k` work estimate the dense products run serially —
/// pool dispatch would cost more than the multiply. The threshold depends
/// only on the operands (never on the thread count), so a given product
/// always takes the same serial/parallel split.
const PAR_MATVEC_WORK_CUTOFF: usize = 1 << 14;

/// A compressed-sparse-row `f64` matrix.
///
/// Used for the PPR proximity matrix `M_S` (|S| rows, one per subset node;
/// n columns, one per graph node) and for adjacency/transition operators.
/// Column indices within each row are kept sorted.
///
/// # Examples
///
/// ```
/// use tsvd_linalg::CsrMatrix;
///
/// let m = CsrMatrix::from_rows(4, &[vec![(0, 1.0), (3, 2.0)], vec![(1, -1.0)]]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.get(0, 3), 2.0);
/// assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0, 1.0]), vec![3.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
}

tsvd_rt::impl_json_struct!(CsrMatrix {
    rows,
    cols,
    indptr,
    indices,
    data
});

impl CsrMatrix {
    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Build from per-row `(col, value)` lists. Each row is sorted and
    /// entries with duplicate columns are summed; explicit zeros are dropped.
    pub fn from_rows(cols: usize, rows: &[Vec<(u32, f64)>]) -> Self {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for row in rows {
            let mut r: Vec<(u32, f64)> = row.clone();
            r.sort_unstable_by_key(|e| e.0);
            let mut iter = r.into_iter().peekable();
            while let Some((c, mut v)) = iter.next() {
                assert!((c as usize) < cols, "column {c} out of range {cols}");
                while iter.peek().is_some_and(|&(c2, _)| c2 == c) {
                    v += iter.next().unwrap().1;
                }
                if v != 0.0 {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: rows.len(),
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Build from raw CSR arrays (columns must be sorted within each row).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1);
        assert_eq!(indices.len(), data.len());
        assert_eq!(*indptr.last().unwrap(), indices.len());
        debug_assert!((0..rows).all(|i| {
            indices[indptr[i]..indptr[i + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Sparse row `i` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[a..b], &self.data[a..b])
    }

    /// Entry `(i, j)` (binary search within the row).
    pub fn get(&self, i: usize, j: u32) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Dense product `self · B` (`cols × k` → `rows × k`).
    ///
    /// Parallelised over disjoint row bands when the work is large enough;
    /// each output row keeps the serial loop's per-row accumulation order,
    /// so the result is bitwise identical for every thread count.
    pub fn mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows(), "inner dimension mismatch");
        let k = b.cols();
        let mut out = DenseMatrix::zeros(self.rows, k);
        if self.rows == 0 || k == 0 {
            return out;
        }
        let min_rows = if self.nnz().saturating_mul(k) < PAR_MATVEC_WORK_CUTOFF {
            self.rows
        } else {
            32
        };
        let out_ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
        pool::par_chunks(self.rows, min_rows, |band| {
            // SAFETY: row bands are disjoint, so each output row has
            // exactly one writer; `out` outlives the parallel region.
            let out_band = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(band.start * k), band.len() * k)
            };
            let lo = band.start;
            for i in band {
                let (cols, vals) = self.row(i);
                let orow = &mut out_band[(i - lo) * k..(i - lo + 1) * k];
                for (&c, &v) in cols.iter().zip(vals) {
                    let brow = b.row(c as usize);
                    for (o, &bb) in orow.iter_mut().zip(brow) {
                        *o += v * bb;
                    }
                }
            }
        });
        out
    }

    /// Dense product `selfᵀ · B` (`rows × k` → `cols × k`) without
    /// materialising the transpose.
    ///
    /// Parallelised over disjoint *output column* bands: every band scans
    /// all rows and accumulates only the entries that land in its columns
    /// (a binary search per row finds them, cheap because `|S|` rows are
    /// few). Each output cell thus accumulates in ascending-row order —
    /// the serial order — so the result is bitwise identical for every
    /// thread count, unlike a per-thread-partial reduction.
    pub fn t_mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, b.rows(), "outer dimension mismatch");
        let k = b.cols();
        let mut out = DenseMatrix::zeros(self.cols, k);
        if self.cols == 0 || k == 0 {
            return out;
        }
        let min_cols = if self.nnz().saturating_mul(k) < PAR_MATVEC_WORK_CUTOFF {
            self.cols
        } else {
            64
        };
        let out_ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
        pool::par_chunks(self.cols, min_cols, |band| {
            // SAFETY: column bands are disjoint, so each output row (one
            // per matrix column) has exactly one writer; `out` outlives
            // the parallel region.
            let out_band = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.get().add(band.start * k), band.len() * k)
            };
            for i in 0..self.rows {
                let (cols, vals) = self.row(i);
                let lo = cols.partition_point(|&c| (c as usize) < band.start);
                let hi = cols.partition_point(|&c| (c as usize) < band.end);
                let brow = b.row(i);
                for (&c, &v) in cols[lo..hi].iter().zip(&vals[lo..hi]) {
                    let off = (c as usize - band.start) * k;
                    let orow = &mut out_band[off..off + k];
                    for (o, &bb) in orow.iter_mut().zip(brow) {
                        *o += v * bb;
                    }
                }
            }
        });
        out
    }

    /// Sparse matrix–vector product `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len());
        (0..self.rows)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }

    /// Densified copy (tests and the exact-SVD path of HSVD).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                m.set(i, c as usize, v);
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Restrict to a contiguous column range, re-indexing columns to start
    /// at zero. Used to slice the proximity matrix into Tree-SVD blocks.
    pub fn slice_cols(&self, start: u32, end: u32) -> CsrMatrix {
        assert!(start <= end && (end as usize) <= self.cols);
        let mut rows = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let lo = cols.partition_point(|&c| c < start);
            let hi = cols.partition_point(|&c| c < end);
            rows.push(
                cols[lo..hi]
                    .iter()
                    .zip(&vals[lo..hi])
                    .map(|(&c, &v)| (c - start, v))
                    .collect(),
            );
        }
        CsrMatrix::from_rows((end - start) as usize, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [0 3 4]
        CsrMatrix::from_rows(
            3,
            &[vec![(0, 1.0), (2, 2.0)], vec![], vec![(2, 4.0), (1, 3.0)]],
        )
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let m = CsrMatrix::from_rows(4, &[vec![(3, 1.0), (1, 2.0), (3, 2.5)]]);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[2.0, 3.5]);
    }

    #[test]
    fn zeros_dropped() {
        let m = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (1, 0.0)]]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn get_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 3.0);
    }

    #[test]
    fn mul_dense_matches_dense_mul() {
        let m = sample();
        let b = DenseMatrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let sparse = m.mul_dense(&b);
        let dense = m.to_dense().mul(&b);
        assert!(sparse.sub(&dense).frobenius_norm() < 1e-12);
    }

    #[test]
    fn t_mul_dense_matches_dense() {
        let m = sample();
        let b = DenseMatrix::from_fn(3, 2, |i, j| (2 * i + j) as f64 - 1.0);
        let sparse = m.t_mul_dense(&b);
        let dense = m.to_dense().t_mul(&b);
        assert!(sparse.sub(&dense).frobenius_norm() < 1e-12);
    }

    /// A matrix big enough that `nnz · k` crosses the parallel cutoff.
    fn large() -> CsrMatrix {
        let rows: Vec<Vec<(u32, f64)>> = (0..120)
            .map(|i| {
                (0..400u32)
                    .filter(|c| (i * 31 + *c as usize * 17).is_multiple_of(7))
                    .map(|c| (c, ((i as f64) - c as f64 * 0.25).sin()))
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(400, &rows)
    }

    #[test]
    fn parallel_mul_dense_is_bitwise_serial() {
        let m = large();
        let b = DenseMatrix::from_fn(400, 8, |i, j| ((i * 3 + j) as f64).cos());
        assert!(
            m.nnz() * 8 >= PAR_MATVEC_WORK_CUTOFF,
            "must hit parallel path"
        );
        let got = m.mul_dense(&b);
        // Reference: the plain serial row loop.
        let mut want = DenseMatrix::zeros(m.rows(), 8);
        for i in 0..m.rows() {
            let (cols, vals) = m.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                for j in 0..8 {
                    let cur = want.get(i, j);
                    want.set(i, j, cur + v * b.get(c as usize, j));
                }
            }
        }
        assert!(got.sub(&want).max_abs() == 0.0, "must match serial bitwise");
    }

    #[test]
    fn parallel_t_mul_dense_is_bitwise_serial() {
        let m = large();
        let b = DenseMatrix::from_fn(120, 8, |i, j| ((i * 5 + j) as f64).sin());
        assert!(
            m.nnz() * 8 >= PAR_MATVEC_WORK_CUTOFF,
            "must hit parallel path"
        );
        let got = m.t_mul_dense(&b);
        // Reference: serial scatter along rows (ascending-row accumulation).
        let mut want = DenseMatrix::zeros(m.cols(), 8);
        for i in 0..m.rows() {
            let (cols, vals) = m.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                for j in 0..8 {
                    let cur = want.get(c as usize, j);
                    want.set(c as usize, j, cur + v * b.get(i, j));
                }
            }
        }
        assert!(got.sub(&want).max_abs() == 0.0, "must match serial bitwise");
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = vec![1.0, -2.0, 0.5];
        let got = m.mul_vec(&x);
        let want = m.to_dense().mul_vec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_cols_reindexes() {
        let m = sample();
        let s = m.slice_cols(1, 3);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 1), 2.0); // old column 2
        assert_eq!(s.get(2, 0), 3.0); // old column 1
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn frobenius() {
        let m = sample();
        let want = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((m.frobenius_norm() - want).abs() < 1e-12);
        assert!((m.frobenius_norm_sq() - want * want).abs() < 1e-9);
    }

    #[test]
    fn slicing_partitions_norm() {
        let m = sample();
        let a = m.slice_cols(0, 1);
        let b = m.slice_cols(1, 3);
        let total = a.frobenius_norm_sq() + b.frobenius_norm_sq();
        assert!((total - m.frobenius_norm_sq()).abs() < 1e-12);
    }
}
