//! Golub–Kahan–Lanczos bidiagonalization with full reorthogonalisation —
//! the classic *deterministic* sparse truncated SVD, provided as an
//! alternative to the randomized range finder at Tree-SVD's first level.
//!
//! Lanczos builds orthonormal bases `U` (left) and `V` (right) one
//! matrix–vector product at a time, producing a small bidiagonal matrix
//! whose SVD converges to the extremal singular triplets of `A`. It needs
//! more sequential passes over the matrix than the randomized method (one
//! `A·v` and one `Aᵀ·u` per Lanczos step vs. blocked products) but no
//! random bits, and its Ritz values converge fastest exactly where Tree-SVD
//! truncates: at the top of the spectrum. Full reorthogonalisation keeps
//! the bases numerically orthogonal — at these subspace sizes
//! (`d + p ≤ a few hundred`) its `O(steps²·(m+n))` cost is immaterial next
//! to the sparse products.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::randomized::MatrixProduct;
use crate::svd::{exact_svd, Svd};

/// Parameters for the Lanczos SVD.
#[derive(Debug, Clone, Copy)]
pub struct LanczosConfig {
    /// Target rank `d`.
    pub rank: usize,
    /// Extra Lanczos steps beyond `d` (convergence headroom). 8–16 suffices
    /// for the decaying PPR spectra this system factorises.
    pub extra_steps: usize,
}

impl LanczosConfig {
    /// Config with the given rank and 12 extra steps.
    pub fn with_rank(rank: usize) -> Self {
        LanczosConfig {
            rank,
            extra_steps: 12,
        }
    }
}

/// Truncated SVD of `a` via Golub–Kahan–Lanczos bidiagonalization.
///
/// Deterministic: the start vector is a fixed unit vector pattern, so equal
/// inputs give equal outputs. Returns at most `cfg.rank` triplets (fewer if
/// the matrix rank is smaller — detected by breakdown of the recurrence).
pub fn lanczos_svd<A: MatrixProduct + ?Sized>(a: &A, cfg: &LanczosConfig) -> Svd {
    let (m, n) = (a.n_rows(), a.n_cols());
    let full = m.min(n);
    if full == 0 || cfg.rank == 0 {
        return Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            vt: DenseMatrix::zeros(0, n),
        };
    }
    let steps = (cfg.rank + cfg.extra_steps).min(full);

    // Bases stored as rows (each basis vector contiguous).
    let mut us: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(steps);

    // Deterministic start vector, forced into the row space: a raw dense
    // start in Rⁿ carries null-space components that the recurrence never
    // removes (w = Aᵀu − αv keeps v's null part), wasting basis directions
    // and stalling on low-rank inputs. Starting from v₁ = Aᵀu₀ keeps every
    // subsequent v in the row space, so breakdown ⇔ rank exhausted.
    let u0: Vec<f64> = (0..m)
        .map(|i| {
            let x = (i as f64 + 1.0) / m as f64;
            if i % 2 == 0 {
                0.5 + x
            } else {
                -(0.3 + x)
            }
        })
        .collect();
    let mut v = mat_tvec(a, &u0);
    if norm(&v) <= 1e-300 {
        // A is (numerically) zero or u₀ ⊥ column space; fall back to a raw
        // ramp so a pathological alignment still gets a chance.
        v = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        if mat_vec(a, &v).iter().all(|&x| x == 0.0) {
            return Svd {
                u: DenseMatrix::zeros(m, 0),
                s: Vec::new(),
                vt: DenseMatrix::zeros(0, n),
            };
        }
    }
    normalize(&mut v);

    let mut beta = 0.0_f64;
    for step in 0..steps {
        // u = A·v − β·u_prev
        let mut u = mat_vec(a, &v);
        if step > 0 {
            for (x, &p) in u.iter_mut().zip(&us[step - 1]) {
                *x -= beta * p;
            }
        }
        reorthogonalize(&mut u, &us);
        let alpha = norm(&u);
        if alpha <= 1e-13 {
            break; // rank exhausted
        }
        scale(&mut u, 1.0 / alpha);
        // w = Aᵀ·u − α·v
        let mut w = mat_tvec(a, &u);
        for (x, &p) in w.iter_mut().zip(&v) {
            *x -= alpha * p;
        }
        reorthogonalize(&mut w, &vs);
        beta = norm(&w);
        us.push(u);
        vs.push(v.clone());
        if beta <= 1e-13 {
            break; // invariant subspace reached
        }
        scale(&mut w, 1.0 / beta);
        v = w;
    }

    let k = us.len();
    if k == 0 {
        return Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            vt: DenseMatrix::zeros(0, n),
        };
    }
    // Rayleigh–Ritz projection: T = U_kᵀ·A·V_k. In exact arithmetic T is
    // the upper bidiagonal of the recurrence (diag α, superdiag β), but the
    // full reorthogonalisation perturbs that structure slightly; forming T
    // explicitly costs k extra sparse products and is exact regardless.
    let mut t = DenseMatrix::zeros(k, k);
    for (j, vj) in vs.iter().enumerate() {
        let av = mat_vec(a, vj);
        for (i, ui) in us.iter().enumerate() {
            let dot: f64 = ui.iter().zip(&av).map(|(x, y)| x * y).sum();
            t.set(i, j, dot);
        }
    }
    let inner = exact_svd(&t).truncate(cfg.rank);
    // U = U_k · U_b, Vᵀ = V_bᵀ · V_kᵀ.
    let r = inner.rank();
    let mut u_out = DenseMatrix::zeros(m, r);
    for (i, ui) in us.iter().enumerate() {
        for j in 0..r {
            let w = inner.u.get(i, j);
            if w == 0.0 {
                continue;
            }
            for (row, &val) in ui.iter().enumerate() {
                let cur = u_out.get(row, j);
                u_out.set(row, j, cur + w * val);
            }
        }
    }
    let mut vt_out = DenseMatrix::zeros(r, n);
    for (i, vi) in vs.iter().enumerate() {
        for j in 0..r {
            let w = inner.vt.get(j, i);
            if w == 0.0 {
                continue;
            }
            let out_row = vt_out.row_mut(j);
            for (o, &val) in out_row.iter_mut().zip(vi) {
                *o += w * val;
            }
        }
    }
    Svd {
        u: u_out,
        s: inner.s,
        vt: vt_out,
    }
}

/// Convenience: Lanczos SVD of a CSR matrix.
pub fn lanczos_svd_csr(a: &CsrMatrix, cfg: &LanczosConfig) -> Svd {
    lanczos_svd(a, cfg)
}

fn mat_vec<A: MatrixProduct + ?Sized>(a: &A, x: &[f64]) -> Vec<f64> {
    let xm = DenseMatrix::from_vec(x.len(), 1, x.to_vec());
    let y = a.mul_dense(&xm);
    y.as_slice().to_vec()
}

fn mat_tvec<A: MatrixProduct + ?Sized>(a: &A, x: &[f64]) -> Vec<f64> {
    let xm = DenseMatrix::from_vec(x.len(), 1, x.to_vec());
    let y = a.t_mul_dense(&xm);
    y.as_slice().to_vec()
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let nrm = norm(x);
    if nrm > 0.0 {
        scale(x, 1.0 / nrm);
    }
}

fn scale(x: &mut [f64], f: f64) {
    for v in x {
        *v *= f;
    }
}

/// Two passes of classical Gram–Schmidt against every previous basis vector
/// ("twice is enough" — Kahan/Parlett).
fn reorthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for b in basis {
            let dot: f64 = x.iter().zip(b).map(|(a, c)| a * c).sum();
            if dot != 0.0 {
                for (xi, &bi) in x.iter_mut().zip(b) {
                    *xi -= dot * bi;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormalize;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn matrix_with_spectrum(rng: &mut StdRng, m: usize, n: usize, spectrum: &[f64]) -> DenseMatrix {
        let r = spectrum.len();
        let u = orthonormalize(&gaussian_matrix(rng, m, r));
        let v = orthonormalize(&gaussian_matrix(rng, n, r));
        let mut us = u;
        us.scale_cols(spectrum);
        us.mul(&v.transpose())
    }

    #[test]
    fn recovers_top_singular_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec: Vec<f64> = (0..20).map(|i| 10.0 * 0.7f64.powi(i)).collect();
        let a = matrix_with_spectrum(&mut rng, 50, 120, &spec);
        let svd = lanczos_svd(
            &a,
            &LanczosConfig {
                rank: 6,
                extra_steps: 14,
            },
        );
        for j in 0..6 {
            assert!(
                (svd.s[j] - spec[j]).abs() < 1e-6 * spec[0],
                "σ_{j}: {} vs {}",
                svd.s[j],
                spec[j]
            );
        }
        // Factors orthonormal.
        let gu = svd.u.t_mul(&svd.u);
        assert!(gu.sub(&DenseMatrix::identity(6)).max_abs() < 1e-8);
        let gv = svd.vt.mul(&svd.vt.transpose());
        assert!(gv.sub(&DenseMatrix::identity(6)).max_abs() < 1e-8);
    }

    #[test]
    fn near_optimal_reconstruction() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec: Vec<f64> = (0..30).map(|i| 0.85f64.powi(i)).collect();
        let a = matrix_with_spectrum(&mut rng, 60, 90, &spec);
        let d = 8;
        let svd = lanczos_svd(&a, &LanczosConfig::with_rank(d));
        let err = svd.reconstruct().sub(&a).frobenius_norm();
        let opt: f64 = spec[d..].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err <= 1.05 * opt + 1e-9, "err {err} vs optimal {opt}");
    }

    #[test]
    fn exact_on_low_rank() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = matrix_with_spectrum(&mut rng, 40, 70, &[5.0, 2.0, 1.0]);
        // Ask for more than the true rank: breakdown must stop cleanly.
        let svd = lanczos_svd(
            &a,
            &LanczosConfig {
                rank: 8,
                extra_steps: 10,
            },
        );
        assert!(svd.reconstruct().sub(&a).max_abs() < 1e-8);
        let effective = svd.s.iter().filter(|&&s| s > 1e-9).count();
        assert_eq!(effective, 3);
    }

    #[test]
    fn sparse_csr_path_matches_dense() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<(u32, f64)>> = (0..40)
            .map(|_| {
                let mut r = Vec::new();
                for c in 0..90u32 {
                    if rng.gen_bool(0.15) {
                        r.push((c, rng.gen_range(0.2..2.0)));
                    }
                }
                r
            })
            .collect();
        let sp = CsrMatrix::from_rows(90, &rows);
        let de = sp.to_dense();
        let cfg = LanczosConfig::with_rank(5);
        let s1 = lanczos_svd_csr(&sp, &cfg);
        let s2 = lanczos_svd(&de, &cfg);
        for (a, b) in s1.s.iter().zip(&s2.s) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_exact_svd_spectrum() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = gaussian_matrix(&mut rng, 30, 45);
        let lan = lanczos_svd(
            &a,
            &LanczosConfig {
                rank: 5,
                extra_steps: 25,
            },
        );
        let ex = exact_svd(&a);
        for j in 0..5 {
            assert!(
                (lan.s[j] - ex.s[j]).abs() < 1e-6 * ex.s[0],
                "σ_{j}: {} vs {}",
                lan.s[j],
                ex.s[j]
            );
        }
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = gaussian_matrix(&mut rng, 25, 35);
        let cfg = LanczosConfig::with_rank(4);
        let s1 = lanczos_svd(&a, &cfg);
        let s2 = lanczos_svd(&a, &cfg);
        assert!(s1.u.sub(&s2.u).max_abs() == 0.0);
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn zero_matrix() {
        let a = CsrMatrix::zeros(10, 20);
        let svd = lanczos_svd_csr(&a, &LanczosConfig::with_rank(3));
        assert!(svd.s.iter().all(|&s| s < 1e-12));
    }
}
