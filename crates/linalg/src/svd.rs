//! Exact singular value decomposition.
//!
//! `exact_svd` computes a full thin SVD `A = U · diag(σ) · Vᵀ`. Wide
//! matrices are transposed, very tall ones pre-reduced with Householder QR,
//! and the square-ish core is factorised by Golub–Reinsch (the `gr` module,
//! `O(m·n²)`). One-sided Jacobi remains as the small-matrix kernel, the
//! fallback on GR non-convergence, and the independent test oracle — it is
//! simple enough to audit by eye, which is worth keeping around in a system
//! whose correctness rests on these factorisations.

use crate::dense::DenseMatrix;
use crate::qr::qr;

/// A (possibly truncated) singular value decomposition `A ≈ U·diag(σ)·Vᵀ`.
///
/// # Examples
///
/// ```
/// use tsvd_linalg::{svd::exact_svd, DenseMatrix};
///
/// let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
/// let svd = exact_svd(&a);
/// assert!((svd.s[0] - 4.0).abs() < 1e-12);
/// assert!(svd.reconstruct().sub(&a).max_abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × r`, orthonormal columns.
    pub u: DenseMatrix,
    /// Singular values, descending, length `r`.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `r × n`, orthonormal rows.
    pub vt: DenseMatrix,
}

tsvd_rt::impl_json_struct!(Svd { u, s, vt });

impl Svd {
    /// Rank of this decomposition (number of retained singular triplets).
    #[inline]
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Keep only the top `d` singular triplets (no-op if `d ≥ rank`).
    pub fn truncate(&self, d: usize) -> Svd {
        if d >= self.rank() {
            return self.clone();
        }
        let u = self.u.take_cols(d);
        let s = self.s[..d].to_vec();
        let mut vt = DenseMatrix::zeros(d, self.vt.cols());
        for i in 0..d {
            vt.row_mut(i).copy_from_slice(self.vt.row(i));
        }
        Svd { u, s, vt }
    }

    /// `U · diag(σ)` — the compressed representation Tree-SVD propagates
    /// between levels (written `(U)_d (Σ)_d` in the paper).
    pub fn u_sigma(&self) -> DenseMatrix {
        let mut m = self.u.clone();
        m.scale_cols(&self.s);
        m
    }

    /// `U · diag(√σ)` — the node-embedding convention of STRAP/NRP
    /// (`X = U·√Σ`).
    pub fn embedding(&self) -> DenseMatrix {
        let sq: Vec<f64> = self.s.iter().map(|v| v.max(0.0).sqrt()).collect();
        let mut m = self.u.clone();
        m.scale_cols(&sq);
        m
    }

    /// Reconstruct `U·diag(σ)·Vᵀ` densely (tests and error measurement).
    pub fn reconstruct(&self) -> DenseMatrix {
        self.u_sigma().mul(&self.vt)
    }

    /// `‖A‖_F² − Σ σ_i²`: the squared Frobenius residual `‖A − A_d‖_F²` when
    /// the decomposition is exact, and the standard estimate of it when the
    /// decomposition came from a randomized method. Clamped at zero.
    pub fn residual_sq(&self, a_frob_sq: f64) -> f64 {
        let cap: f64 = self.s.iter().map(|v| v * v).sum();
        (a_frob_sq - cap).max(0.0)
    }
}

/// Full thin SVD of `a`.
///
/// Dispatch: matrices with ≥ 12 columns (after the transpose/QR reductions
/// below) go to Golub–Reinsch (the `gr` module); smaller ones — and the
/// never-observed case of a GR convergence failure — use one-sided Jacobi.
pub fn exact_svd(a: &DenseMatrix) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return Svd {
            u: DenseMatrix::zeros(m, 0),
            s: Vec::new(),
            vt: DenseMatrix::zeros(0, n),
        };
    }
    if m < n {
        // SVD of the transpose, then swap factors: A = (Uᵀ' Σ V'ᵀ)ᵀ = V' Σ U'ᵀ.
        let t = exact_svd(&a.transpose());
        return Svd {
            u: t.vt.transpose(),
            s: t.s,
            vt: t.u.transpose(),
        };
    }
    if m > 2 * n {
        // Very tall: A = Q·R, SVD of R (n×n), U = Q·U_R.
        let f = qr(a);
        let inner = dense_svd_tall(&f.r);
        return Svd {
            u: f.q.mul(&inner.u),
            s: inner.s,
            vt: inner.vt,
        };
    }
    dense_svd_tall(a)
}

/// SVD of a matrix with `rows ≥ cols`, choosing the kernel by size.
fn dense_svd_tall(a: &DenseMatrix) -> Svd {
    if a.cols() >= 12 {
        if let Some((u, w, v)) = crate::gr::golub_reinsch(a) {
            return sorted_svd(u, w, v);
        }
    }
    jacobi_svd(a)
}

/// Package an unsorted `(U, w, V)` triple as a descending-order [`Svd`].
fn sorted_svd(u: DenseMatrix, w: Vec<f64>, v: DenseMatrix) -> Svd {
    let n = w.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[j].partial_cmp(&w[i]).unwrap());
    let su = DenseMatrix::from_fn(u.rows(), n, |i, j| u.get(i, order[j]));
    let s: Vec<f64> = order.iter().map(|&j| w[j]).collect();
    let vt = DenseMatrix::from_fn(n, v.rows(), |i, j| v.get(j, order[i]));
    Svd { u: su, s, vt }
}

/// Jacobi-only SVD, exposed for cross-validation in gr.rs tests.
#[cfg(test)]
pub(crate) fn exact_svd_jacobi_for_tests(a: &DenseMatrix) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        let t = exact_svd_jacobi_for_tests(&a.transpose());
        return Svd {
            u: t.vt.transpose(),
            s: t.s,
            vt: t.u.transpose(),
        };
    }
    jacobi_svd(a)
}

/// Top-`d` truncated exact SVD.
pub fn exact_truncated_svd(a: &DenseMatrix, d: usize) -> Svd {
    exact_svd(a).truncate(d)
}

/// One-sided Jacobi SVD of `a` with `rows ≥ cols`.
fn jacobi_svd(a: &DenseMatrix) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    debug_assert!(m >= n);
    // Column-major working copy: row j of `w` is column j of `a`.
    let mut w = a.transpose();
    let mut v = DenseMatrix::identity(n);

    // Convergence: stop rotating a pair once the off-diagonal correlation
    // is below eps relative to the column norms. 1e-12 leaves singular
    // values accurate to ~12 digits — far past what rank-d truncation of a
    // PPR spectrum can resolve — and saves the last few sweeps that pure
    // machine-precision convergence would burn.
    let eps = 1e-12_f64;
    let total_sq: f64 = w.as_slice().iter().map(|x| x * x).sum();
    // Columns this far below the matrix scale are numerically null; the
    // rotations between them would only chase rounding noise.
    let negligible = total_sq * 1e-28;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for (x, y) in w.row(p).iter().zip(w.row(q)) {
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= eps * (app * aqq).sqrt()
                    || apq == 0.0
                    || app * aqq <= negligible * negligible
                {
                    continue;
                }
                rotated = true;
                // 2×2 symmetric eigenproblem on [[app, apq], [apq, aqq]].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate columns p and q of A (rows p/q of w).
                // Split borrows via index math on the raw buffer.
                {
                    let (lo, hi) = (p.min(q), p.max(q));
                    let (head, tail) = w.as_mut_slice().split_at_mut(hi * m);
                    let rp;
                    let rq;
                    if p < q {
                        rp = &mut head[p * m..(p + 1) * m];
                        rq = &mut tail[..m];
                    } else {
                        rq = &mut head[q * m..(q + 1) * m];
                        rp = &mut tail[..m];
                    }
                    let _ = lo;
                    for (x, y) in rp.iter_mut().zip(rq.iter_mut()) {
                        let xp = *x;
                        let yq = *y;
                        *x = c * xp - s * yq;
                        *y = s * xp + c * yq;
                    }
                }
                // Same rotation on V's columns p, q.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values = column norms; U columns = normalised A columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| w.row(j).iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = DenseMatrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = DenseMatrix::zeros(n, n);
    for (out_j, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, out_j, w.row(j)[i] / sigma);
            }
        }
        // If sigma == 0 the U column stays zero; it never contributes to a
        // reconstruction and truncation drops it in practice.
        for k in 0..n {
            vt.set(out_j, k, v.get(k, j));
        }
    }
    Svd { u, s, vt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::SeedableRng;
    use tsvd_rt::rng::StdRng;

    fn check_svd(a: &DenseMatrix, svd: &Svd, tol: f64) {
        let back = svd.reconstruct();
        assert!(
            back.sub(a).max_abs() < tol,
            "reconstruction error {}",
            back.sub(a).max_abs()
        );
        // Orthonormality (ignoring zero singular directions).
        let r = svd.s.iter().filter(|&&x| x > 1e-9).count();
        let tr = svd.truncate(r);
        let gu = tr.u.t_mul(&tr.u);
        assert!(
            gu.sub(&DenseMatrix::identity(r)).max_abs() < 1e-8,
            "U not orthonormal"
        );
        let gv = tr.vt.mul(&tr.vt.transpose());
        assert!(
            gv.sub(&DenseMatrix::identity(r)).max_abs() < 1e-8,
            "V not orthonormal"
        );
        // Descending.
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn known_diagonal() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0], &[0.0, 0.0]]);
        let svd = exact_svd(&a);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        check_svd(&a, &svd, 1e-12);
    }

    #[test]
    fn random_shapes() {
        let mut rng = StdRng::seed_from_u64(99);
        for &(m, n) in &[
            (1usize, 1usize),
            (5, 5),
            (20, 7),
            (7, 20),
            (40, 3),
            (3, 40),
            (16, 16),
        ] {
            let a = gaussian_matrix(&mut rng, m, n);
            let svd = exact_svd(&a);
            assert_eq!(svd.rank(), m.min(n));
            check_svd(&a, &svd, 1e-9);
        }
    }

    #[test]
    fn rank_deficient() {
        // rank-1 outer product
        let u = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let v = DenseMatrix::from_rows(&[&[4.0, 5.0, 6.0, 7.0]]);
        let a = u.mul(&v);
        let svd = exact_svd(&a);
        check_svd(&a, &svd, 1e-10);
        assert!(svd.s[1] < 1e-10, "second singular value should vanish");
        // Truncated to rank 1 reconstructs exactly.
        let t = svd.truncate(1);
        assert!(t.reconstruct().sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn truncation_is_best_approximation() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gaussian_matrix(&mut rng, 12, 9);
        let svd = exact_svd(&a);
        let d = 4;
        let t = svd.truncate(d);
        // Eckart–Young: residual² == Σ_{i>d} σ_i².
        let resid = t.reconstruct().sub(&a).frobenius_norm().powi(2);
        let tail: f64 = svd.s[d..].iter().map(|v| v * v).sum();
        assert!((resid - tail).abs() < 1e-9 * (1.0 + tail));
        // residual_sq helper agrees.
        let est = t.residual_sq(a.frobenius_norm().powi(2));
        assert!((est - tail).abs() < 1e-9 * (1.0 + tail));
    }

    #[test]
    fn u_sigma_and_embedding_scaling() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = gaussian_matrix(&mut rng, 10, 4);
        let svd = exact_svd(&a);
        let us = svd.u_sigma();
        for j in 0..4 {
            let norm = us.col_norm_sq(j).sqrt();
            assert!((norm - svd.s[j]).abs() < 1e-9);
        }
        let emb = svd.embedding();
        for j in 0..4 {
            let norm = emb.col_norm_sq(j).sqrt();
            assert!((norm - svd.s[j].sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_matrix_svd() {
        let a = DenseMatrix::zeros(5, 3);
        let svd = exact_svd(&a);
        assert!(svd.s.iter().all(|&x| x == 0.0));
        assert!(svd.reconstruct().max_abs() < 1e-15);
    }

    #[test]
    fn empty_dims() {
        let a = DenseMatrix::zeros(0, 3);
        let svd = exact_svd(&a);
        assert_eq!(svd.rank(), 0);
        let b = DenseMatrix::zeros(3, 0);
        let svd2 = exact_svd(&b);
        assert_eq!(svd2.rank(), 0);
    }

    #[test]
    fn tall_qr_path_matches_direct() {
        let mut rng = StdRng::seed_from_u64(17);
        // 100×8 forces the QR pre-reduction path.
        let a = gaussian_matrix(&mut rng, 100, 8);
        let svd = exact_svd(&a);
        check_svd(&a, &svd, 1e-9);
    }
}
