//! Gaussian sampling helpers on top of `rand` (no `rand_distr` offline).

use crate::dense::DenseMatrix;
use rand::Rng;

/// Draw one standard-normal sample via the Box–Muller transform.
///
/// Two uniform draws per call; the second Box–Muller output is discarded to
/// keep the generator state layout simple (throughput here is irrelevant —
/// test matrices are tiny compared to the sparse products they feed).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0): sample u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `rows × cols` matrix of i.i.d. standard-normal entries.
pub fn gaussian_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |_, _| standard_normal(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(3), 4, 5);
        let b = gaussian_matrix(&mut StdRng::seed_from_u64(3), 4, 5);
        assert_eq!(a, b);
        let c = gaussian_matrix(&mut StdRng::seed_from_u64(4), 4, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn all_finite() {
        let m = gaussian_matrix(&mut StdRng::seed_from_u64(11), 50, 50);
        assert!(m.is_finite());
    }
}
