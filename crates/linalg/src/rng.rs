//! Gaussian sampling helpers on top of [`tsvd_rt::rng`].

use crate::dense::DenseMatrix;
use tsvd_rt::rng::RngCore;

pub use tsvd_rt::rng::standard_normal;

/// A `rows × cols` matrix of i.i.d. standard-normal entries.
pub fn gaussian_matrix<R: RngCore + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |_, _| standard_normal(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::{SeedableRng, StdRng};

    // The distribution moment test for `standard_normal` lives with the
    // generator itself, in `tsvd_rt::rng`.

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(3), 4, 5);
        let b = gaussian_matrix(&mut StdRng::seed_from_u64(3), 4, 5);
        assert_eq!(a, b);
        let c = gaussian_matrix(&mut StdRng::seed_from_u64(4), 4, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn all_finite() {
        let m = gaussian_matrix(&mut StdRng::seed_from_u64(11), 50, 50);
        assert!(m.is_finite());
    }
}
