//! Incremental truncated-SVD updates from sparse row deltas.
//!
//! Given a rank-`k` factorisation `B ≈ U·diag(σ)·Vᵀ` and a sparse additive
//! perturbation touching `c` rows, `B' = B + Σᵢ e_{rᵢ}·dᵢᵀ`, the update is
//! the Brand/Zha–Simon scheme the dynamic-embedding literature uses (Deng
//! et al., arXiv 2401.09703 / 2306.08967) instead of refactorising:
//!
//! 1. project the delta onto the current bases (`UᵀS`, `VᵀD`);
//! 2. QR the out-of-subspace residuals on both sides (`Qp·Rp`, `Qq·Rq`);
//! 3. re-diagonalise the small `(k+c)×(k+c)` augmented core exactly;
//! 4. rotate `[U Qp]`/`[V Qq]` by the core's factors and truncate back.
//!
//! Cost is `O((m+n)·(k+c)² + (k+c)³)` — independent of `nnz(B)` — versus
//! `O(nnz·(k+p))` for a fresh randomized factorisation, which is where the
//! per-flush speedup on delta-sparse windows comes from.
//!
//! Two entry points with different cost/accuracy trades:
//!
//! * [`svd_update_rows`] — the full basis-expanding update above. Exact
//!   when `k + c` covers the true rank of `B'`; otherwise optimal up to the
//!   truncation (the only information lost is what rank-`k` truncation
//!   always loses).
//! * [`svd_core_patch`] — steps 1 and 3 only, on the `k×k` core: the delta
//!   is projected onto the *current* subspaces and any out-of-subspace
//!   component is dropped. Cheaper (no QR on `m`/`n`-sized blocks) and
//!   exactly right when the perturbation lies in the retained subspaces;
//!   callers gate it behind a small relative-delta budget.

use crate::dense::DenseMatrix;
use crate::qr::qr;
use crate::svd::{exact_svd, Svd};

/// A sparse additive update to one row: `row` gains `entries` (sorted by
/// column, zero diffs omitted). Replacing a row is the delta `new − old`.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Row index into the factorised matrix.
    pub row: usize,
    /// Sorted `(col, value)` additive entries.
    pub entries: Vec<(u32, f64)>,
}

tsvd_rt::impl_json_struct!(RowDelta { row, entries });

impl RowDelta {
    /// Squared Frobenius norm of this row's delta.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }
}

/// Drop deltas with no entries; the kernels treat them as absent.
fn live(deltas: &[RowDelta]) -> Vec<&RowDelta> {
    deltas.iter().filter(|d| !d.entries.is_empty()).collect()
}

/// `Vᵀ·D` where `D`'s column `i` is the sparse delta vector of `deltas[i]`
/// (`n`-dimensional). `vt` is `k × n`; result is `k × c`.
fn project_vt(vt: &DenseMatrix, deltas: &[&RowDelta]) -> DenseMatrix {
    let k = vt.rows();
    let mut out = DenseMatrix::zeros(k, deltas.len());
    for (i, d) in deltas.iter().enumerate() {
        for &(col, val) in &d.entries {
            let col = col as usize;
            for a in 0..k {
                let cur = out.get(a, i);
                out.set(a, i, cur + vt.get(a, col) * val);
            }
        }
    }
    out
}

/// `Uᵀ·S` where `S`'s column `i` is the standard basis vector `e_{rowᵢ}`:
/// column `i` of the result is row `rowᵢ` of `U`. `k × c`.
fn project_u(u: &DenseMatrix, deltas: &[&RowDelta]) -> DenseMatrix {
    DenseMatrix::from_fn(u.cols(), deltas.len(), |a, i| u.get(deltas[i].row, a))
}

/// Rank-expanding incremental update: the truncated SVD of
/// `U·diag(σ)·Vᵀ + Σᵢ e_{rowᵢ}·entriesᵢᵀ`, truncated back to `rank`.
///
/// Requirements: the factors must be orthonormal (as produced by
/// [`exact_svd`]/[`crate::randomized::randomized_svd`]), every `row` must
/// be in range and distinct, and the number of non-empty deltas `c` must
/// satisfy `c ≤ m` and `c ≤ n` (the residual QRs need tall blocks). An
/// all-empty delta set returns a bitwise clone.
pub fn svd_update_rows(svd: &Svd, deltas: &[RowDelta], rank: usize) -> Svd {
    let live = live(deltas);
    if live.is_empty() {
        return svd.clone();
    }
    let (m, n) = (svd.u.rows(), svd.vt.cols());
    let k = svd.rank();
    let c = live.len();
    assert!(
        c <= m && c <= n,
        "more deltas ({c}) than matrix dims {m}×{n}"
    );
    for d in &live {
        assert!(d.row < m, "delta row {} out of range ({m} rows)", d.row);
        debug_assert!(d.entries.iter().all(|&(col, _)| (col as usize) < n));
    }

    // Step 1: both-side projections of the perturbation S·Dᵀ.
    let uts = project_u(&svd.u, &live); // k × c
    let vtd = project_vt(&svd.vt, &live); // k × c

    // Step 2: QR of the out-of-subspace residuals.
    // Left: (I − U·Uᵀ)·S, dense m × c.
    let mut p = svd.u.mul(&uts); // U·(UᵀS)
    for (i, d) in live.iter().enumerate() {
        let cur = p.get(d.row, i);
        p.set(d.row, i, cur - 1.0);
    }
    for v in p.as_mut_slice() {
        *v = -*v; // S − U·UᵀS
    }
    let lf = qr(&p);
    // Right: (I − V·Vᵀ)·D, dense n × c.
    let mut q = svd.vt.t_mul(&vtd); // V·(VᵀD)
    for (i, d) in live.iter().enumerate() {
        for &(col, val) in &d.entries {
            let cur = q.get(col as usize, i);
            q.set(col as usize, i, cur - val);
        }
    }
    for v in q.as_mut_slice() {
        *v = -*v; // D − V·VᵀD
    }
    let rf = qr(&q);

    // Step 3: exact SVD of the (k+c)×(k+c) augmented core
    //   K = [[diag(σ), 0], [0, 0]] + [UᵀS; Rp]·[VᵀD; Rq]ᵀ.
    let kc = k + c;
    let left = DenseMatrix::from_fn(kc, c, |a, i| {
        if a < k {
            uts.get(a, i)
        } else {
            lf.r.get(a - k, i)
        }
    });
    let right = DenseMatrix::from_fn(kc, c, |a, i| {
        if a < k {
            vtd.get(a, i)
        } else {
            rf.r.get(a - k, i)
        }
    });
    let cross = left.mul(&right.transpose());
    let core = DenseMatrix::from_fn(kc, kc, |a, b| {
        cross.get(a, b) + if a == b && a < k { svd.s[a] } else { 0.0 }
    });
    let core_svd = exact_svd(&core).truncate(rank.min(kc));

    // Step 4: rotate the expanded bases by the core's factors.
    let u_big = DenseMatrix::hconcat(&[&svd.u, &lf.q]); // m × (k+c)
    let u = u_big.mul(&core_svd.u);
    // [V Qq]ᵀ stacked as rows: k rows of vt, then c rows of Qqᵀ.
    let v_big_t = DenseMatrix::from_fn(kc, n, |a, b| {
        if a < k {
            svd.vt.get(a, b)
        } else {
            rf.q.get(b, a - k)
        }
    });
    let vt = core_svd.vt.mul(&v_big_t);
    Svd {
        u,
        s: core_svd.s,
        vt,
    }
}

/// In-place core patch: the perturbation is projected onto the *current*
/// `U`/`V` subspaces and the `k×k` core `diag(σ) + UᵀS·(VᵀD)ᵀ` is
/// re-diagonalised exactly; the out-of-subspace component of the delta is
/// dropped. The returned factors stay orthonormal (they are the old bases
/// rotated by the core's singular vectors), so further updates compose.
/// An all-empty delta set returns a bitwise clone.
pub fn svd_core_patch(svd: &Svd, deltas: &[RowDelta]) -> Svd {
    let live = live(deltas);
    if live.is_empty() {
        return svd.clone();
    }
    let m = svd.u.rows();
    let k = svd.rank();
    for d in &live {
        assert!(d.row < m, "delta row {} out of range ({m} rows)", d.row);
    }
    let uts = project_u(&svd.u, &live); // k × c
    let vtd = project_vt(&svd.vt, &live); // k × c
    let cross = uts.mul(&vtd.transpose()); // k × k
    let core = DenseMatrix::from_fn(k, k, |a, b| {
        cross.get(a, b) + if a == b { svd.s[a] } else { 0.0 }
    });
    let core_svd = exact_svd(&core);
    Svd {
        u: svd.u.mul(&core_svd.u),
        s: core_svd.s,
        vt: core_svd.vt.mul(&svd.vt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_matrix;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn apply_deltas_dense(a: &DenseMatrix, deltas: &[RowDelta]) -> DenseMatrix {
        let mut out = a.clone();
        for d in deltas {
            for &(col, val) in &d.entries {
                let cur = out.get(d.row, col as usize);
                out.set(d.row, col as usize, cur + val);
            }
        }
        out
    }

    fn sparse_deltas(rng: &mut StdRng, rows: &[usize], n: usize) -> Vec<RowDelta> {
        rows.iter()
            .map(|&row| {
                let mut entries: Vec<(u32, f64)> = Vec::new();
                for c in 0..n as u32 {
                    if rng.gen_bool(0.3) {
                        entries.push((c, rng.gen_range(-1.5..1.5)));
                    }
                }
                RowDelta { row, entries }
            })
            .collect()
    }

    fn check_orthonormal(svd: &Svd, tol: f64) {
        let r = svd.s.iter().filter(|&&x| x > 1e-9).count();
        let tr = svd.truncate(r);
        let gu = tr.u.t_mul(&tr.u);
        assert!(
            gu.sub(&DenseMatrix::identity(r)).max_abs() < tol,
            "U drifted from orthonormal by {}",
            gu.sub(&DenseMatrix::identity(r)).max_abs()
        );
        let gv = tr.vt.mul(&tr.vt.transpose());
        assert!(
            gv.sub(&DenseMatrix::identity(r)).max_abs() < tol,
            "V drifted from orthonormal by {}",
            gv.sub(&DenseMatrix::identity(r)).max_abs()
        );
    }

    #[test]
    fn full_rank_update_matches_exact_svd() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gaussian_matrix(&mut rng, 18, 30);
        let svd = exact_svd(&a); // full rank 18
        let deltas = sparse_deltas(&mut rng, &[2, 7, 11], 30);
        let updated = svd_update_rows(&svd, &deltas, svd.rank() + deltas.len());
        let truth = apply_deltas_dense(&a, &deltas);
        assert!(
            updated.reconstruct().sub(&truth).max_abs() < 1e-9,
            "err {}",
            updated.reconstruct().sub(&truth).max_abs()
        );
        check_orthonormal(&updated, 1e-9);
        // Singular values match the exact refactorisation.
        let fresh = exact_svd(&truth);
        for (a, b) in updated.s.iter().zip(&fresh.s) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b), "{a} vs {b}");
        }
    }

    #[test]
    fn row_replacement_via_difference_delta() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gaussian_matrix(&mut rng, 12, 20);
        let svd = exact_svd(&a);
        // Replace row 5 entirely: delta = new − old.
        let new_row: Vec<f64> = (0..20).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let entries: Vec<(u32, f64)> = (0..20)
            .map(|c| (c as u32, new_row[c] - a.get(5, c)))
            .collect();
        let deltas = vec![RowDelta { row: 5, entries }];
        let updated = svd_update_rows(&svd, &deltas, svd.rank() + 1);
        let mut truth = a.clone();
        for (c, &v) in new_row.iter().enumerate() {
            truth.set(5, c, v);
        }
        assert!(updated.reconstruct().sub(&truth).max_abs() < 1e-9);
    }

    #[test]
    fn truncated_update_is_near_optimal() {
        // Low-rank signal + small sparse delta: the rank-d update must stay
        // within a whisker of the best rank-d approximation of B'.
        let mut rng = StdRng::seed_from_u64(3);
        let left = gaussian_matrix(&mut rng, 40, 5);
        let right = gaussian_matrix(&mut rng, 5, 60);
        let a = left.mul(&right);
        let d = 8;
        let svd = exact_svd(&a).truncate(d);
        let deltas = sparse_deltas(&mut rng, &[0, 13, 29], 60);
        let updated = svd_update_rows(&svd, &deltas, d);
        let truth = apply_deltas_dense(&a, &deltas);
        let err = updated.reconstruct().sub(&truth).frobenius_norm();
        let opt: f64 = exact_svd(&truth).s[d..]
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt();
        assert!(err <= opt + 1e-8, "err {err} vs optimal {opt}");
        check_orthonormal(&updated, 1e-9);
    }

    #[test]
    fn empty_delta_is_bitwise_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = gaussian_matrix(&mut rng, 10, 14);
        let svd = exact_svd(&a).truncate(4);
        for deltas in [
            Vec::new(),
            vec![RowDelta {
                row: 3,
                entries: Vec::new(),
            }],
        ] {
            for out in [
                svd_update_rows(&svd, &deltas, 4),
                svd_core_patch(&svd, &deltas),
            ] {
                assert_eq!(out.s, svd.s);
                assert_eq!(out.u.as_slice(), svd.u.as_slice());
                assert_eq!(out.vt.as_slice(), svd.vt.as_slice());
            }
        }
    }

    #[test]
    fn core_patch_exact_for_in_subspace_deltas() {
        // A delta that lies inside span(U) ⊗ span(V) is captured exactly by
        // the projection-only patch. Construct U so that e_2 ∈ span(U)
        // (rows 0..4 are the canonical basis) and perturb row 2 along its
        // own content (a span(V) direction).
        let mut rng = StdRng::seed_from_u64(5);
        let u = DenseMatrix::from_fn(15, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let vt = crate::qr::orthonormalize(&gaussian_matrix(&mut rng, 25, 4)).transpose();
        let svd = Svd {
            u,
            s: vec![5.0, 4.0, 3.0, 2.0],
            vt,
        };
        let a = svd.reconstruct();
        let eps = 0.05;
        let entries: Vec<(u32, f64)> = (0..25)
            .map(|c| (c as u32, eps * a.get(2, c)))
            .filter(|&(_, v)| v != 0.0)
            .collect();
        let deltas = vec![RowDelta { row: 2, entries }];
        let truth = apply_deltas_dense(&a, &deltas);
        let patched = svd_core_patch(&svd, &deltas);
        check_orthonormal(&patched, 1e-9);
        assert!(
            patched.reconstruct().sub(&truth).max_abs() < 1e-10,
            "in-subspace patch not exact: {}",
            patched.reconstruct().sub(&truth).max_abs()
        );
    }

    #[test]
    fn updates_compose_over_a_stream() {
        // Maintain a full-rank factorisation through 10 delta rounds; it
        // must track the exact SVD of the evolving matrix throughout.
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = gaussian_matrix(&mut rng, 10, 16);
        let mut svd = exact_svd(&a);
        for round in 0..10 {
            let rows = [round % 10, (round * 3 + 1) % 10];
            let deltas = sparse_deltas(&mut rng, &rows, 16);
            a = apply_deltas_dense(&a, &deltas);
            svd = svd_update_rows(&svd, &deltas, 10);
            assert!(
                svd.reconstruct().sub(&a).max_abs() < 1e-7,
                "round {round}: drift {}",
                svd.reconstruct().sub(&a).max_abs()
            );
            check_orthonormal(&svd, 1e-8);
        }
    }

    #[test]
    fn rank_clamps_when_target_exceeds_expanded_core() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = gaussian_matrix(&mut rng, 8, 12);
        let svd = exact_svd(&a).truncate(3);
        let deltas = sparse_deltas(&mut rng, &[1], 12);
        // rank 50 ≥ k + c = 4: kept rank is the whole expanded core.
        let updated = svd_update_rows(&svd, &deltas, 50);
        assert_eq!(updated.rank(), 4);
        assert!(updated.u.is_finite() && updated.vt.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_rejected() {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(8), 6, 9);
        let svd = exact_svd(&a);
        let deltas = vec![RowDelta {
            row: 6,
            entries: vec![(0, 1.0)],
        }];
        let _ = svd_update_rows(&svd, &deltas, 6);
    }
}
