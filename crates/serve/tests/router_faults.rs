//! Router fault battery: every failure mode of the scatter-gather tier,
//! over real TCP sockets, without leaving the test process.
//!
//! * A shard stuck below the barrier epoch → bounded retries, then the
//!   typed [`RouterError::EpochBarrier`] — never a torn merge.
//! * A gathered reply set with a row-coverage gap or overlap → typed
//!   merge rejection.
//! * A corrupt frame from one shard → that request fails
//!   ([`RouterError::Io`]), the router and the other shards stay up, and
//!   the next read succeeds.
//! * A dead leader → failover to its journal-fed follower replica, with
//!   the merged reply bitwise equal to the offline replay — and writes
//!   continuing on the surviving leader.
//! * A follower that outlived the leader's bounded journal → re-seed
//!   over the wire (`GetCheckpoint`), landing bitwise on the replay.

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::net::wire::{
    encode_frame, read_frame, Message, Reply, Request, RowsReply, TopKReply,
};
use tsvd_serve::net::{ClientConfig, NetClient, TcpTransport};
use tsvd_serve::{
    EmbeddingServer, Follower, Metric, NetFront, Router, RouterConfig, RouterError, RouterFront,
    ServeConfig, ShardEndpoint, ShardMap, ShardedEngine, TenantHost,
};

fn fixed_graph() -> DynGraph {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let n = 80;
    let mut g = DynGraph::with_nodes(n);
    while g.num_edges() < 320 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 4,
        branching: 2,
        num_blocks: 4,
        oversample: 4,
        power_iters: 1,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::Lazy { delta: 0.4 },
        partition: PartitionStrategy::EqualWidth,
        seed: 11,
    }
}

fn subset() -> Vec<u32> {
    (0..12).collect()
}

/// The per-range engine a shard process runs — and the offline ground
/// truth we replay against (bitwise, per the engine's determinism).
fn range_host(g: &DynGraph, sub: &[u32]) -> TenantHost {
    TenantHost::from_engine(
        ShardedEngine::new(g, sub, 1, PprConfig::default(), tree_cfg()),
        0,
    )
}

/// Driver-controlled flushes only: windows are exactly what the test
/// flushes, so the offline replay sees the same window stream.
fn serve_cfg() -> ServeConfig {
    ServeConfig {
        flush_max_events: 1 << 20,
        flush_interval_ms: 60_000,
        ..Default::default()
    }
}

fn spawn_shard(g: &DynGraph, sub: &[u32], cfg: ServeConfig) -> (NetFront, String) {
    let front = NetFront::start(EmbeddingServer::start_host(range_host(g, sub), cfg));
    let addr = front.listen("127.0.0.1:0").unwrap().to_string();
    (front, addr)
}

fn direct_client(addr: &str) -> NetClient {
    NetClient::connect(TcpTransport::new(addr.to_string()), ClientConfig::default()).unwrap()
}

/// Distinct edges per window so coalescing is the identity.
fn window(k: u32) -> Vec<EdgeEvent> {
    vec![
        EdgeEvent::insert(k, 30 + k),
        EdgeEvent::insert(2 + k, 45 + k),
        EdgeEvent::insert(7 + k, 60 + k),
    ]
}

/// Compare a merged reply against per-range offline replay hosts,
/// bitwise, row by requested node.
fn assert_rows_match_offline(
    map: &ShardMap,
    nodes: &[u32],
    reply: &RowsReply,
    offline: Vec<TenantHost>,
) {
    assert_eq!(reply.rows.len(), nodes.len());
    let snaps: Vec<_> = offline
        .into_iter()
        .map(|h| {
            let f = Follower::new(h);
            let reader = f.reader(0).unwrap();
            reader.snapshot()
        })
        .collect();
    for (slot, &node) in nodes.iter().enumerate() {
        let row = reply.rows[slot].as_ref().unwrap_or_else(|| {
            panic!("node {node} missing from merged reply");
        });
        let k = (0..map.num_shards())
            .find(|&k| map.sources_of(k).contains(&node))
            .unwrap();
        let expect = snaps[k].get(node).unwrap();
        assert_eq!(
            row.as_slice(),
            expect,
            "node {node} (shard {k}) diverged from offline replay"
        );
    }
}

/// One shard advanced behind the router's back sits above the others:
/// the barrier re-probes the laggard the configured number of times,
/// then fails typed — and once the laggard catches up, the same read
/// succeeds.
#[test]
fn stale_epoch_exhausts_bounded_retries_then_fails_typed() {
    let g = fixed_graph();
    let sub = subset();
    let map = ShardMap::even_split(&sub, 2);
    let (front0, a0) = spawn_shard(&g, map.sources_of(0), serve_cfg());
    let (front1, a1) = spawn_shard(&g, map.sources_of(1), serve_cfg());

    let mut router = Router::connect(
        map.clone(),
        vec![
            ShardEndpoint::leader_only(&a0),
            ShardEndpoint::leader_only(&a1),
        ],
        RouterConfig {
            barrier_retries: 2,
            barrier_backoff_ms: 1,
            ..Default::default()
        },
    )
    .unwrap();

    // Advance shard 0 only — a write that bypassed the lockstep broadcast.
    let mut side = direct_client(&a0);
    side.submit_events(window(0)).unwrap();
    assert_eq!(side.flush().unwrap(), 1);

    match router.get_rows(&sub) {
        Err(RouterError::EpochBarrier {
            target,
            shard,
            stuck_at,
            retries,
        }) => {
            assert_eq!(target, 1);
            assert_eq!(shard, 1);
            assert_eq!(stuck_at, 0);
            assert_eq!(retries, 2);
        }
        other => panic!("expected EpochBarrier, got {other:?}"),
    }
    assert_eq!(router.stats().barrier_retries, 2);
    assert!(
        router.failed_over().is_empty(),
        "barrier must not fail over"
    );

    // Heal the laggard with the same window: both shards at epoch 1, and
    // the identical read now merges cleanly.
    let mut side1 = direct_client(&a1);
    side1.submit_events(window(0)).unwrap();
    assert_eq!(side1.flush().unwrap(), 1);
    let merged = router.get_rows(&sub).unwrap();
    assert_eq!(merged.epoch, 1);

    let mut off0 = range_host(&g, map.sources_of(0));
    let mut off1 = range_host(&g, map.sources_of(1));
    off0.apply_batch(&window(0));
    off1.apply_batch(&window(0));
    assert_rows_match_offline(&map, &sub, &merged, vec![off0, off1]);

    front0.shutdown_host();
    front1.shutdown_host();
}

/// Fabricated gathers with a row-coverage gap or overlap are rejected
/// typed — the merge never papers over missing or duplicated rows.
#[test]
fn merged_reply_with_gap_or_overlap_is_rejected() {
    let sub = subset();
    let map = ShardMap::even_split(&sub, 3);
    let nodes: Vec<u32> = vec![sub[0], sub[7], sub[11]];
    let plan = map.plan(&nodes);
    let ok = |rows: usize| RowsReply {
        epoch: 9,
        checksum_bits: 7,
        dim: 4,
        rows: vec![Some(vec![0.0; 4]); rows],
    };
    // Shard 1 drops its one requested row: a gap.
    let gap = map.merge(&plan, &[ok(1), ok(0), ok(1)]).unwrap_err();
    assert!(matches!(gap, RouterError::Merge(_)), "{gap}");
    assert!(gap.to_string().contains("gap"), "{gap}");
    // Shard 2 answers twice for one requested row: an overlap.
    let overlap = map.merge(&plan, &[ok(1), ok(1), ok(2)]).unwrap_err();
    assert!(overlap.to_string().contains("overlap"), "{overlap}");
    // And the aligned set merges.
    assert!(map.merge(&plan, &[ok(1), ok(1), ok(1)]).is_ok());
}

/// A scripted shard impostor: its first connection answers the first
/// request with garbage bytes and hangs up; later connections speak the
/// protocol properly (epoch 0, fixed rows).
fn scripted_shard(dim: usize) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    thread::Builder::new()
        .name("tsvd-test-fake-shard".into())
        .spawn(move || {
            let mut conn_no = 0u32;
            while let Ok((mut stream, _)) = listener.accept() {
                conn_no += 1;
                let corrupt = conn_no == 1;
                while let Ok(Some(frame)) = read_frame(&mut stream) {
                    if corrupt {
                        // Not a frame at all: wrong magic, then noise.
                        let _ = stream.write_all(&[0xDE; 64]);
                        break;
                    }
                    let reply = match frame.message {
                        Message::Request(Request::GetRows(nodes)) => Reply::Rows(RowsReply {
                            epoch: 0,
                            checksum_bits: 0x9999,
                            dim: dim as u32,
                            rows: nodes.iter().map(|_| Some(vec![0.5; dim])).collect(),
                        }),
                        Message::Request(Request::Ping) => Reply::Pong,
                        _ => break,
                    };
                    let mut buf = Vec::new();
                    encode_frame(
                        frame.request_id,
                        frame.tenant,
                        &Message::Reply(reply),
                        &mut buf,
                    );
                    if stream.write_all(&buf).is_err() {
                        break;
                    }
                }
                if conn_no >= 2 {
                    break;
                }
            }
        })
        .expect("spawn fake shard");
    addr
}

/// A corrupt frame from one shard fails only that request: the router
/// survives, no failover fires, and the retry round-trips through a
/// fresh connection.
#[test]
fn corrupt_frame_from_one_shard_fails_only_that_request() {
    let g = fixed_graph();
    let sub = subset();
    let map = ShardMap::even_split(&sub, 2);
    let (front0, a0) = spawn_shard(&g, map.sources_of(0), serve_cfg());
    let a1 = scripted_shard(tree_cfg().dim);

    let mut router = Router::connect(
        map.clone(),
        vec![
            ShardEndpoint::leader_only(&a0),
            ShardEndpoint::leader_only(&a1),
        ],
        RouterConfig::default(),
    )
    .unwrap();

    // First read: the impostor answers garbage → a request-level fault
    // pinned to shard 1 — not a failover, not a router crash.
    match router.get_rows(&sub) {
        Err(RouterError::Io { shard, error }) => {
            assert_eq!(shard, 1);
            assert_eq!(error.kind(), std::io::ErrorKind::InvalidData);
        }
        other => panic!("expected Io on shard 1, got {other:?}"),
    }
    assert!(router.failed_over().is_empty());
    assert_eq!(router.stats().failovers, 0);

    // Second read: the client reconnects, the impostor now behaves, and
    // the merge sees both ranges at epoch 0.
    let merged = router.get_rows(&sub).unwrap();
    assert_eq!(merged.epoch, 0);
    for (slot, &node) in sub.iter().enumerate() {
        let row = merged.rows[slot].as_ref().unwrap();
        if map.sources_of(1).contains(&node) {
            assert_eq!(
                row.as_slice(),
                &[0.5f64; 4][..],
                "impostor row for node {node}"
            );
        }
    }
    assert_eq!(router.stats().reads, 2);

    front0.shutdown_host();
}

/// Kill a leader mid-deployment: reads fail over to its journal-fed
/// follower (caught up from the *other* shard's journal — lockstep makes
/// the journals interchangeable), the merged reply stays bitwise equal to
/// the offline replay, and writes keep flowing through the survivor.
#[test]
fn dead_leader_fails_over_to_follower_and_writes_continue() {
    let g = fixed_graph();
    let sub = subset();
    let map = ShardMap::even_split(&sub, 2);
    let (front0, a0) = spawn_shard(&g, map.sources_of(0), serve_cfg());
    let (front1, a1) = spawn_shard(&g, map.sources_of(1), serve_cfg());

    // Range 0's follower replica, published over its own read-only front.
    let mut follower0 = Follower::new(range_host(&g, map.sources_of(0)));
    let front_f = NetFront::start_readers(vec![(0, follower0.reader(0).unwrap())]);
    let af = front_f.listen("127.0.0.1:0").unwrap().to_string();

    let mut router = Router::connect(
        map.clone(),
        vec![
            ShardEndpoint::with_follower(&a0, &af),
            ShardEndpoint::leader_only(&a1),
        ],
        RouterConfig {
            barrier_retries: 4,
            barrier_backoff_ms: 1,
            ..Default::default()
        },
    )
    .unwrap();

    // Two windows through the router: lockstep broadcast.
    for k in 0..2u32 {
        router.submit(window(k)).unwrap();
        assert_eq!(router.flush().unwrap(), (k + 1) as u64);
    }
    // The follower catches up from shard *1*'s journal — identical to
    // shard 0's by the lockstep invariant.
    let mut feed = direct_client(&a1);
    assert_eq!(follower0.catch_up(&mut feed, 16).unwrap(), 2);

    // Kill leader 0. Its connections die; the router's next read on that
    // range hits a dead transport.
    front0.shutdown_host();

    let merged = router.get_rows(&sub).unwrap();
    assert_eq!(merged.epoch, 2);
    assert_eq!(router.stats().failovers, 1);
    assert_eq!(router.failed_over(), vec![0]);

    let mut off0 = range_host(&g, map.sources_of(0));
    let mut off1 = range_host(&g, map.sources_of(1));
    for k in 0..2u32 {
        off0.apply_batch(&window(k));
        off1.apply_batch(&window(k));
    }
    assert_rows_match_offline(&map, &sub, &merged, vec![off0, off1]);

    // Writes continue on the survivor; the follower replays the new
    // window and the next read merges at the new epoch.
    router.submit(window(2)).unwrap();
    assert_eq!(router.flush().unwrap(), 3);
    assert_eq!(follower0.catch_up(&mut feed, 16).unwrap(), 3);
    let merged = router.get_rows(&sub).unwrap();
    assert_eq!(merged.epoch, 3);
    let mut off0 = range_host(&g, map.sources_of(0));
    let mut off1 = range_host(&g, map.sources_of(1));
    for k in 0..3u32 {
        off0.apply_batch(&window(k));
        off1.apply_batch(&window(k));
    }
    assert_rows_match_offline(&map, &sub, &merged, vec![off0, off1]);

    front1.shutdown_host();
    front_f.shutdown_readers();
}

/// A follower that outlived the leader's bounded journal re-seeds over
/// real TCP (`GetCheckpoint` → install → finish catch-up from the
/// journal tail) and lands bitwise on the offline replay.
#[test]
fn follower_reseeds_over_tcp_after_journal_compaction() {
    let g = fixed_graph();
    let sub = subset();
    let cfg = ServeConfig {
        journal_keep: 2,
        ..serve_cfg()
    };
    let (front, addr) = spawn_shard(&g, &sub, cfg);
    let mut client = direct_client(&addr);
    let mut offline = range_host(&g, &sub);
    for k in 0..5u32 {
        client.submit_events(window(k)).unwrap();
        client.flush().unwrap();
        offline.apply_batch(&window(k));
    }

    let mut follower = Follower::new(range_host(&g, &sub));
    // Plain catch-up cannot work: windows 1..=3 are compacted away.
    assert!(matches!(
        follower.catch_up(&mut client, 16),
        Err(tsvd_serve::CatchUpError::Compacted {
            oldest: 4,
            requested: 1
        })
    ));
    // The self-healing ladder re-seeds from the checkpoint, then drains
    // the journal tail.
    assert_eq!(follower.catch_up_or_reseed(&mut client, 16).unwrap(), 5);
    let reader = follower.reader(0).unwrap();
    let snap = reader.snapshot();
    assert!(snap.verify());
    let diff = snap
        .tagged()
        .left()
        .sub(offline.tagged(0).unwrap().left())
        .max_abs();
    assert_eq!(diff, 0.0, "re-seeded follower diverged from offline replay");

    front.shutdown_host();
}

/// One shard's rows read directly off the wire must equal the offline
/// replay of `windows` batches, bitwise.
fn assert_shard_matches_offline(g: &DynGraph, sub: &[u32], addr: &str, windows: u32) {
    let mut c = direct_client(addr);
    let reply = c.get_rows(sub).unwrap();
    assert_eq!(reply.epoch, windows as u64);
    let mut off = range_host(g, sub);
    for k in 0..windows {
        off.apply_batch(&window(k));
    }
    let f = Follower::new(off);
    let reader = f.reader(0).unwrap();
    let snap = reader.snapshot();
    for (slot, &node) in sub.iter().enumerate() {
        assert_eq!(
            reply.rows[slot].as_deref().unwrap(),
            snap.get(node).unwrap(),
            "node {node} diverged from offline replay"
        );
    }
}

/// A write fault on a range with *no* follower must not abort the
/// broadcast: every remaining shard still receives the batch (staying in
/// lockstep with its peers), the faulted range is permanently poisoned —
/// never written to or read from again, even though the client would
/// transparently reconnect — and the `ShardDown` surfaces only after the
/// loop completes.
#[test]
fn write_fault_without_follower_completes_broadcast_and_poisons_range() {
    let g = fixed_graph();
    let sub = subset();
    let map = ShardMap::even_split(&sub, 3);
    let (front0, a0) = spawn_shard(&g, map.sources_of(0), serve_cfg());
    let (front1, a1) = spawn_shard(&g, map.sources_of(1), serve_cfg());
    let (front2, a2) = spawn_shard(&g, map.sources_of(2), serve_cfg());

    let mut router = Router::connect(
        map.clone(),
        vec![
            ShardEndpoint::leader_only(&a0),
            ShardEndpoint::leader_only(&a1),
            ShardEndpoint::leader_only(&a2),
        ],
        RouterConfig::default(),
    )
    .unwrap();

    router.submit(window(0)).unwrap();
    assert_eq!(router.flush().unwrap(), 1);

    // Kill leader 0 — the *first* shard in broadcast order, so shards 1
    // and 2 only see the next write if the loop keeps going past the
    // fault.
    front0.shutdown_host();

    match router.submit(window(1)) {
        Err(RouterError::ShardDown { shard: 0, .. }) => {}
        other => panic!("expected ShardDown on shard 0, got {other:?}"),
    }
    assert_eq!(router.poisoned(), vec![0]);
    assert!(router.failed_over().is_empty());
    assert_eq!(router.stats().poisoned, 1);
    assert_eq!(router.stats().failovers, 0);

    // The faulting broadcast completed, and further writes keep flowing
    // without touching the poisoned range.
    assert_eq!(router.flush().unwrap(), 2);
    router.submit(window(2)).unwrap();
    assert_eq!(router.flush().unwrap(), 3);

    // Both survivors saw every window — including the one whose broadcast
    // faulted — and match the offline replay bitwise.
    assert_shard_matches_offline(&g, map.sources_of(1), &a1, 3);
    assert_shard_matches_offline(&g, map.sources_of(2), &a2, 3);

    // Reads fail typed: no replica covers the poisoned range, and the
    // router must not re-dial the diverged leader.
    match router.get_rows(&sub) {
        Err(RouterError::ShardDown { shard: 0, .. }) => {}
        other => panic!("expected ShardDown read, got {other:?}"),
    }

    front1.shutdown_host();
    front2.shutdown_host();
}

/// A uniform request-level rejection — every shard refuses the batch at
/// admission (tenant quota) and applies nothing — is backpressure, not
/// divergence: the router surfaces the typed `Io`, fails nothing over,
/// and the deployment keeps serving lockstep writes and reads once the
/// quota frees up.
#[test]
fn uniform_quota_rejection_is_not_divergence() {
    let g = fixed_graph();
    let sub = subset();
    let map = ShardMap::even_split(&sub, 2);
    let cfg = ServeConfig {
        tenant_quota: 4,
        ..serve_cfg()
    };
    let (front0, a0) = spawn_shard(&g, map.sources_of(0), cfg);
    let (front1, a1) = spawn_shard(&g, map.sources_of(1), cfg);

    let mut router = Router::connect(
        map.clone(),
        vec![
            ShardEndpoint::leader_only(&a0),
            ShardEndpoint::leader_only(&a1),
        ],
        RouterConfig::default(),
    )
    .unwrap();

    // 3 events pending on every shard (within the quota of 4)…
    router.submit(window(0)).unwrap();
    // …so the next 3-event batch overflows the quota on *every* shard:
    // rejected everywhere, applied nowhere.
    match router.submit(window(1)) {
        Err(RouterError::Io { shard: 0, error }) => {
            assert!(error.to_string().contains("quota"), "{error}");
        }
        other => panic!("expected quota Io, got {other:?}"),
    }
    assert!(router.failed_over().is_empty());
    assert!(router.poisoned().is_empty());
    assert_eq!(router.stats().failovers, 0);

    // Flushing frees the quota; the same batch then lands in lockstep…
    assert_eq!(router.flush().unwrap(), 1);
    router.submit(window(1)).unwrap();
    assert_eq!(router.flush().unwrap(), 2);

    // …and the read merges both ranges bitwise equal to the replay.
    let merged = router.get_rows(&sub).unwrap();
    assert_eq!(merged.epoch, 2);
    let mut off0 = range_host(&g, map.sources_of(0));
    let mut off1 = range_host(&g, map.sources_of(1));
    for k in 0..2u32 {
        off0.apply_batch(&window(k));
        off1.apply_batch(&window(k));
    }
    assert_rows_match_offline(&map, &sub, &merged, vec![off0, off1]);

    front0.shutdown_host();
    front1.shutdown_host();
}

/// A scripted shard whose `SubmitEvents` reply stalls until `gate`
/// flips, while `GetRows`/`TopK`/`Ping` answer immediately — one thread
/// per accepted connection, so a stalled write conn never blocks a read
/// conn. `write_seen` flips the moment the stalled write *arrives*, so
/// the test knows the router lock is held before it issues reads.
fn stalling_shard(
    dim: usize,
    sub: Vec<u32>,
    gate: Arc<AtomicBool>,
    write_seen: Arc<AtomicBool>,
) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    thread::Builder::new()
        .name("tsvd-test-stall-shard".into())
        .spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let gate = gate.clone();
                let write_seen = write_seen.clone();
                let sub = sub.clone();
                thread::spawn(move || {
                    while let Ok(Some(frame)) = read_frame(&mut stream) {
                        let reply = match frame.message {
                            Message::Request(Request::SubmitEvents(events)) => {
                                write_seen.store(true, Ordering::Release);
                                while !gate.load(Ordering::Acquire) {
                                    thread::sleep(Duration::from_millis(1));
                                }
                                Reply::SubmitAck {
                                    accepted: events.len() as u64,
                                }
                            }
                            Message::Request(Request::GetRows(nodes)) => Reply::Rows(RowsReply {
                                epoch: 0,
                                checksum_bits: 0x9999,
                                dim: dim as u32,
                                rows: nodes.iter().map(|_| Some(vec![0.5; dim])).collect(),
                            }),
                            Message::Request(Request::TopK { node, k, .. }) => {
                                Reply::TopKReply(TopKReply {
                                    epoch: 0,
                                    checksum_bits: 0x9999,
                                    found: true,
                                    neighbors: sub
                                        .iter()
                                        .filter(|&&n| n != node)
                                        .take(k as usize)
                                        .map(|&n| (n, 0.25))
                                        .collect(),
                                })
                            }
                            Message::Request(Request::Ping) => Reply::Pong,
                            _ => break,
                        };
                        let mut buf = Vec::new();
                        encode_frame(
                            frame.request_id,
                            frame.tenant,
                            &Message::Reply(reply),
                            &mut buf,
                        );
                        if stream.write_all(&buf).is_err() {
                            break;
                        }
                    }
                });
            }
        })
        .expect("spawn stalling shard");
    addr
}

/// The satellite pin for the old front bottleneck: a write stalled
/// inside the router lock must NOT serialize reads from *other*
/// connections. Conn A's `SubmitEvents` blocks server-side (holding the
/// router's write lock the whole time); conn B's `GetRows` and `TopK`
/// must complete while A is still blocked, on B's own read session.
#[test]
fn front_reads_proceed_while_a_write_holds_the_router_lock() {
    let sub = subset();
    let map = ShardMap::even_split(&sub, 1);
    let gate = Arc::new(AtomicBool::new(false));
    let write_seen = Arc::new(AtomicBool::new(false));
    let addr = stalling_shard(4, sub.clone(), gate.clone(), write_seen.clone());

    let router = Router::connect(
        map,
        vec![ShardEndpoint::leader_only(&addr)],
        RouterConfig::default(),
    )
    .unwrap();
    let front = RouterFront::start(router);
    let front_addr = front.listen("127.0.0.1:0").unwrap().to_string();

    // Conn A: a write that stalls server-side, holding the router lock.
    let a_addr = front_addr.clone();
    let writer = thread::spawn(move || {
        let mut a = NetClient::connect(TcpTransport::new(a_addr), ClientConfig::default()).unwrap();
        a.submit_events(window(0)).unwrap()
    });
    let t0 = Instant::now();
    while !write_seen.load(Ordering::Acquire) {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "write never arrived"
        );
        thread::sleep(Duration::from_millis(1));
    }

    // Conn B: reads on its own session, while the write is still stuck.
    let b_addr = front_addr.clone();
    let sub_b = sub.clone();
    let reader = thread::spawn(move || {
        let mut b = NetClient::connect(TcpTransport::new(b_addr), ClientConfig::default()).unwrap();
        let rows = b.get_rows(&sub_b).unwrap();
        let topk = b.top_k(sub_b[0], 3, Metric::Dot).unwrap().unwrap();
        (rows, topk)
    });
    let t1 = Instant::now();
    while !reader.is_finished() {
        assert!(
            t1.elapsed() < Duration::from_secs(10),
            "reads serialized behind the stalled write — the front regressed \
             to one-request-at-a-time"
        );
        thread::sleep(Duration::from_millis(1));
    }
    let (rows, topk) = reader.join().unwrap();
    assert_eq!(rows.epoch, 0);
    assert_eq!(rows.rows.len(), sub.len());
    assert_eq!(topk.len(), 3);
    assert!(
        !gate.load(Ordering::Acquire),
        "test bug: gate opened before the reads finished"
    );

    // Release the write; conn A completes normally.
    gate.store(true, Ordering::Release);
    assert_eq!(writer.join().unwrap(), window(0).len() as u64);

    let router = front.shutdown().unwrap();
    assert_eq!(router.stats().writes, 1);
    // get_rows + top_k (its internal anchor probe is part of one read).
    assert_eq!(router.stats().reads, 2);
}

/// A rejection on one shard while another shard *applied* the same batch
/// is divergence — the rejecting shard missed a write its peers took —
/// and rides the failover ladder like any write fault: with no follower,
/// the range is poisoned after the broadcast completes.
#[test]
fn divergent_quota_rejection_rides_the_failover_ladder() {
    let g = fixed_graph();
    let sub = subset();
    let map = ShardMap::even_split(&sub, 2);
    // Shard 0 unbounded, shard 1 with a quota smaller than one window:
    // the same broadcast lands on 0 and bounces off 1.
    let (front0, a0) = spawn_shard(&g, map.sources_of(0), serve_cfg());
    let cfg1 = ServeConfig {
        tenant_quota: 2,
        ..serve_cfg()
    };
    let (front1, a1) = spawn_shard(&g, map.sources_of(1), cfg1);

    let mut router = Router::connect(
        map.clone(),
        vec![
            ShardEndpoint::leader_only(&a0),
            ShardEndpoint::leader_only(&a1),
        ],
        RouterConfig::default(),
    )
    .unwrap();

    match router.submit(window(0)) {
        Err(RouterError::ShardDown { shard: 1, .. }) => {}
        other => panic!("expected ShardDown on shard 1, got {other:?}"),
    }
    assert_eq!(router.poisoned(), vec![1]);

    // Shard 0 applied the batch; the deployment keeps writing on it.
    assert_eq!(router.flush().unwrap(), 1);
    assert_shard_matches_offline(&g, map.sources_of(0), &a0, 1);

    front0.shutdown_host();
    front1.shutdown_host();
}
