//! Equivalence battery for the top-k serving tiers: every path that can
//! answer a top-k query must produce the *bitwise identical* neighbor
//! list — the tiers trade work, never answers.
//!
//! * Tier-1 blocked scan ≡ tier-2 clustered index ≡ a naive reference
//!   reimplemented here, across epochs of dirty-row churn (the cluster
//!   index is refreshed incrementally on the flush path; the reference
//!   is rebuilt from scratch each epoch).
//! * The wire path (`NetClient::top_k` → `NetFront`) ≡ the in-process
//!   snapshot call.
//! * The router's scatter-gather merge ≡ a single unsharded process,
//!   including the merged checksum chain.
//! * A follower replica serves *stale-but-consistent* top-k: its answer
//!   matches the offline replay at its own epoch, not the leader's.
//!
//! The suite runs under the ci matrix at `TSVD_THREADS ∈ {1, 4}` — the
//! deterministic total order (score descending by `total_cmp`, ties by
//! ascending row) must not depend on the thread count.

use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::net::{ClientConfig, NetClient, TcpTransport};
use tsvd_serve::{
    EmbeddingServer, EpochSnapshot, Follower, Metric, NetFront, Router, RouterConfig, RouterFront,
    ServeConfig, ShardEndpoint, ShardMap, ShardedEngine, TenantHost,
};

/// Large enough that the full subset crosses the cluster-index floor
/// (64 rows) while a 3-way shard split stays below it per range — so the
/// router test exercises mixed tiers across shards.
const SUBSET: u32 = 96;

fn fixed_graph() -> DynGraph {
    let mut rng = StdRng::seed_from_u64(0x70CC);
    let n = 160;
    let mut g = DynGraph::with_nodes(n);
    while g.num_edges() < 640 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 8,
        branching: 2,
        num_blocks: 4,
        oversample: 4,
        power_iters: 1,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::Lazy { delta: 0.4 },
        partition: PartitionStrategy::EqualWidth,
        seed: 23,
    }
}

fn subset() -> Vec<u32> {
    (0..SUBSET).collect()
}

fn range_host(g: &DynGraph, sub: &[u32]) -> TenantHost {
    TenantHost::from_engine(
        ShardedEngine::new(g, sub, 1, PprConfig::default(), tree_cfg()),
        0,
    )
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        flush_max_events: 1 << 20,
        flush_interval_ms: 60_000,
        ..Default::default()
    }
}

/// Churn windows that touch only a handful of subset nodes each — the
/// incremental index refresh must reassign exactly the dirty rows and
/// still land bitwise on the from-scratch rebuild.
fn churn(k: u32) -> Vec<EdgeEvent> {
    vec![
        EdgeEvent::insert(k % SUBSET, 100 + k),
        EdgeEvent::insert((3 * k + 1) % SUBSET, 120 + k),
        EdgeEvent::delete(k % SUBSET, 100 + k),
        EdgeEvent::insert((7 * k + 2) % SUBSET, 140 + k),
    ]
}

/// The naive reference: score every row with the same sequential dot
/// reduction, sort by the canonical total order, truncate. Rebuilt from
/// the snapshot's own rows, so any tier that diverges from it diverges
/// from the data it was serving.
fn naive_top_k(
    snap: &EpochSnapshot,
    node: u32,
    k: usize,
    metric: Metric,
) -> Option<Vec<(u32, f64)>> {
    let sub: Vec<u32> = snap.sources().to_vec();
    let q = snap.get(node)?.to_vec();
    let q_scale = match metric {
        Metric::Dot => 1.0,
        Metric::Cosine => EpochSnapshot::query_inv_norm(&q),
    };
    let mut scored: Vec<(usize, u32, f64)> = Vec::new();
    for (row, &src) in sub.iter().enumerate() {
        if src == node {
            continue;
        }
        let r = snap.get(src).unwrap();
        let dot: f64 = q.iter().zip(r).map(|(a, b)| a * b).sum();
        let score = match metric {
            Metric::Dot => dot,
            Metric::Cosine => (dot * q_scale) * EpochSnapshot::query_inv_norm(r),
        };
        scored.push((row, src, score));
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    Some(scored.into_iter().map(|(_, src, s)| (src, s)).collect())
}

fn assert_bitwise_eq(got: &[(u32, f64)], want: &[(u32, f64)], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.0, w.0, "{what}: node mismatch at rank {i}");
        assert_eq!(
            g.1.to_bits(),
            w.1.to_bits(),
            "{what}: score at rank {i} not bitwise equal ({} vs {})",
            g.1,
            w.1
        );
    }
}

/// Tier-1, tier-2, and the naive reference agree bitwise at every epoch
/// of a dirty-row churn stream, for both metrics and several k.
#[test]
fn scan_clustered_and_naive_agree_across_churn() {
    let g = fixed_graph();
    let sub = subset();
    let server = EmbeddingServer::start_host(range_host(&g, &sub), serve_cfg());
    let reader = server.reader();

    for epoch in 0..4u32 {
        if epoch > 0 {
            assert!(server.submit_batch(churn(epoch)));
            server.flush_sync();
        }
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), epoch as u64);
        assert!(
            snap.has_cluster_index(),
            "{SUBSET} rows must carry the tier-2 index"
        );
        for &node in &[0u32, 17, 95] {
            for &k in &[1usize, 5, 13, SUBSET as usize + 10] {
                for metric in [Metric::Dot, Metric::Cosine] {
                    let want = naive_top_k(&snap, node, k, metric).unwrap();
                    let scan = snap.top_k_scan(node, k, metric).unwrap();
                    assert_bitwise_eq(
                        &scan,
                        &want,
                        &format!("epoch {epoch} node {node} k {k} {metric:?}: scan vs naive"),
                    );
                    let auto = snap.top_k(node, k, metric).unwrap();
                    assert_bitwise_eq(
                        &auto,
                        &want,
                        &format!("epoch {epoch} node {node} k {k} {metric:?}: clustered vs naive"),
                    );
                }
            }
        }
        // Non-subset nodes are a clean miss, not a panic.
        assert!(snap.top_k(SUBSET + 5, 3, Metric::Dot).is_none());
    }
    server.shutdown_host();
}

/// The wire path answers bitwise what the in-process snapshot answers,
/// and misses (non-subset nodes) come back `Ok(None)`.
#[test]
fn wire_top_k_matches_in_process() {
    let g = fixed_graph();
    let sub = subset();
    let server = EmbeddingServer::start_host(range_host(&g, &sub), serve_cfg());
    let reader = server.reader();
    let front = NetFront::start(server);
    let addr = front.listen("127.0.0.1:0").unwrap().to_string();
    let mut client = NetClient::connect(TcpTransport::new(addr), ClientConfig::default()).unwrap();

    client.submit_events(churn(1)).unwrap();
    client.flush().unwrap();

    let snap = reader.snapshot();
    for metric in [Metric::Dot, Metric::Cosine] {
        let want = snap.top_k(17, 9, metric).unwrap();
        let got = client.top_k(17, 9, metric).unwrap().unwrap();
        assert_bitwise_eq(&got, &want, &format!("wire vs in-process ({metric:?})"));
    }
    assert_eq!(client.top_k(SUBSET + 5, 3, Metric::Dot).unwrap(), None);

    front.shutdown_host();
}

/// The naive *global* reference for a sharded deployment: score every
/// range's rows naively against the query row (owned by one range),
/// concatenate under global row numbering, sort by the canonical total
/// order, truncate. An independent reimplementation of what the
/// scatter-gather must compute.
fn naive_sharded_top_k(
    snaps: &[std::sync::Arc<EpochSnapshot>],
    map: &ShardMap,
    node: u32,
    k: usize,
    metric: Metric,
) -> Option<Vec<(u32, f64)>> {
    let owner = (0..map.num_shards()).find(|&s| map.sources_of(s).contains(&node))?;
    let q = snaps[owner].get(node)?.to_vec();
    let q_scale = match metric {
        Metric::Dot => 1.0,
        Metric::Cosine => EpochSnapshot::query_inv_norm(&q),
    };
    let mut scored: Vec<(usize, u32, f64)> = Vec::new();
    let mut global_row = 0usize;
    for (s, snap) in snaps.iter().enumerate() {
        for &src in map.sources_of(s) {
            let row = global_row;
            global_row += 1;
            if src == node {
                continue;
            }
            let r = snap.get(src).unwrap();
            let dot: f64 = q.iter().zip(r).map(|(a, b)| a * b).sum();
            let score = match metric {
                Metric::Dot => dot,
                Metric::Cosine => (dot * q_scale) * EpochSnapshot::query_inv_norm(r),
            };
            scored.push((row, src, score));
        }
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    Some(scored.into_iter().map(|(_, src, sc)| (src, sc)).collect())
}

/// The router's cross-shard merge is bitwise the naive global answer
/// computed over the same per-range embeddings: same neighbors, same
/// scores, same order — and its merged checksum is the same chain a
/// merged `GetRows` carries at that epoch. Served both on the router's
/// own connections and through a `RouterFront` over the wire.
#[test]
fn router_merge_is_bitwise_the_naive_global_answer() {
    let g = fixed_graph();
    let sub = subset();

    // The subset split over three shard processes, plus per-range offline
    // replicas for the reference (bitwise equal by engine determinism).
    let map = ShardMap::even_split(&sub, 3);
    let fronts: Vec<(NetFront, String)> = (0..3)
        .map(|k| {
            let front = NetFront::start(EmbeddingServer::start_host(
                range_host(&g, map.sources_of(k)),
                serve_cfg(),
            ));
            let addr = front.listen("127.0.0.1:0").unwrap().to_string();
            (front, addr)
        })
        .collect();
    let snaps: Vec<_> = (0..3)
        .map(|k| {
            Follower::new(range_host(&g, map.sources_of(k)))
                .reader(0)
                .unwrap()
                .snapshot()
        })
        .collect();
    let endpoints = fronts
        .iter()
        .map(|(_, a)| ShardEndpoint::leader_only(a))
        .collect();
    let mut router = Router::connect(map.clone(), endpoints, RouterConfig::default()).unwrap();

    for metric in [Metric::Dot, Metric::Cosine] {
        for &(node, k) in &[(0u32, 7u32), (41, 12), (95, 200)] {
            let want = naive_sharded_top_k(&snaps, &map, node, k as usize, metric).unwrap();
            let got = router.top_k(node, k, metric).unwrap();
            assert!(got.found);
            assert_bitwise_eq(
                &got.neighbors,
                &want,
                &format!("router vs naive global (node {node} k {k} {metric:?})"),
            );
            // The merged checksum chain is shared with the rows path.
            let rows = router.get_rows(&[node]).unwrap();
            assert_eq!(rows.epoch, got.epoch);
            assert_eq!(rows.checksum_bits, got.checksum_bits);
        }
    }
    // A node outside every range: found=false at the barriered epoch.
    let miss = router.top_k(SUBSET + 7, 5, Metric::Dot).unwrap();
    assert!(!miss.found && miss.neighbors.is_empty());

    // The same answers again through a RouterFront over real TCP.
    let front = RouterFront::start(router);
    let faddr = front.listen("127.0.0.1:0").unwrap().to_string();
    let mut client = NetClient::connect(TcpTransport::new(faddr), ClientConfig::default()).unwrap();
    let want = naive_sharded_top_k(&snaps, &map, 41, 12, Metric::Cosine).unwrap();
    let got = client.top_k(41, 12, Metric::Cosine).unwrap().unwrap();
    assert_bitwise_eq(&got, &want, "router front wire vs naive global");
    assert_eq!(client.top_k(SUBSET + 7, 5, Metric::Dot).unwrap(), None);
    front.shutdown();

    for (front, _) in fronts {
        front.shutdown_host();
    }
}

/// A follower replica serves *stale-but-consistent* top-k: caught up to
/// epoch 1 while the leader runs ahead to epoch 2, its answer is the
/// offline replay's answer at epoch 1 — internally consistent with the
/// rows and checksum it serves, not a torn mix of epochs.
#[test]
fn follower_serves_stale_but_consistent_top_k() {
    let g = fixed_graph();
    let sub = subset();
    let server = EmbeddingServer::start_host(range_host(&g, &sub), serve_cfg());
    let front = NetFront::start(server);
    let addr = front.listen("127.0.0.1:0").unwrap().to_string();
    let mut client = NetClient::connect(TcpTransport::new(addr), ClientConfig::default()).unwrap();

    let mut follower = Follower::new(range_host(&g, &sub));

    // Epoch 1 lands on the leader; the follower replays it.
    client.submit_events(churn(1)).unwrap();
    client.flush().unwrap();
    assert_eq!(follower.catch_up(&mut client, 16).unwrap(), 1);

    // The leader runs ahead to epoch 2; the follower stays at 1.
    client.submit_events(churn(2)).unwrap();
    client.flush().unwrap();

    let freader = follower.reader(0).unwrap();
    let ffront = NetFront::start_readers(vec![(0, freader)]);
    let faddr = ffront.listen("127.0.0.1:0").unwrap().to_string();
    let mut fclient =
        NetClient::connect(TcpTransport::new(faddr), ClientConfig::default()).unwrap();

    // Offline replay of exactly epoch 1 — the follower's truth.
    let mut off = range_host(&g, &sub);
    off.apply_batch(&churn(1));
    let off_snap = Follower::new(off).reader(0).unwrap().snapshot();

    let want = off_snap.top_k(17, 9, Metric::Dot).unwrap();
    let got = fclient.top_k(17, 9, Metric::Dot).unwrap().unwrap();
    assert_bitwise_eq(&got, &want, "follower stale top-k vs epoch-1 replay");

    // And the leader has moved on — its answer reflects epoch 2.
    let leader_rows = client.get_rows(&[17]).unwrap();
    assert_eq!(leader_rows.epoch, 2);

    ffront.shutdown_readers();
    front.shutdown_host();
}
