//! Hand-rolled (loom-free, hermetic) interleaving stress tests pinning the
//! memory-ordering contracts of the serving layer's cross-thread state:
//!
//! * `ServeStats` counters: `submitted ≥ applied + coalesced`,
//!   `batches_flushed ≥ epoch`, and `flush_ms_max ≥ flush_ms_last` must
//!   hold for *every* concurrent observer, not just quiescent ones. The
//!   pre-audit orderings (count-after-send in `submit_batch`,
//!   publish-before-count and last-before-max in the flush path) violate
//!   all three under exactly the interleavings these tests hammer.
//! * `EpochCell`: the lock-free `epoch()` probe must never run ahead of
//!   the snapshot a subsequent `load()` returns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tsvd_core::{Embedding, TreeSvdConfig};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_linalg::DenseMatrix;
use tsvd_ppr::PprConfig;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::{EmbeddingServer, EpochCell, EpochSnapshot, ServeConfig, ShardedEngine};

fn tiny_engine(num_shards: usize) -> ShardedEngine {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 40usize;
    let mut g = DynGraph::with_nodes(n);
    while g.num_edges() < 120 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    let sources: Vec<u32> = (0..6).collect();
    let cfg = TreeSvdConfig {
        dim: 4,
        num_blocks: 2,
        ..Default::default()
    };
    ShardedEngine::new(&g, &sources, num_shards, PprConfig::default(), cfg)
}

/// Readers sample `stats()` as fast as they can while submitters and the
/// flush path race; every sample must satisfy the counter invariants.
#[test]
fn stats_invariants_hold_under_concurrent_submit_and_flush() {
    let server = Arc::new(EmbeddingServer::start(
        tiny_engine(2),
        ServeConfig {
            flush_max_events: 1_000_000, // flushes only via flush_sync
            flush_interval_ms: 60_000,
            ..Default::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let samplers: Vec<_> = (0..3)
        .map(|_| {
            let server = server.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut samples = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let s = server.stats();
                    assert!(
                        s.events_submitted >= s.events_applied + s.events_coalesced,
                        "submitted {} < applied {} + coalesced {}",
                        s.events_submitted,
                        s.events_applied,
                        s.events_coalesced
                    );
                    assert_eq!(
                        s.events_pending,
                        s.events_submitted - s.events_applied - s.events_coalesced,
                        "pending arithmetic saturated: counters were inconsistent"
                    );
                    assert!(
                        s.batches_flushed >= s.epoch,
                        "served epoch {} published before its flush was counted ({})",
                        s.epoch,
                        s.batches_flushed
                    );
                    assert!(
                        s.flush_ms_max >= s.flush_ms_last,
                        "flush max {} below last {}",
                        s.flush_ms_max,
                        s.flush_ms_last
                    );
                    samples += 1;
                }
                samples
            })
        })
        .collect();

    let submitter = {
        let server = server.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(77);
            // Bounded + yielding: the point is overlap with flushes, not
            // volume — an unthrottled loop would swamp the reactor mailbox.
            for _ in 0..2_000 {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let u = rng.gen_range(0..40) as u32;
                let v = rng.gen_range(0..40) as u32;
                if u != v {
                    server.submit(EdgeEvent::insert(u, v));
                }
                std::thread::yield_now();
            }
        })
    };

    for _ in 0..30 {
        server.submit_batch(vec![EdgeEvent::insert(1, 2), EdgeEvent::delete(1, 2)]);
        server.flush_sync();
    }
    stop.store(true, Ordering::Release);
    submitter.join().unwrap();
    let total: u64 = samplers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "samplers never ran");

    let server = Arc::into_inner(server).expect("all clones joined");
    server.shutdown();
}

fn synthetic_snapshot(epoch: u64) -> EpochSnapshot {
    let rows = 4usize;
    let dim = 3usize;
    // Contents vary with the epoch so cross-epoch mixes cannot verify.
    let data: Vec<f64> = (0..rows * dim)
        .map(|i| (epoch as f64 + 1.0) * (i as f64 - 2.5))
        .collect();
    let emb = Embedding {
        u: DenseMatrix::from_vec(rows, dim, data),
        sigma: vec![1.0; dim],
        dim,
    };
    let sources = Arc::new(vec![1u32, 2, 3, 4]);
    let index: Arc<HashMap<u32, usize>> =
        Arc::new(sources.iter().enumerate().map(|(i, &v)| (v, i)).collect());
    EpochSnapshot::new(emb.tagged(epoch), sources, index, epoch, Default::default())
}

/// The `epoch()` fast probe must never report an epoch newer than what a
/// subsequent `load()` returns: probe-then-load is how `wait_for_epoch`
/// (and the network front's staleness guard) observes progress.
#[test]
fn epoch_probe_never_runs_ahead_of_load() {
    let cell = Arc::new(EpochCell::new(synthetic_snapshot(0)));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cell = cell.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let probed = cell.epoch();
                    let snap = cell.load();
                    assert!(
                        snap.epoch() >= probed,
                        "probe saw epoch {probed} but load returned {}",
                        snap.epoch()
                    );
                    assert!(snap.verify(), "torn snapshot at epoch {}", snap.epoch());
                }
            })
        })
        .collect();

    for epoch in 1..=2_000u64 {
        cell.store(synthetic_snapshot(epoch));
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(cell.epoch(), 2_000);
}

/// Deterministic pin of the submit-side ordering: the submitted counter is
/// visible no later than `submit_batch` returns, even though the reactor
/// may already have applied the batch.
#[test]
fn submit_counts_are_visible_on_return() {
    let server = EmbeddingServer::start(
        tiny_engine(1),
        ServeConfig {
            flush_max_events: 1, // apply immediately: maximal overlap
            flush_interval_ms: 60_000,
            ..Default::default()
        },
    );
    for i in 0..20u64 {
        assert!(server.submit(EdgeEvent::insert(10, 11 + (i % 5) as u32)));
        let s = server.stats();
        assert!(
            s.events_submitted > i,
            "submit_batch returned before counting (saw {} after {} submits)",
            s.events_submitted,
            i + 1
        );
        assert!(s.events_submitted >= s.events_applied + s.events_coalesced);
    }
    server.shutdown();
}
