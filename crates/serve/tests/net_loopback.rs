//! Loopback-transport equivalence: the wire path (client → frame codec →
//! pipes → frontend → dispatcher → server) must return replies **bitwise
//! identical** to in-process reads of the same server — at any shard
//! count. This extends the repo's equivalence chain
//! (pipeline == engine == server) across the network boundary.

use std::io::Write;

use tsvd_core::TreeSvdConfig;
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::net::wire::{self, Message, Reply, Request};
use tsvd_serve::net::Transport;
use tsvd_serve::{ClientConfig, EmbeddingServer, NetClient, NetFront, ServeConfig, ShardedEngine};

fn base_graph() -> DynGraph {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 80usize;
    let mut g = DynGraph::with_nodes(n);
    while g.num_edges() < 400 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn engine(g: &DynGraph, num_shards: usize) -> ShardedEngine {
    let sources: Vec<u32> = (0..12).collect();
    let cfg = TreeSvdConfig {
        dim: 8,
        num_blocks: 3,
        ..Default::default()
    };
    ShardedEngine::new(g, &sources, num_shards, PprConfig::default(), cfg)
}

/// Manual-flush config: windows are exactly the submitted chunks, so runs
/// are comparable across shard counts.
fn manual_flush(num_shards: usize) -> ServeConfig {
    ServeConfig {
        num_shards,
        flush_max_events: 1_000_000,
        flush_interval_ms: 60_000,
        coalesce: true,
        ..Default::default()
    }
}

/// Deterministic event chunks touching both present and absent edges.
fn event_chunks() -> Vec<Vec<EdgeEvent>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..4)
        .map(|_| {
            (0..30)
                .map(|_| {
                    let u = rng.gen_range(0..80) as u32;
                    let v = rng.gen_range(0..80) as u32;
                    if rng.gen_range(0..4) == 0 {
                        EdgeEvent::delete(u, v)
                    } else {
                        EdgeEvent::insert(u, v)
                    }
                })
                .filter(|e| e.u != e.v)
                .collect()
        })
        .collect()
}

#[test]
fn loopback_replies_bitwise_equal_in_process_at_any_shard_count() {
    let g = base_graph();
    let chunks = event_chunks();
    let probe: Vec<u32> = vec![0, 5, 11, 70, 200]; // mixes subset, non-subset, out-of-range
    let mut final_bits: Vec<Vec<u64>> = Vec::new();

    for num_shards in [1usize, 3] {
        let server = EmbeddingServer::start(engine(&g, num_shards), manual_flush(num_shards));
        let in_process = server.reader();
        let front = NetFront::start(server);
        let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();

        for (i, chunk) in chunks.iter().enumerate() {
            let accepted = client.submit_events(chunk.clone()).unwrap();
            assert_eq!(accepted, chunk.len() as u64);
            let epoch = client.flush().unwrap();
            assert_eq!(epoch, i as u64 + 1);

            // The wire reply and the in-process snapshot must agree bitwise.
            let snap = in_process.snapshot();
            let rows = client.get_rows(&probe).unwrap();
            assert_eq!(rows.epoch, snap.epoch());
            assert_eq!(rows.checksum_bits, snap.checksum().to_bits());
            assert_eq!(rows.dim as usize, snap.dim());
            for (&node, got) in probe.iter().zip(&rows.rows) {
                match (snap.get(node), got) {
                    (None, None) => {}
                    (Some(want), Some(got)) => {
                        assert_eq!(want.len(), got.len());
                        for (a, b) in want.iter().zip(got) {
                            assert_eq!(a.to_bits(), b.to_bits(), "row bits differ over the wire");
                        }
                    }
                    (want, got) => panic!("presence mismatch for node {node}: {want:?} vs {got:?}"),
                }
            }

            let emb = client.get_embedding().unwrap();
            assert!(emb.verify_checksum(), "end-to-end checksum failed");
            assert_eq!(emb.sources, snap.sources());
            for (r, &src) in snap.sources().iter().enumerate() {
                let want = snap.get(src).unwrap();
                for (a, b) in want.iter().zip(emb.row(r)) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "embedding bits differ over the wire"
                    );
                }
            }

            let stats = client.stats().unwrap();
            assert_eq!(stats.tenant.epoch, snap.epoch());
            assert_eq!(stats.tenant.num_shards, num_shards.min(12));
            assert_eq!(stats.host.tenants, 1);
            assert_eq!(stats.host.epoch, snap.epoch());
        }

        let emb = client.get_embedding().unwrap();
        final_bits.push(emb.data.iter().map(|v| v.to_bits()).collect());
        drop(client);
        front.shutdown();
    }

    // Sharding must stay invisible over the wire too.
    assert_eq!(
        final_bits[0], final_bits[1],
        "final embedding differs between shard counts over the wire"
    );
}

#[test]
fn pipelined_requests_execute_in_order_with_one_round_trip_per_batch() {
    let g = base_graph();
    let server = EmbeddingServer::start(engine(&g, 2), manual_flush(2));
    let front = NetFront::start(server);
    let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();

    let events = vec![EdgeEvent::insert(0, 50), EdgeEvent::insert(1, 51)];
    let replies = client
        .pipeline(&[
            Request::Ping,
            Request::SubmitEvents(events.clone()),
            Request::Flush,
            Request::GetRows(vec![0, 1]),
            Request::GetStats,
        ])
        .unwrap();
    assert_eq!(replies.len(), 5);
    assert!(matches!(replies[0], Reply::Pong));
    assert!(matches!(replies[1], Reply::SubmitAck { accepted: 2 }));
    let Reply::FlushAck { epoch } = replies[2] else {
        panic!("expected FlushAck, got {:?}", replies[2]);
    };
    assert_eq!(
        epoch, 1,
        "flush must observe the pipelined submit before it"
    );
    let Reply::Rows(rows) = &replies[3] else {
        panic!("expected Rows, got {:?}", replies[3]);
    };
    assert_eq!(
        rows.epoch, 1,
        "read after pipelined flush sees the new epoch"
    );
    let Reply::Stats(stats) = &replies[4] else {
        panic!("expected Stats, got {:?}", replies[4]);
    };
    assert_eq!(stats.tenant.events_submitted, 2);
    assert_eq!(stats.tenant.epoch, 1);

    drop(client);
    front.shutdown();
}

#[test]
fn client_reconnects_and_retries_idempotent_calls() {
    let g = base_graph();
    let server = EmbeddingServer::start(engine(&g, 1), manual_flush(1));
    let front = NetFront::start(server);
    let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();

    client.ping().unwrap();
    assert_eq!(client.reconnects(), 0);
    client.disconnect();
    client.ping().unwrap(); // transparently reopens
    assert_eq!(client.reconnects(), 1);

    // Epoch guard state survives the reconnect.
    client
        .submit_events(vec![EdgeEvent::insert(2, 60)])
        .unwrap();
    client.flush().unwrap();
    assert_eq!(client.last_epoch(), 1);
    client.disconnect();
    let rows = client.get_rows(&[2]).unwrap();
    assert_eq!(rows.epoch, 1);
    assert_eq!(client.reconnects(), 2);

    drop(client);
    front.shutdown();
}

#[test]
fn corrupt_frame_draws_connection_error_then_close() {
    let g = base_graph();
    let server = EmbeddingServer::start(engine(&g, 1), manual_flush(1));
    let front = NetFront::start(server);

    // Talk raw bytes through the transport, bypassing the client.
    let lb = front.loopback();
    let mut duplex = lb.open().unwrap();
    let mut buf = Vec::new();
    wire::encode_frame(9, 0, &Message::Request(Request::Ping), &mut buf);
    buf[20] ^= 0x40; // corrupt the checksum field
    duplex.writer.write_all(&buf).unwrap();
    duplex.writer.flush().unwrap();

    let frame = wire::read_frame(&mut duplex.reader).unwrap().unwrap();
    assert_eq!(frame.request_id, 0, "connection-level error uses id 0");
    assert!(
        matches!(frame.message, Message::Reply(Reply::Error(_))),
        "expected an error reply, got {:?}",
        frame.message
    );
    // After reporting, the server closes: clean EOF.
    assert!(wire::read_frame(&mut duplex.reader).unwrap().is_none());

    // The front is still healthy for well-behaved clients.
    let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();
    client.ping().unwrap();
    drop(client);
    drop(duplex);
    front.shutdown();
}

#[test]
fn old_version_frame_draws_connection_error_then_close() {
    let g = base_graph();
    let server = EmbeddingServer::start(engine(&g, 1), manual_flush(1));
    let front = NetFront::start(server);

    // A well-formed v2 frame downgraded to v1: the version check fires
    // before the checksum, so negotiation fails closed at the first frame.
    let lb = front.loopback();
    let mut duplex = lb.open().unwrap();
    let mut buf = Vec::new();
    wire::encode_frame(9, 0, &Message::Request(Request::Ping), &mut buf);
    buf[2] = 1; // stamp the previous wire version
    duplex.writer.write_all(&buf).unwrap();
    duplex.writer.flush().unwrap();

    let frame = wire::read_frame(&mut duplex.reader).unwrap().unwrap();
    assert_eq!(frame.request_id, 0, "connection-level error uses id 0");
    assert_eq!(frame.tenant, 0, "connection-level error is tenant-less");
    assert!(
        matches!(frame.message, Message::Reply(Reply::Error(_))),
        "expected an error reply, got {:?}",
        frame.message
    );
    assert!(wire::read_frame(&mut duplex.reader).unwrap().is_none());

    // The front is still healthy for current-version clients.
    let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();
    client.ping().unwrap();
    drop(client);
    drop(duplex);
    front.shutdown();
}

#[test]
fn shutdown_request_flushes_and_stops_the_front() {
    let g = base_graph();
    let server = EmbeddingServer::start(engine(&g, 2), manual_flush(2));
    let front = NetFront::start(server);
    let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();

    client
        .submit_events(vec![EdgeEvent::insert(3, 70), EdgeEvent::insert(4, 71)])
        .unwrap();
    client.shutdown_server().unwrap();
    assert!(front.wait_stopped(std::time::Duration::from_secs(10)));

    // New connections are refused once stopped.
    assert!(NetClient::connect(front.loopback(), ClientConfig::default()).is_err());

    drop(client);
    let engine = front.shutdown();
    assert_eq!(
        engine.epoch(),
        1,
        "shutdown must flush pending events first"
    );
    assert_eq!(engine.events_applied(), 2);
}
