//! Property tests for the wire codec (`rt::check`):
//!
//! 1. encode→decode is the identity for every message type over
//!    randomized payloads;
//! 2. every single-byte corruption of a valid frame is rejected —
//!    the checksum covers the header tail + payload and the magic check
//!    covers the rest, so no flip can slip through;
//! 3. truncation at any boundary is rejected;
//! 4. arbitrary fuzz bytes fed straight into the decoder never panic and
//!    never provoke an allocation larger than the input could justify
//!    (counts are validated against the remaining payload first).

use tsvd_core::PipelineTimings;
use tsvd_graph::EdgeEvent;
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::{ensure, ensure_eq};
use tsvd_serve::net::wire::{
    decode_frame, encode_frame, fnv1a64, CheckpointReply, EmbeddingReply, Message, Reply, Request,
    RowsReply, TopKReply, WindowsReply, WireError, FNV_OFFSET, HEADER_LEN, MAX_PAYLOAD, MAX_TOP_K,
};
use tsvd_serve::{HostStats, Metric, ServeStats, StatsReply};

fn gen_events(g: &mut Gen, max: usize) -> Vec<EdgeEvent> {
    let n = g.usize_in(0..max);
    (0..n)
        .map(|_| {
            let u = g.u32_in(0..10_000);
            let v = g.u32_in(0..10_000);
            if g.bool() {
                EdgeEvent::insert(u, v)
            } else {
                EdgeEvent::delete(u, v)
            }
        })
        .collect()
}

fn gen_row(g: &mut Gen, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| g.f64_in(-1e6..1e6)).collect()
}

fn gen_top_k(g: &mut Gen) -> Request {
    Request::TopK {
        node: g.u32_in(0..10_000),
        k: g.u32_in(0..MAX_TOP_K + 1),
        metric: if g.bool() {
            Metric::Dot
        } else {
            Metric::Cosine
        },
        query: if g.bool() {
            let dim = g.usize_in(0..9);
            Some(gen_row(g, dim))
        } else {
            None
        },
    }
}

fn gen_top_k_reply(g: &mut Gen) -> TopKReply {
    let n = g.usize_in(0..16);
    TopKReply {
        epoch: g.u64_in(0..1_000_000),
        checksum_bits: g.u64_in(0..u64::MAX),
        found: g.bool(),
        neighbors: (0..n)
            .map(|_| (g.u32_in(0..10_000), g.f64_in(-1e6..1e6)))
            .collect(),
    }
}

/// A randomized message of any type (finite floats: the identity check
/// uses `PartialEq`; NaN bit preservation is pinned by a codec unit test).
fn gen_message(g: &mut Gen) -> Message {
    match g.usize_in(0..22) {
        0 => Message::Request(Request::Ping),
        1 => Message::Request(Request::SubmitEvents(gen_events(g, 40))),
        2 => Message::Request(Request::Flush),
        3 => {
            let n = g.usize_in(0..40);
            Message::Request(Request::GetRows(
                (0..n).map(|_| g.u32_in(0..10_000)).collect(),
            ))
        }
        4 => Message::Request(Request::GetEmbedding),
        5 => Message::Request(Request::GetStats),
        6 => Message::Request(Request::Shutdown),
        7 => Message::Reply(Reply::Pong),
        8 => Message::Reply(Reply::SubmitAck {
            accepted: g.u64_in(0..u64::MAX),
        }),
        9 => Message::Reply(Reply::FlushAck {
            epoch: g.u64_in(0..u64::MAX),
        }),
        10 => {
            let dim = g.usize_in(1..9);
            let n = g.usize_in(0..12);
            let rows = (0..n)
                .map(|_| {
                    if g.prob(0.3) {
                        None
                    } else {
                        Some(gen_row(g, dim))
                    }
                })
                .collect();
            Message::Reply(Reply::Rows(RowsReply {
                epoch: g.u64_in(0..1_000_000),
                checksum_bits: g.u64_in(0..u64::MAX),
                dim: dim as u32,
                rows,
            }))
        }
        11 => {
            let dim = g.usize_in(1..9);
            let n = g.usize_in(0..12);
            let data: Vec<f64> = (0..n * dim).map(|_| g.f64_in(-1e6..1e6)).collect();
            Message::Reply(Reply::Embedding(EmbeddingReply {
                epoch: g.u64_in(0..1_000_000),
                checksum_bits: g.u64_in(0..u64::MAX),
                dim: dim as u32,
                sources: (0..n as u32).collect(),
                data,
            }))
        }
        12 => Message::Reply(Reply::Stats(Box::new(StatsReply {
            tenant: ServeStats {
                tenant: g.u32_in(0..64),
                epoch: g.u64_in(0..1_000_000),
                num_shards: g.usize_in(1..16),
                events_submitted: g.u64_in(0..1_000_000),
                events_applied: g.u64_in(0..1_000_000),
                events_coalesced: g.u64_in(0..1_000_000),
                events_pending: g.u64_in(0..1_000_000),
                batches_flushed: g.u64_in(0..1_000_000),
                flush_ms_last: g.f64_in(0.0..1e4),
                flush_ms_mean: g.f64_in(0.0..1e4),
                flush_ms_max: g.f64_in(0.0..1e4),
                pipeline_depth: g.usize_in(0..2),
                windows_inflight: g.u64_in(0..2),
                stage_ms_last: g.f64_in(0.0..1e4),
                commit_ms_last: g.f64_in(0.0..1e4),
                overlapped_secs: g.f64_in(0.0..1e3),
                svd_update: g.u32_in(0..2) == 1,
                blocks_patched: g.u64_in(0..1_000_000),
                blocks_incremental: g.u64_in(0..1_000_000),
                blocks_refactored: g.u64_in(0..1_000_000),
                timings: PipelineTimings {
                    ppr_secs: g.f64_in(0.0..1e3),
                    rows_secs: g.f64_in(0.0..1e3),
                    svd_secs: g.f64_in(0.0..1e3),
                    updates: g.usize_in(0..1_000),
                },
            },
            host: HostStats {
                tenants: g.usize_in(1..8),
                batches_recorded: g.u64_in(0..1_000_000),
                epoch: g.u64_in(0..1_000_000),
                events_submitted: g.u64_in(0..1_000_000),
                events_applied: g.u64_in(0..1_000_000),
                events_coalesced: g.u64_in(0..1_000_000),
                events_pending: g.u64_in(0..1_000_000),
            },
        }))),
        13 => Message::Reply(Reply::ShutdownAck),
        14 => Message::Request(gen_top_k(g)),
        15 => Message::Request(Request::GetWindows {
            after_epoch: g.u64_in(0..u64::MAX),
            max: g.u32_in(0..u32::MAX),
        }),
        16 => {
            let n = g.usize_in(0..6);
            let windows = (0..n).map(|_| gen_events(g, 20)).collect();
            Message::Reply(Reply::Windows(WindowsReply {
                latest: g.u64_in(0..1_000_000),
                first_epoch: g.u64_in(0..1_000_000),
                windows,
            }))
        }
        17 => Message::Request(Request::GetCheckpoint),
        18 => {
            // Checkpoint bodies are host JSON in production, but the codec
            // promises byte transparency for any UTF-8 — fuzz it as such.
            let n = g.usize_in(0..200);
            let host: String = (0..n)
                .map(|_| char::from_u32(g.u32_in(32..0x2500)).unwrap_or('?'))
                .collect();
            Message::Reply(Reply::Checkpoint(Box::new(CheckpointReply {
                epoch: g.u64_in(0..u64::MAX),
                host,
            })))
        }
        19 => Message::Reply(Reply::JournalGap {
            oldest: g.u64_in(0..u64::MAX),
            requested: g.u64_in(0..u64::MAX),
        }),
        20 => Message::Reply(Reply::TopKReply(gen_top_k_reply(g))),
        _ => {
            let n = g.usize_in(0..120);
            let msg: String = (0..n)
                .map(|_| char::from_u32(g.u32_in(32..0x2500)).unwrap_or('?'))
                .collect();
            Message::Reply(Reply::Error(msg))
        }
    }
}

#[test]
fn prop_encode_decode_round_trip_identity() {
    Checker::new(400).run("wire_round_trip", |g| {
        let id = g.u64_in(0..u64::MAX);
        let tenant = g.u32_in(0..u32::MAX);
        let msg = gen_message(g);
        let mut buf = Vec::new();
        encode_frame(id, tenant, &msg, &mut buf);
        let (frame, used) = decode_frame(&buf).map_err(|e| format!("rejected own frame: {e}"))?;
        ensure_eq!(used, buf.len());
        ensure_eq!(frame.request_id, id);
        ensure_eq!(frame.tenant, tenant);
        ensure!(frame.message == msg, "decoded message differs");
        Ok(())
    });
}

#[test]
fn prop_any_single_byte_corruption_is_rejected() {
    Checker::new(300).run("wire_byte_flip", |g| {
        let msg = gen_message(g);
        let mut buf = Vec::new();
        encode_frame(g.u64_in(0..u64::MAX), g.u32_in(0..u32::MAX), &msg, &mut buf);
        let pos = g.usize_in(0..buf.len());
        let flip = 1u8 << g.usize_in(0..8);
        buf[pos] ^= flip;
        match decode_frame(&buf) {
            Err(_) => Ok(()),
            // A flipped length byte can make the frame *longer* than the
            // buffer only if it grows the length — shrinking it still fails
            // the checksum. Either way Ok(..) must be impossible.
            Ok(_) => Err(format!("flip of bit {flip:#x} at byte {pos} accepted")),
        }
    });
}

#[test]
fn prop_top_k_frames_round_trip_and_reject_every_flip() {
    // The serving-path messages specifically: identity on the nose, the
    // tenant echoed exactly, and *every* single-byte corruption — header,
    // discriminant bytes (metric, presence tag, found), k field, floats —
    // rejected. Complements the targeted offset tests in the codec.
    Checker::new(400).run("wire_top_k", |g| {
        let id = g.u64_in(0..u64::MAX);
        let tenant = g.u32_in(0..u32::MAX);
        let msg = if g.bool() {
            Message::Request(gen_top_k(g))
        } else {
            Message::Reply(Reply::TopKReply(gen_top_k_reply(g)))
        };
        let mut buf = Vec::new();
        encode_frame(id, tenant, &msg, &mut buf);
        let (frame, used) = decode_frame(&buf).map_err(|e| format!("rejected own frame: {e}"))?;
        ensure_eq!(used, buf.len());
        ensure_eq!(frame.tenant, tenant);
        ensure!(frame.message == msg, "decoded top-k message differs");
        let pos = g.usize_in(0..buf.len());
        let flip = 1u8 << g.usize_in(0..8);
        buf[pos] ^= flip;
        match decode_frame(&buf) {
            Err(_) => Ok(()),
            Ok(_) => Err(format!("flip of bit {flip:#x} at byte {pos} accepted")),
        }
    });
}

#[test]
fn prop_tenant_id_byte_flips_are_rejected() {
    // The tenant id sits at header bytes [12..16), inside the checksummed
    // range — a flipped tenant must never decode as a different tenant's
    // valid frame (that would cross-deliver replies between clients).
    Checker::new(300).run("wire_tenant_flip", |g| {
        let tenant = g.u32_in(0..u32::MAX);
        let msg = gen_message(g);
        let mut buf = Vec::new();
        encode_frame(g.u64_in(0..u64::MAX), tenant, &msg, &mut buf);
        let pos = 12 + g.usize_in(0..4);
        let flip = 1u8 << g.usize_in(0..8);
        buf[pos] ^= flip;
        match decode_frame(&buf) {
            Err(WireError::Checksum) => Ok(()),
            Err(e) => Err(format!(
                "tenant flip at byte {pos}: expected Checksum, got {e}"
            )),
            Ok(_) => Err(format!("tenant flip at byte {pos} accepted")),
        }
    });
}

#[test]
fn prop_old_version_frames_are_rejected_from_header_alone() {
    // Version negotiation fails closed: a v1 (or any non-current) version
    // byte is rejected as BadVersion before the payload is even looked at.
    Checker::new(200).run("wire_bad_version", |g| {
        let msg = gen_message(g);
        let mut buf = Vec::new();
        encode_frame(g.u64_in(0..u64::MAX), g.u32_in(0..64), &msg, &mut buf);
        let bad = loop {
            let v = g.u32_in(0..256) as u8;
            if v != buf[2] {
                break v;
            }
        };
        buf[2] = bad;
        match decode_frame(&buf) {
            Err(WireError::BadVersion(v)) => {
                ensure_eq!(v, bad);
                Ok(())
            }
            Err(e) => Err(format!("version {bad}: expected BadVersion, got {e}")),
            Ok(_) => Err(format!("version {bad} accepted")),
        }
    });
}

#[test]
fn prop_truncation_at_any_point_is_rejected() {
    Checker::new(200).run("wire_truncation", |g| {
        let msg = gen_message(g);
        let mut buf = Vec::new();
        encode_frame(1, g.u32_in(0..u32::MAX), &msg, &mut buf);
        let cut = g.usize_in(0..buf.len());
        match decode_frame(&buf[..cut]) {
            Err(WireError::Truncated) => Ok(()),
            Err(e) => Err(format!("cut at {cut}: expected Truncated, got {e}")),
            Ok(_) => Err(format!("cut at {cut} accepted")),
        }
    });
}

#[test]
fn prop_fuzz_bytes_never_panic_decoder() {
    Checker::new(600).run("wire_fuzz", |g| {
        let n = g.usize_in(0..200);
        let mut bytes: Vec<u8> = (0..n).map(|_| g.u32_in(0..256) as u8).collect();
        // Half the time, plant a plausible header so deeper decode paths
        // (version/msg-id/length/checksum/payload walks) get fuzzed too.
        if g.bool() && bytes.len() >= HEADER_LEN {
            bytes[0..2].copy_from_slice(&0x5654u16.to_le_bytes());
            if g.bool() {
                bytes[2] = 2; // valid version
            }
            if g.bool() {
                // In-range announced length; checksum still random.
                let len = g.u32_in(0..(bytes.len() as u32 + 8));
                bytes[16..20].copy_from_slice(&len.to_le_bytes());
            }
        }
        // Must not panic; Ok is astronomically unlikely but legal (a
        // planted header with a colliding checksum would be a miracle).
        let _ = decode_frame(&bytes);
        Ok(())
    });
}

#[test]
fn oversized_announcement_is_rejected_without_allocation() {
    // Frame claiming a 4 GiB payload: decode must fail fast from the
    // header. (If it tried to allocate, this test would OOM, not fail.)
    let mut buf = vec![0u8; HEADER_LEN];
    buf[0..2].copy_from_slice(&0x5654u16.to_le_bytes());
    buf[2] = 2;
    buf[3] = 0x01;
    buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_frame(&buf),
        Err(WireError::Oversized(n)) if n > MAX_PAYLOAD
    ));
}

#[test]
fn checkpoint_body_length_beyond_payload_rejected_before_allocation() {
    // The checkpoint-specific oversize path: a *genuine* Checkpoint frame
    // (valid header, recomputed frame checksum) whose inner body-length
    // field announces more bytes than the payload holds. The 0x89 decoder
    // must reject it from the count check before sizing any allocation
    // from the field — a header-level `payload_len` above MAX_PAYLOAD
    // never reaches the message decoder at all, so only this construction
    // exercises the checkpoint decoder. (The checkpoint reply is the
    // largest message in practice: it carries a full host serialisation.)
    let mut buf = Vec::new();
    encode_frame(
        7,
        0,
        &Message::Reply(Reply::Checkpoint(Box::new(CheckpointReply {
            epoch: 5,
            host: "{}".into(),
        }))),
        &mut buf,
    );
    // The length field sits right after the u64 epoch in the payload.
    buf[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    let crc = fnv1a64(fnv1a64(FNV_OFFSET, &buf[2..20]), &buf[HEADER_LEN..]);
    buf[20..28].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(
        decode_frame(&buf),
        Err(WireError::Malformed("count exceeds payload"))
    );
}
