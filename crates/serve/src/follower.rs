//! Journal-fed follower replicas: read scale-out for free.
//!
//! A [`Follower`] wraps its own [`TenantHost`] — typically seeded from a
//! checkpoint of the leader (`tsvd-store` recovery) or built from the same
//! initial graph — and replays the leader's flush windows into it, in
//! order, publishing each resulting epoch through the same
//! [`EpochCell`]/[`EpochSnapshot`] machinery the leader's server uses. Its
//! readers are therefore wait-free and whole-epoch consistent, just
//! possibly *stale*: the follower serves epoch `k` while the leader is at
//! `k + lag`.
//!
//! Windows arrive over the existing `serve::net` protocol: the follower
//! polls `GetWindows{after_epoch, max}` ([`NetClient::get_windows`]),
//! which streams the leader's bounded in-memory journal tail. Because
//! those windows are exactly the post-coalesce windows the leader applied
//! — and every layer below is bitwise deterministic — the follower's
//! published embedding at epoch `k` equals the leader's at epoch `k` bit
//! for bit, per tenant.
//!
//! A follower that disconnects simply resumes polling from its own epoch;
//! if it fell further behind than the leader's journal retains, the pull
//! fails (the leader answers with a compaction error) and the follower
//! must re-seed from a newer checkpoint.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;

use tsvd_graph::EdgeEvent;
use tsvd_rt::json::{FromJson, Json};

use tsvd_core::TaggedEmbedding;

use crate::net::{NetClient, WindowsPull};
use crate::query::{BufPool, QueryState};
use crate::server::EmbeddingReader;
use crate::snapshot::{EpochCell, EpochSnapshot};
use crate::tenant::{TenantHost, TenantId};

/// Why a follower could not catch up to the leader.
#[derive(Debug)]
pub enum CatchUpError {
    /// The leader compacted past this follower's epoch: the journal no
    /// longer holds the next window it needs. Retryable — after a re-seed
    /// ([`Follower::reseed_from`], or the combined
    /// [`Follower::catch_up_or_reseed`]).
    Compacted {
        /// Oldest epoch the leader's journal still retains.
        oldest: u64,
        /// The epoch this follower needed (`epoch() + 1`).
        requested: u64,
    },
    /// The leader answered with windows that do not start right after this
    /// follower's epoch — a protocol violation, not retryable.
    Gap {
        /// What the follower needed (`epoch() + 1`).
        expected: u64,
        /// What the leader sent.
        got: u64,
    },
    /// A checkpoint offered for re-seeding does not describe this
    /// follower's tenants/subsets (or would move it backwards). Not
    /// retryable against the same leader.
    SeedMismatch(String),
    /// Transport/protocol failure underneath; retryable per the client's
    /// own rules.
    Io(io::Error),
}

impl fmt::Display for CatchUpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatchUpError::Compacted { oldest, requested } => write!(
                f,
                "leader compacted window {requested} (oldest retained: {oldest}); re-seed needed"
            ),
            CatchUpError::Gap { expected, got } => write!(
                f,
                "journal stream gap: leader sent windows from epoch {got}, follower needs {expected}"
            ),
            CatchUpError::SeedMismatch(what) => write!(f, "checkpoint does not match: {what}"),
            CatchUpError::Io(e) => write!(f, "catch-up transport failure: {e}"),
        }
    }
}

impl std::error::Error for CatchUpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatchUpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CatchUpError {
    fn from(e: io::Error) -> Self {
        CatchUpError::Io(e)
    }
}

impl From<CatchUpError> for io::Error {
    fn from(e: CatchUpError) -> Self {
        match e {
            CatchUpError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

struct FollowerCell {
    id: TenantId,
    cell: Arc<EpochCell>,
    sources: Arc<Vec<u32>>,
    index: Arc<HashMap<u32, usize>>,
    /// Query-state refresh chain (same machinery as the leader's flush
    /// pipeline): the previous epoch's state, the matrix it was built
    /// over, and the norm-buffer recycling pool.
    query: Arc<QueryState>,
    prev_tagged: TaggedEmbedding,
    bufs: BufPool,
}

/// A replica host that replays the leader's flush windows and serves
/// wait-free reads at a possibly-stale-but-consistent epoch (module docs).
pub struct Follower {
    host: TenantHost,
    cells: Vec<FollowerCell>,
}

impl Follower {
    /// Wrap `host` as a follower and publish its current state (every
    /// tenant's epoch as of the host — epoch 0 for a fresh build, the
    /// checkpoint epoch for a recovered one).
    pub fn new(host: TenantHost) -> Self {
        let cells = host
            .tenant_ids()
            .into_iter()
            .map(|id| {
                let sources = Arc::new(host.sources(id).expect("own tenant").to_vec());
                let index: Arc<HashMap<u32, usize>> =
                    Arc::new(sources.iter().enumerate().map(|(i, &v)| (v, i)).collect());
                let tagged = host.tagged(id).expect("own tenant");
                let query = QueryState::build(&tagged);
                let cell = Arc::new(EpochCell::new(EpochSnapshot::with_query(
                    tagged.clone(),
                    sources.clone(),
                    index.clone(),
                    host.events_applied(id).expect("own tenant"),
                    host.timings(id).expect("own tenant"),
                    query.clone(),
                )));
                FollowerCell {
                    id,
                    cell,
                    sources,
                    index,
                    query,
                    prev_tagged: tagged,
                    bufs: BufPool::new(),
                }
            })
            .collect();
        Follower { host, cells }
    }

    /// The epoch this follower has applied and published (tenant epochs
    /// are lockstep with the window counter).
    pub fn epoch(&self) -> u64 {
        self.host.batches_recorded()
    }

    /// Registered tenant ids, in registration order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.host.tenant_ids()
    }

    /// A wait-free read handle on `tenant` (`None` if unknown) — the same
    /// interface a leader's [`ServerHandle::reader_for`] hands out.
    ///
    /// [`ServerHandle::reader_for`]: crate::ServerHandle::reader_for
    pub fn reader(&self, tenant: TenantId) -> Option<EmbeddingReader> {
        let c = self.cells.iter().find(|c| c.id == tenant)?;
        Some(EmbeddingReader::from_cell(c.cell.clone()))
    }

    /// The wrapped host (e.g. for offline comparison).
    pub fn host(&self) -> &TenantHost {
        &self.host
    }

    /// Unwrap the host. Readers handed out earlier keep serving the last
    /// published epoch.
    pub fn into_host(self) -> TenantHost {
        self.host
    }

    /// Apply one of the leader's post-coalesce windows verbatim and
    /// publish the resulting epoch on every tenant.
    pub fn apply_window(&mut self, events: &[EdgeEvent]) {
        self.host.apply_batch(events);
        for c in &mut self.cells {
            let tagged = self.host.tagged(c.id).expect("own tenant");
            let query = QueryState::refresh(&c.query, &c.prev_tagged, &tagged, &mut c.bufs);
            c.cell.store(EpochSnapshot::with_query(
                tagged.clone(),
                c.sources.clone(),
                c.index.clone(),
                self.host.events_applied(c.id).expect("own tenant"),
                self.host.timings(c.id).expect("own tenant"),
                query.clone(),
            ));
            c.query = query;
            c.prev_tagged = tagged;
        }
    }

    /// Pull windows from the leader until caught up to its journal head,
    /// applying and publishing each; returns the epoch then served.
    /// `max_per_pull` bounds each round trip (paging). Errors are typed:
    /// the follower stays consistent at whatever epoch it last published;
    /// [`CatchUpError::Io`] means simply call again, while
    /// [`CatchUpError::Compacted`] means the leader's bounded journal no
    /// longer reaches back this far and the follower must re-seed
    /// ([`Follower::reseed_from`] / [`Follower::catch_up_or_reseed`]).
    pub fn catch_up(
        &mut self,
        client: &mut NetClient,
        max_per_pull: u32,
    ) -> Result<u64, CatchUpError> {
        loop {
            let reply = match client.pull_windows(self.epoch(), max_per_pull)? {
                WindowsPull::Windows(reply) => reply,
                WindowsPull::Compacted { oldest, requested } => {
                    return Err(CatchUpError::Compacted { oldest, requested })
                }
            };
            if reply.windows.is_empty() {
                return Ok(self.epoch());
            }
            if reply.first_epoch != self.epoch() + 1 {
                return Err(CatchUpError::Gap {
                    expected: self.epoch() + 1,
                    got: reply.first_epoch,
                });
            }
            for w in &reply.windows {
                self.apply_window(w);
            }
            if self.epoch() >= reply.latest {
                return Ok(self.epoch());
            }
        }
    }

    /// Re-seed from a leader checkpoint fetched over the wire
    /// (`GetCheckpoint`): install the checkpointed host in place of this
    /// follower's, re-publishing every tenant's cell at the checkpoint
    /// epoch — readers handed out earlier stay live and simply observe the
    /// jump. The checkpoint must describe the *same* deployment (identical
    /// tenant ids and subsets) and must not move the follower backwards
    /// (reader epoch monotonicity); violations are typed
    /// [`CatchUpError::SeedMismatch`]. Returns the new epoch.
    pub fn reseed_from(&mut self, client: &mut NetClient) -> Result<u64, CatchUpError> {
        let cp = client.get_checkpoint()?;
        let json = Json::parse(&cp.host).map_err(|e| {
            CatchUpError::SeedMismatch(format!("checkpoint JSON does not parse: {e}"))
        })?;
        let host = TenantHost::from_json(&json).map_err(|e| {
            CatchUpError::SeedMismatch(format!("checkpoint does not deserialise: {e}"))
        })?;
        if host.batches_recorded() != cp.epoch {
            return Err(CatchUpError::SeedMismatch(format!(
                "checkpoint claims epoch {} but its host is at {}",
                cp.epoch,
                host.batches_recorded()
            )));
        }
        if cp.epoch < self.epoch() {
            return Err(CatchUpError::SeedMismatch(format!(
                "checkpoint epoch {} is behind this follower ({})",
                cp.epoch,
                self.epoch()
            )));
        }
        if host.tenant_ids() != self.host.tenant_ids() {
            return Err(CatchUpError::SeedMismatch(format!(
                "tenant ids {:?} != follower's {:?}",
                host.tenant_ids(),
                self.host.tenant_ids()
            )));
        }
        for c in &self.cells {
            let theirs = host.sources(c.id).expect("id checked above");
            if theirs != c.sources.as_slice() {
                return Err(CatchUpError::SeedMismatch(format!(
                    "tenant {} subset differs from this follower's",
                    c.id
                )));
            }
        }
        self.host = host;
        // Re-publish through the *existing* cells so readers handed out
        // before the re-seed keep working. The query state is rebuilt
        // from scratch — the incremental chain has no matrix to diff
        // against across a checkpoint jump (results are identical either
        // way; pruning is exact).
        for c in &mut self.cells {
            let tagged = self.host.tagged(c.id).expect("own tenant");
            let query = QueryState::build(&tagged);
            c.cell.store(EpochSnapshot::with_query(
                tagged.clone(),
                c.sources.clone(),
                c.index.clone(),
                self.host.events_applied(c.id).expect("own tenant"),
                self.host.timings(c.id).expect("own tenant"),
                query.clone(),
            ));
            c.query = query;
            c.prev_tagged = tagged;
        }
        Ok(self.epoch())
    }

    /// [`catch_up`](Self::catch_up), transparently re-seeding from the
    /// leader's checkpoint when the journal has compacted past this
    /// follower — the self-healing loop a long-offline replica runs to
    /// rejoin. Returns the epoch then served.
    pub fn catch_up_or_reseed(
        &mut self,
        client: &mut NetClient,
        max_per_pull: u32,
    ) -> Result<u64, CatchUpError> {
        match self.catch_up(client, max_per_pull) {
            Err(CatchUpError::Compacted { .. }) => {
                self.reseed_from(client)?;
                self.catch_up(client, max_per_pull)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
    use tsvd_graph::DynGraph;
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            oversample: 6,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.4 },
            partition: PartitionStrategy::EqualWidth,
            seed: 7,
        }
    }

    /// Applying the same windows to a follower and to a plain host yields
    /// identical published snapshots, epoch by epoch, for every tenant.
    #[test]
    fn follower_publishes_replayed_epochs_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 80;
        let g = random_graph(&mut rng, n, 320);
        let ppr = PprConfig::default();
        let build_host = |g: &DynGraph| {
            let mut h = TenantHost::new(g);
            h.register(0, &(0..7).collect::<Vec<_>>(), 2, ppr, tree_cfg())
                .unwrap();
            h.register(5, &(10..16).collect::<Vec<_>>(), 1, ppr, tree_cfg())
                .unwrap();
            h
        };
        let mut leader = build_host(&g);
        let mut follower = Follower::new(build_host(&g));
        let r0 = follower.reader(0).unwrap();
        let r5 = follower.reader(5).unwrap();
        assert_eq!(follower.epoch(), 0);
        assert_eq!(r0.epoch(), 0);
        assert!(follower.reader(99).is_none());

        for k in 0..3u32 {
            let window = vec![
                EdgeEvent::insert(k, 40 + k),
                EdgeEvent::insert(12, 50 + k),
                EdgeEvent::delete(k, 40 + k),
            ];
            leader.apply_batch(&window);
            follower.apply_window(&window);
            let e = follower.epoch();
            assert_eq!(e, (k + 1) as u64);
            for (id, reader) in [(0, &r0), (5, &r5)] {
                let snap = reader.snapshot();
                assert_eq!(snap.epoch(), e);
                assert!(snap.verify());
                let lead = leader.tagged(id).unwrap();
                let srv = snap.tagged();
                assert_eq!(
                    srv.left().sub(lead.left()).max_abs(),
                    0.0,
                    "tenant {id} diverged at epoch {e}"
                );
            }
        }
        let host = follower.into_host();
        assert_eq!(host.batches_recorded(), 3);
        // Readers keep serving the last published epoch after unwrap.
        assert_eq!(r0.epoch(), 3);
    }

    use crate::config::ServeConfig;
    use crate::net::{ClientConfig, NetFront};
    use crate::server::EmbeddingServer;

    fn fixed_graph() -> DynGraph {
        let mut rng = StdRng::seed_from_u64(47);
        random_graph(&mut rng, 60, 240)
    }

    fn build_host(g: &DynGraph) -> TenantHost {
        let mut h = TenantHost::new(g);
        h.register(
            0,
            &(0..8).collect::<Vec<_>>(),
            2,
            PprConfig::default(),
            tree_cfg(),
        )
        .unwrap();
        h
    }

    /// Distinct edges per window so coalescing is the identity and the
    /// offline replay below sees exactly the submitted windows.
    fn window(k: u32) -> Vec<EdgeEvent> {
        vec![
            EdgeEvent::insert(k, 30 + k),
            EdgeEvent::insert(2 + k, 40 + k),
        ]
    }

    /// Leader with a 2-window journal, 4 windows flushed: a follower
    /// stuck at epoch 0 needs window 1, which has been compacted away —
    /// the previously untested `Compacted` branch, now typed.
    #[test]
    fn catch_up_surfaces_compaction_as_typed_retryable_error() {
        let g = fixed_graph();
        let cfg = ServeConfig {
            flush_max_events: 1 << 20,
            flush_interval_ms: 60_000,
            journal_keep: 2,
            ..Default::default()
        };
        let handle = EmbeddingServer::start_host(build_host(&g), cfg);
        let front = NetFront::start(handle);
        let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();
        for k in 0..4u32 {
            client.submit_events(window(k)).unwrap();
            assert_eq!(client.flush().unwrap(), (k + 1) as u64);
        }

        let mut follower = Follower::new(build_host(&g));
        match follower.catch_up(&mut client, 16) {
            Err(CatchUpError::Compacted { oldest, requested }) => {
                assert_eq!(requested, 1);
                assert_eq!(oldest, 3); // keep=2 over epochs 1..=4 retains 3, 4
            }
            other => panic!("expected Compacted, got {other:?}"),
        }
        // Typed and non-destructive: the follower still serves epoch 0.
        assert_eq!(follower.epoch(), 0);
        front.shutdown_host();
    }

    /// The self-healing ladder: `catch_up_or_reseed` pulls the leader's
    /// checkpoint over the wire, re-seeds, finishes catch-up from the
    /// journal, and lands bitwise on the offline replay — with readers
    /// handed out before the re-seed observing the jump.
    #[test]
    fn catch_up_or_reseed_recovers_bitwise_after_compaction() {
        let g = fixed_graph();
        let cfg = ServeConfig {
            flush_max_events: 1 << 20,
            flush_interval_ms: 60_000,
            journal_keep: 2,
            ..Default::default()
        };
        let handle = EmbeddingServer::start_host(build_host(&g), cfg);
        let front = NetFront::start(handle);
        let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();
        let mut offline = build_host(&g);
        for k in 0..5u32 {
            client.submit_events(window(k)).unwrap();
            client.flush().unwrap();
            offline.apply_batch(&window(k));
        }

        let mut follower = Follower::new(build_host(&g));
        let reader = follower.reader(0).unwrap();
        assert_eq!(reader.epoch(), 0);
        let epoch = follower.catch_up_or_reseed(&mut client, 16).unwrap();
        assert_eq!(epoch, 5);
        // Pre-reseed readers observe the jump through the same cell.
        assert_eq!(reader.epoch(), 5);
        let snap = reader.snapshot();
        assert!(snap.verify());
        let diff = snap
            .tagged()
            .left()
            .sub(offline.tagged(0).unwrap().left())
            .max_abs();
        assert_eq!(diff, 0.0, "re-seeded follower diverged from offline replay");
        // Once caught up, further catch-up is a no-op, not an error.
        assert_eq!(follower.catch_up(&mut client, 16).unwrap(), 5);
        front.shutdown_host();
    }

    /// A checkpoint that does not describe this follower's deployment is
    /// rejected typed, leaving the follower untouched.
    #[test]
    fn reseed_rejects_checkpoint_for_a_different_subset() {
        let g = fixed_graph();
        let handle = EmbeddingServer::start_host(
            build_host(&g),
            ServeConfig {
                flush_max_events: 1 << 20,
                flush_interval_ms: 60_000,
                ..Default::default()
            },
        );
        let front = NetFront::start(handle);
        let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();

        // Same tenant id, different subset.
        let mut other = TenantHost::new(&g);
        other
            .register(
                0,
                &(10..18).collect::<Vec<_>>(),
                2,
                PprConfig::default(),
                tree_cfg(),
            )
            .unwrap();
        let mut follower = Follower::new(other);
        match follower.reseed_from(&mut client) {
            Err(CatchUpError::SeedMismatch(what)) => {
                assert!(
                    what.contains("subset"),
                    "unexpected mismatch detail: {what}"
                )
            }
            other => panic!("expected SeedMismatch, got {other:?}"),
        }
        assert_eq!(follower.epoch(), 0);
        front.shutdown_host();
    }
}
