//! Journal-fed follower replicas: read scale-out for free.
//!
//! A [`Follower`] wraps its own [`TenantHost`] — typically seeded from a
//! checkpoint of the leader (`tsvd-store` recovery) or built from the same
//! initial graph — and replays the leader's flush windows into it, in
//! order, publishing each resulting epoch through the same
//! [`EpochCell`]/[`EpochSnapshot`] machinery the leader's server uses. Its
//! readers are therefore wait-free and whole-epoch consistent, just
//! possibly *stale*: the follower serves epoch `k` while the leader is at
//! `k + lag`.
//!
//! Windows arrive over the existing `serve::net` protocol: the follower
//! polls `GetWindows{after_epoch, max}` ([`NetClient::get_windows`]),
//! which streams the leader's bounded in-memory journal tail. Because
//! those windows are exactly the post-coalesce windows the leader applied
//! — and every layer below is bitwise deterministic — the follower's
//! published embedding at epoch `k` equals the leader's at epoch `k` bit
//! for bit, per tenant.
//!
//! A follower that disconnects simply resumes polling from its own epoch;
//! if it fell further behind than the leader's journal retains, the pull
//! fails (the leader answers with a compaction error) and the follower
//! must re-seed from a newer checkpoint.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use tsvd_graph::EdgeEvent;

use crate::net::NetClient;
use crate::server::EmbeddingReader;
use crate::snapshot::{EpochCell, EpochSnapshot};
use crate::tenant::{TenantHost, TenantId};

struct FollowerCell {
    id: TenantId,
    cell: Arc<EpochCell>,
    sources: Arc<Vec<u32>>,
    index: Arc<HashMap<u32, usize>>,
}

/// A replica host that replays the leader's flush windows and serves
/// wait-free reads at a possibly-stale-but-consistent epoch (module docs).
pub struct Follower {
    host: TenantHost,
    cells: Vec<FollowerCell>,
}

impl Follower {
    /// Wrap `host` as a follower and publish its current state (every
    /// tenant's epoch as of the host — epoch 0 for a fresh build, the
    /// checkpoint epoch for a recovered one).
    pub fn new(host: TenantHost) -> Self {
        let cells = host
            .tenant_ids()
            .into_iter()
            .map(|id| {
                let sources = Arc::new(host.sources(id).expect("own tenant").to_vec());
                let index: Arc<HashMap<u32, usize>> =
                    Arc::new(sources.iter().enumerate().map(|(i, &v)| (v, i)).collect());
                let cell = Arc::new(EpochCell::new(EpochSnapshot::new(
                    host.tagged(id).expect("own tenant"),
                    sources.clone(),
                    index.clone(),
                    host.events_applied(id).expect("own tenant"),
                    host.timings(id).expect("own tenant"),
                )));
                FollowerCell {
                    id,
                    cell,
                    sources,
                    index,
                }
            })
            .collect();
        Follower { host, cells }
    }

    /// The epoch this follower has applied and published (tenant epochs
    /// are lockstep with the window counter).
    pub fn epoch(&self) -> u64 {
        self.host.batches_recorded()
    }

    /// Registered tenant ids, in registration order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.host.tenant_ids()
    }

    /// A wait-free read handle on `tenant` (`None` if unknown) — the same
    /// interface a leader's [`ServerHandle::reader_for`] hands out.
    ///
    /// [`ServerHandle::reader_for`]: crate::ServerHandle::reader_for
    pub fn reader(&self, tenant: TenantId) -> Option<EmbeddingReader> {
        let c = self.cells.iter().find(|c| c.id == tenant)?;
        Some(EmbeddingReader::from_cell(c.cell.clone()))
    }

    /// The wrapped host (e.g. for offline comparison).
    pub fn host(&self) -> &TenantHost {
        &self.host
    }

    /// Unwrap the host. Readers handed out earlier keep serving the last
    /// published epoch.
    pub fn into_host(self) -> TenantHost {
        self.host
    }

    /// Apply one of the leader's post-coalesce windows verbatim and
    /// publish the resulting epoch on every tenant.
    pub fn apply_window(&mut self, events: &[EdgeEvent]) {
        self.host.apply_batch(events);
        for c in &self.cells {
            c.cell.store(EpochSnapshot::new(
                self.host.tagged(c.id).expect("own tenant"),
                c.sources.clone(),
                c.index.clone(),
                self.host.events_applied(c.id).expect("own tenant"),
                self.host.timings(c.id).expect("own tenant"),
            ));
        }
    }

    /// Pull windows from the leader until caught up to its journal head,
    /// applying and publishing each; returns the epoch then served.
    /// `max_per_pull` bounds each round trip (paging). Transport failures
    /// and journal gaps (the leader compacted past this follower's epoch)
    /// surface as errors; the follower stays consistent at whatever epoch
    /// it last published and `catch_up` can simply be called again — or,
    /// after a gap, the follower must be re-seeded from a checkpoint.
    pub fn catch_up(&mut self, client: &mut NetClient, max_per_pull: u32) -> io::Result<u64> {
        loop {
            let reply = client.get_windows(self.epoch(), max_per_pull)?;
            if reply.windows.is_empty() {
                return Ok(self.epoch());
            }
            if reply.first_epoch != self.epoch() + 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "journal stream gap: leader sent windows from epoch {}, follower is at {}",
                        reply.first_epoch,
                        self.epoch()
                    ),
                ));
            }
            for w in &reply.windows {
                self.apply_window(w);
            }
            if self.epoch() >= reply.latest {
                return Ok(self.epoch());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
    use tsvd_graph::DynGraph;
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            oversample: 6,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.4 },
            partition: PartitionStrategy::EqualWidth,
            seed: 7,
        }
    }

    /// Applying the same windows to a follower and to a plain host yields
    /// identical published snapshots, epoch by epoch, for every tenant.
    #[test]
    fn follower_publishes_replayed_epochs_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 80;
        let g = random_graph(&mut rng, n, 320);
        let ppr = PprConfig::default();
        let build_host = |g: &DynGraph| {
            let mut h = TenantHost::new(g);
            h.register(0, &(0..7).collect::<Vec<_>>(), 2, ppr, tree_cfg())
                .unwrap();
            h.register(5, &(10..16).collect::<Vec<_>>(), 1, ppr, tree_cfg())
                .unwrap();
            h
        };
        let mut leader = build_host(&g);
        let mut follower = Follower::new(build_host(&g));
        let r0 = follower.reader(0).unwrap();
        let r5 = follower.reader(5).unwrap();
        assert_eq!(follower.epoch(), 0);
        assert_eq!(r0.epoch(), 0);
        assert!(follower.reader(99).is_none());

        for k in 0..3u32 {
            let window = vec![
                EdgeEvent::insert(k, 40 + k),
                EdgeEvent::insert(12, 50 + k),
                EdgeEvent::delete(k, 40 + k),
            ];
            leader.apply_batch(&window);
            follower.apply_window(&window);
            let e = follower.epoch();
            assert_eq!(e, (k + 1) as u64);
            for (id, reader) in [(0, &r0), (5, &r5)] {
                let snap = reader.snapshot();
                assert_eq!(snap.epoch(), e);
                assert!(snap.verify());
                let lead = leader.tagged(id).unwrap();
                let srv = snap.tagged();
                assert_eq!(
                    srv.left().sub(lead.left()).max_abs(),
                    0.0,
                    "tenant {id} diverged at epoch {e}"
                );
            }
        }
        let host = follower.into_host();
        assert_eq!(host.batches_recorded(), 3);
        // Readers keep serving the last published epoch after unwrap.
        assert_eq!(r0.epoch(), 3);
    }
}
