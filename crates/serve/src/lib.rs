//! # tsvd-serve
//!
//! A sharded, double-buffered **embedding-serving layer** over the dynamic
//! Tree-SVD pipeline — the "online" deployment shape of the paper's system:
//! edge events stream in, queries read the subset embedding concurrently,
//! and updates must neither block readers nor change results.
//!
//! Five pieces:
//!
//! * [`ShardedEngine`] — the update path. Subset rows are sharded across
//!   `R` contiguous-range PPR replicas (phase 1 is per-source independent),
//!   feeding one global lazy Tree-SVD. Output is **bitwise identical** to a
//!   single [`TreeSvdPipeline`](tsvd_core::TreeSvdPipeline) at any `R` and
//!   any `TSVD_THREADS` — sharding is a throughput knob, not an
//!   approximation (see `engine` module docs for why this holds).
//! * [`TenantHost`] — multi-subset tenancy. One host owns **one** shared
//!   graph; N registered tenants each own a subset, shard fan-out, and
//!   Tree-SVD state. Each edge batch is recorded on the shared graph
//!   exactly once and the recording is replayed into every tenant — so the
//!   graph work is paid once, not N times — while every tenant's embedding
//!   stays bitwise equal to its own offline replay.
//! * [`EmbeddingServer`] / [`ServerHandle`] / [`EmbeddingReader`] — the
//!   asynchronous front. A dedicated reactor thread
//!   ([`tsvd_rt::exec::EventLoop`] — no tokio; `std` only) batches incoming
//!   [`EdgeEvent`](tsvd_graph::EdgeEvent)s per [`ServeConfig`] window
//!   (count- or deadline-triggered, optionally last-write-wins coalesced)
//!   and flushes them through every tenant's engine on the shared compute
//!   pool, round-robin fair, with per-tenant admission quotas
//!   ([`ServeConfig::tenant_quota`]) and per-tenant epoch publication.
//! * [`EpochCell`] / [`EpochSnapshot`] — the double buffer. Each flush
//!   publishes a complete immutable snapshot via one `Arc` swap; readers
//!   always observe a whole epoch (checksum-verifiable), never a torn mix,
//!   and never wait on a flush.
//! * [`net`] — the network front. A hermetic length-prefixed wire protocol
//!   (`std::net` only) carries the full server API; [`NetFront`] accepts
//!   TCP or in-process loopback connections with bounded per-connection
//!   mailboxes, and [`NetClient`] adds pipelining, reconnect, and
//!   epoch/checksum staleness guards. `f64`s travel as raw IEEE-754 bits,
//!   so replies over the wire stay bitwise-equal to in-process reads.
//!
//! ```no_run
//! use tsvd_serve::{EmbeddingServer, ServeConfig, ShardedEngine};
//! # let g = tsvd_graph::DynGraph::with_nodes(100);
//! # let sources: Vec<u32> = (0..10).collect();
//! let engine = ShardedEngine::new(
//!     &g, &sources, 4,
//!     tsvd_ppr::PprConfig::default(),
//!     tsvd_core::TreeSvdConfig { dim: 8, ..Default::default() },
//! );
//! let server = EmbeddingServer::start(engine, ServeConfig::default());
//! let reader = server.reader(); // Clone per query thread
//! server.submit(tsvd_graph::EdgeEvent::insert(3, 17));
//! server.flush_sync();
//! let snap = reader.snapshot(); // whole-epoch consistent view
//! let _vec = snap.get(3);
//! let engine = server.shutdown(); // engine back, e.g. for offline checks
//! # let _ = engine;
//! ```

mod config;
mod engine;
mod flush;
mod follower;
mod ingest;
mod journal;
pub mod net;
pub mod query;
pub mod router;
mod server;
mod snapshot;
mod stats;
mod tenant;

pub use config::{RouterConfig, ServeConfig};
pub use engine::ShardedEngine;
pub use flush::{CommitOutcome, FlushPipeline};
pub use follower::{CatchUpError, Follower};
pub use ingest::GraphIngest;
pub use journal::{DurabilitySink, JournalError, JournalWindows, WindowJournal, JOURNAL_KEEP};
pub use net::{ClientConfig, NetClient, NetFront, TcpTransport, WindowsPull};
pub use query::Metric;
pub use router::{ReadSession, Router, RouterError, RouterFront, ShardEndpoint, ShardMap};
pub use server::{EmbeddingReader, EmbeddingServer, ServerHandle, SubmitError, DEFAULT_TENANT};
pub use snapshot::{EpochCell, EpochSnapshot};
pub use stats::{HostStats, RouterStats, ServeStats, StatsReply};
pub use tenant::{TenantError, TenantHost, TenantId};
