//! Two-stage flush pipeline: overlap phase 1 of window `k+1` with phase 2
//! of window `k`.
//!
//! [`FlushPipeline`] owns one tenant's engine halves (see the `engine`
//! module docs):
//!
//! * the **front** (shard PPR replicas) runs `stage_recorded` — journal,
//!   PPR replay of the ingest's recording, dirty-row rebuild — on the
//!   caller's thread, fanning out on the shared compute pool;
//! * the **back** (matrix + lazy Tree-SVD) runs `commit` — the ordered
//!   `set_row` drain plus the global refresh — detached on a
//!   [`tsvd_rt::pool::background`] courier.
//!
//! With `depth = 1`, submitting window `k+1` stages the new window *while*
//! the commit of window `k` is still in flight, then joins that commit
//! before spawning the next one. Because stage touches only front state
//! and commit only back state, and because commits stay strictly
//! sequential in window order (at most one in flight), the published
//! embedding is **bitwise identical** to the serial engine at any depth,
//! shard count, and thread count. With `depth = 0` the two phases run
//! back-to-back on the caller — exactly `ShardedEngine::apply_batch`.
//!
//! The pipeline comes in two flavours over the same machinery:
//!
//! * **standalone** ([`FlushPipeline::new`]) — wraps a whole
//!   [`ShardedEngine`], keeping its private [`GraphIngest`] inside, so
//!   [`submit_window`](FlushPipeline::submit_window) records and stages in
//!   one call (the single-tenant server path);
//! * **tenant mode** ([`FlushPipeline::for_tenant`]) — holds only the
//!   front/back halves; the host records each window once on the shared
//!   ingest and calls
//!   [`submit_recorded`](FlushPipeline::submit_recorded) on every tenant's
//!   pipeline with the same recording. Each tenant then overlaps its own
//!   commits independently — with N tenants at depth 1, up to N commits
//!   ride couriers concurrently while later tenants stage.
//!
//! The measured overlap (wall-clock during which both phases were running)
//! is reported per window in [`CommitOutcome::overlapped_secs`].

use std::sync::Arc;
use std::time::Instant;

use tsvd_core::{PipelineTimings, TaggedEmbedding, UpdateStats};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::RecordedBatch;
use tsvd_rt::pool::{background, TaskHandle};

use crate::engine::{EngineBack, EngineFront, ShardedEngine};
use crate::ingest::GraphIngest;
use crate::query::{BufPool, QueryState};

/// Everything the serving layer needs to publish one committed window.
#[derive(Clone)]
pub struct CommitOutcome {
    /// Engine epoch after this window (1-based window counter).
    pub epoch: u64,
    /// The Tree-SVD refresh stats of this window.
    pub stats: UpdateStats,
    /// Events in this (post-coalesce) window.
    pub num_events: usize,
    /// The refreshed embedding, tagged with `epoch`, ready to publish.
    pub tagged: TaggedEmbedding,
    /// Cumulative events across all committed windows.
    pub events_applied: u64,
    /// Cumulative per-phase wall-clock across all committed windows.
    pub timings: PipelineTimings,
    /// Wall-clock of this window's stage (phase 1).
    pub stage_secs: f64,
    /// Wall-clock of this window's commit (phase 2 + row drain).
    pub commit_secs: f64,
    /// Wall-clock during which this window's commit ran concurrently with
    /// the *next* window's stage. Zero at `depth = 0`, and for the last
    /// window before a drain.
    pub overlapped_secs: f64,
    /// Per-epoch top-k query state (norms + cluster index), refreshed
    /// incrementally from the previous epoch as part of this commit —
    /// ready for [`EpochSnapshot::with_query`](crate::EpochSnapshot).
    pub(crate) query: Arc<QueryState>,
}

/// The pipeline's query-state refresh chain: the previous epoch's state
/// and the matrix it was built over (an `Arc` pair — retaining it is two
/// pointer bumps, no copy), plus the norm-buffer recycling pool. Travels
/// with the back half into the detached commit, so the refresh overlaps
/// the next window's stage exactly like the commit does.
struct QueryCtx {
    query: Arc<QueryState>,
    tagged: TaggedEmbedding,
    bufs: BufPool,
}

impl QueryCtx {
    fn fresh(back: &EngineBack) -> QueryCtx {
        let tagged = back.tagged();
        QueryCtx {
            query: QueryState::build(&tagged),
            tagged,
            bufs: BufPool::new(),
        }
    }

    /// Advance the chain to `back`'s new epoch.
    fn advance(&mut self, back: &EngineBack) {
        let next = back.tagged();
        self.query = QueryState::refresh(&self.query, &self.tagged, &next, &mut self.bufs);
        self.tagged = next;
    }
}

/// What the detached commit hands back: the back half of the engine plus
/// this window's refresh accounting.
struct CommitDone {
    back: EngineBack,
    qctx: QueryCtx,
    stats: UpdateStats,
    commit_secs: f64,
    finished: Instant,
}

struct Inflight {
    handle: TaskHandle<CommitDone>,
    stage_secs: f64,
    num_events: usize,
}

/// Pipelined executor for flush windows (see module docs).
pub struct FlushPipeline {
    /// Present in standalone mode ([`FlushPipeline::new`]); `None` in
    /// tenant mode, where the host owns the shared ingest.
    ingest: Option<GraphIngest>,
    front: EngineFront,
    /// `None` exactly while a commit is in flight (the courier owns it).
    back: Option<EngineBack>,
    /// Travels with `back`: `None` exactly while a commit is in flight.
    qctx: Option<QueryCtx>,
    inflight: Option<Inflight>,
    depth: usize,
}

impl FlushPipeline {
    /// Wrap `engine` for pipelined execution. `depth = 0` keeps both
    /// phases serial on the caller; `depth = 1` overlaps the commit of
    /// each window with the stage of the next.
    pub fn new(engine: ShardedEngine, depth: usize) -> Self {
        assert!(depth <= 1, "pipeline depth > 1 is not supported");
        let (ingest, front, back) = engine.into_parts();
        let qctx = QueryCtx::fresh(&back);
        FlushPipeline {
            ingest: Some(ingest),
            front,
            back: Some(back),
            qctx: Some(qctx),
            inflight: None,
            depth,
        }
    }

    /// Wrap one tenant's engine halves: the graph stays with the host's
    /// shared ingest, which feeds this pipeline through
    /// [`submit_recorded`](Self::submit_recorded).
    pub(crate) fn for_tenant(front: EngineFront, back: EngineBack, depth: usize) -> Self {
        assert!(depth <= 1, "pipeline depth > 1 is not supported");
        let qctx = QueryCtx::fresh(&back);
        FlushPipeline {
            ingest: None,
            front,
            back: Some(back),
            qctx: Some(qctx),
            inflight: None,
            depth,
        }
    }

    /// The current epoch's query state (for publishing the initial
    /// snapshot without building it twice). Only callable with no commit
    /// in flight.
    pub(crate) fn query(&self) -> Arc<QueryState> {
        self.qctx
            .as_ref()
            .expect("query state is with an in-flight commit; drain first")
            .query
            .clone()
    }

    /// Configured pipeline depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Borrow the front half (checkpoint serialisation).
    pub(crate) fn front(&self) -> &EngineFront {
        &self.front
    }

    /// Borrow the back half (checkpoint serialisation). Only callable with
    /// no commit in flight — drain first.
    pub(crate) fn back(&self) -> &EngineBack {
        self.back
            .as_ref()
            .expect("back half is with an in-flight commit; drain before borrowing")
    }

    /// Whether a commit is currently in flight.
    pub fn in_flight(&self) -> bool {
        self.inflight.is_some()
    }

    /// Run one flush window through a standalone pipeline: record it on
    /// the internal ingest, then [`submit_recorded`](Self::submit_recorded).
    pub fn submit_window(&mut self, events: &[EdgeEvent]) -> Vec<CommitOutcome> {
        let mut ingest = self
            .ingest
            .take()
            .expect("standalone pipeline owns its ingest (tenant mode uses submit_recorded)");
        let rec = ingest.record(events);
        let out = self.submit_recorded(ingest.graph(), &rec, events);
        self.ingest = Some(ingest);
        out
    }

    /// Run one flush window through the pipeline from an already-captured
    /// recording. Stages it (concurrently with any in-flight commit), then
    /// joins that commit and hands the new window to the back half.
    /// Returns the outcomes that completed during this call, in window
    /// order: at `depth = 0` exactly this window's, at `depth = 1` the
    /// previous window's (empty for the very first window).
    ///
    /// `graph`/`rec` follow the `apply_recorded` contract: `graph` is the
    /// shared graph *after* the recording mutated it.
    pub(crate) fn submit_recorded(
        &mut self,
        graph: &DynGraph,
        rec: &RecordedBatch,
        events: &[EdgeEvent],
    ) -> Vec<CommitOutcome> {
        let stage_start = Instant::now();
        let staged = self.front.stage_recorded(graph, rec, events);
        let stage_end = Instant::now();
        let stage_secs = (stage_end - stage_start).as_secs_f64();

        let mut out = Vec::new();
        if let Some(infl) = self.inflight.take() {
            let Inflight {
                handle,
                stage_secs: prev_stage,
                num_events: prev_events,
            } = infl;
            let done = handle.join();
            // Overlap: the part of the staging interval during which the
            // in-flight commit was still running.
            let overlap = done
                .finished
                .min(stage_end)
                .saturating_duration_since(stage_start)
                .as_secs_f64();
            out.push(self.complete(done, prev_stage, prev_events, overlap));
        }

        let num_events = staged.num_events();
        if self.depth == 0 {
            let back = self.back.as_mut().expect("no commit in flight");
            let t0 = Instant::now();
            let stats = back.commit(staged);
            let qctx = self.qctx.as_mut().expect("no commit in flight");
            qctx.advance(back);
            let commit_secs = t0.elapsed().as_secs_f64();
            out.push(Self::outcome(
                self.back.as_ref().expect("back present"),
                self.qctx.as_ref().expect("query ctx present").query.clone(),
                stats,
                num_events,
                stage_secs,
                commit_secs,
                0.0,
            ));
        } else {
            let mut back = self.back.take().expect("no commit in flight");
            let mut qctx = self.qctx.take().expect("no commit in flight");
            let handle = background(move || {
                let t0 = Instant::now();
                let stats = back.commit(staged);
                // The query-state refresh rides the commit courier: it
                // overlaps the next window's stage exactly like the
                // commit itself, and publishes with the same outcome.
                qctx.advance(&back);
                CommitDone {
                    back,
                    qctx,
                    stats,
                    commit_secs: t0.elapsed().as_secs_f64(),
                    finished: Instant::now(),
                }
            });
            self.inflight = Some(Inflight {
                handle,
                stage_secs,
                num_events,
            });
        }
        out
    }

    /// Non-blocking poll of the in-flight commit: its outcome if it just
    /// finished, `None` if there is none or it is still running.
    pub fn try_complete(&mut self) -> Option<CommitOutcome> {
        let Inflight {
            handle,
            stage_secs,
            num_events,
        } = self.inflight.take()?;
        match handle.try_join() {
            Ok(done) => Some(self.complete(done, stage_secs, num_events, 0.0)),
            Err(handle) => {
                self.inflight = Some(Inflight {
                    handle,
                    stage_secs,
                    num_events,
                });
                None
            }
        }
    }

    /// Block until no commit is in flight, returning the joined window's
    /// outcome if there was one. After `drain`, the published state equals
    /// the serial engine having applied every submitted window.
    pub fn drain(&mut self) -> Option<CommitOutcome> {
        let Inflight {
            handle,
            stage_secs,
            num_events,
        } = self.inflight.take()?;
        Some(self.complete(handle.join(), stage_secs, num_events, 0.0))
    }

    /// Drain and reassemble the engine (standalone mode only). The second
    /// element is the final window's outcome if one was still in flight
    /// (callers must publish it to not lose the last epoch).
    pub fn into_engine(mut self) -> (ShardedEngine, Option<CommitOutcome>) {
        let out = self.drain();
        let ingest = self
            .ingest
            .take()
            .expect("standalone pipeline owns its ingest (tenant mode uses into_tenant_parts)");
        let back = self.back.take().expect("drained pipeline owns its back");
        (ShardedEngine::from_parts(ingest, self.front, back), out)
    }

    /// Drain and hand back one tenant's engine halves. The third element
    /// is the final window's outcome if one was still in flight.
    pub(crate) fn into_tenant_parts(mut self) -> (EngineFront, EngineBack, Option<CommitOutcome>) {
        let out = self.drain();
        let back = self.back.take().expect("drained pipeline owns its back");
        (self.front, back, out)
    }

    fn complete(
        &mut self,
        done: CommitDone,
        stage_secs: f64,
        num_events: usize,
        overlapped_secs: f64,
    ) -> CommitOutcome {
        let outcome = Self::outcome(
            &done.back,
            done.qctx.query.clone(),
            done.stats,
            num_events,
            stage_secs,
            done.commit_secs,
            overlapped_secs,
        );
        self.back = Some(done.back);
        self.qctx = Some(done.qctx);
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn outcome(
        back: &EngineBack,
        query: Arc<QueryState>,
        stats: UpdateStats,
        num_events: usize,
        stage_secs: f64,
        commit_secs: f64,
        overlapped_secs: f64,
    ) -> CommitOutcome {
        CommitOutcome {
            epoch: back.epoch(),
            stats,
            num_events,
            tagged: back.tagged(),
            events_applied: back.events_applied(),
            timings: back.timings(),
            stage_secs,
            commit_secs,
            overlapped_secs,
            query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
    use tsvd_graph::DynGraph;
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            oversample: 6,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.4 },
            partition: PartitionStrategy::EqualWidth,
            seed: 7,
        }
    }

    fn random_batch(rng: &mut StdRng, n: usize, len: usize) -> Vec<EdgeEvent> {
        (0..len)
            .map(|_| {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if rng.gen_bool(0.85) {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                }
            })
            .filter(|e| e.u != e.v)
            .collect()
    }

    fn build(g: &DynGraph, sources: &[u32], shards: usize) -> ShardedEngine {
        let ppr_cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        };
        ShardedEngine::new(g, sources, shards, ppr_cfg, tree_cfg())
    }

    /// The tentpole claim at pipeline level: depth 1 is bitwise equal to
    /// depth 0, which is bitwise equal to the plain serial engine — per
    /// window, not just at the end.
    #[test]
    fn pipelined_matches_serial_engine_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100;
        let g = random_graph(&mut rng, n, 400);
        let sources: Vec<u32> = (0..11).collect();
        let windows: Vec<Vec<EdgeEvent>> = (0..5).map(|_| random_batch(&mut rng, n, 24)).collect();

        let mut serial = build(&g, &sources, 3);
        let mut d0 = FlushPipeline::new(build(&g, &sources, 3), 0);
        let mut d1 = FlushPipeline::new(build(&g, &sources, 3), 1);

        let mut d1_epochs = Vec::new();
        for w in &windows {
            serial.apply_batch(w);
            let o0 = d0.submit_window(w);
            assert_eq!(o0.len(), 1, "depth 0 completes inline");
            assert_eq!(o0[0].overlapped_secs, 0.0);
            assert_eq!(
                o0[0]
                    .tagged
                    .left()
                    .sub(&serial.embedding().left())
                    .max_abs(),
                0.0,
                "depth 0 diverged from serial engine"
            );
            for o in d1.submit_window(w) {
                d1_epochs.push(o.epoch);
            }
        }
        if let Some(o) = d1.drain() {
            d1_epochs.push(o.epoch);
        }
        assert_eq!(d1_epochs, vec![1, 2, 3, 4, 5], "windows commit in order");

        let (e0, none0) = d0.into_engine();
        let (e1, none1) = d1.into_engine();
        assert!(none0.is_none() && none1.is_none(), "already drained");
        assert_eq!(e0.epoch(), 5);
        assert_eq!(e1.epoch(), 5);
        assert_eq!(e1.events_applied(), serial.events_applied());
        assert_eq!(
            e1.embedding()
                .left()
                .sub(&serial.embedding().left())
                .max_abs(),
            0.0,
            "depth 1 diverged from serial engine"
        );
        assert_eq!(
            e0.embedding().left().sub(&e1.embedding().left()).max_abs(),
            0.0
        );
        // Cumulative accounting also matches.
        assert_eq!(e1.total_stats(), serial.total_stats());
        assert_eq!(e1.timings().updates, serial.timings().updates);
    }

    /// `into_engine` while a window is still in flight must hand the final
    /// outcome back (the shutdown-with-staged-window drain path).
    #[test]
    fn into_engine_drains_inflight_window() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 80;
        let g = random_graph(&mut rng, n, 300);
        let sources: Vec<u32> = (0..7).collect();
        let w = random_batch(&mut rng, n, 20);

        let mut serial = build(&g, &sources, 2);
        serial.apply_batch(&w);

        let mut pipe = FlushPipeline::new(build(&g, &sources, 2), 1);
        assert!(
            pipe.submit_window(&w).is_empty(),
            "first window stays in flight"
        );
        assert!(pipe.in_flight());
        let (engine, last) = pipe.into_engine();
        let last = last.expect("in-flight window surfaces at drain");
        assert_eq!(last.epoch, 1);
        assert_eq!(last.num_events, w.len());
        assert_eq!(engine.epoch(), 1);
        assert_eq!(
            engine
                .embedding()
                .left()
                .sub(&serial.embedding().left())
                .max_abs(),
            0.0
        );
    }

    /// `try_complete` never blocks and eventually surfaces the outcome.
    #[test]
    fn try_complete_polls_inflight_commit() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 60;
        let g = random_graph(&mut rng, n, 200);
        let sources: Vec<u32> = (0..5).collect();
        let w = random_batch(&mut rng, n, 16);

        let mut pipe = FlushPipeline::new(build(&g, &sources, 2), 1);
        assert!(pipe.try_complete().is_none(), "nothing in flight yet");
        pipe.submit_window(&w);
        let mut polled = None;
        while polled.is_none() {
            polled = pipe.try_complete();
            std::thread::yield_now();
        }
        assert_eq!(polled.unwrap().epoch, 1);
        assert!(!pipe.in_flight());
        assert!(pipe.try_complete().is_none());
        let (engine, last) = pipe.into_engine();
        assert!(last.is_none());
        assert_eq!(engine.epoch(), 1);
    }
}
