//! Multi-subset tenancy: one shared graph, N per-subset engines.
//!
//! A [`TenantHost`] owns the single [`GraphIngest`] and a set of tenants,
//! each a (front, back) engine pair over its own subset `S_t` at its own
//! shard count. The edge-event stream is global — every window is recorded
//! on the shared graph **once** and the recording replayed into every
//! tenant's PPR shards — so each tenant's published embedding stays
//! bitwise-equal to an offline [`TreeSvdPipeline`](tsvd_core) replay of
//! the same windows with that tenant's subset.
//!
//! The host is the synchronous, single-writer core; the batching reactor
//! with fair cross-tenant scheduling lives in [`crate::server`]
//! (`EmbeddingServer::start_host`).

use std::fmt;

use tsvd_core::{Embedding, PipelineTimings, TaggedEmbedding, TreeSvdConfig, UpdateStats};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::json::{field, FromJson, Json, JsonError, ToJson};

use crate::engine::{build_parts, EngineBack, EngineFront, ShardedEngine};
use crate::ingest::GraphIngest;

/// Identifies one tenant (subset) on a host — also the id carried in the
/// wire frame header.
pub type TenantId = u32;

/// Typed registration failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantError {
    /// The id is already registered; registering it again would silently
    /// shadow (or double-replay into) the existing tenant's state.
    DuplicateId(TenantId),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::DuplicateId(id) => write!(f, "tenant id {id} is already registered"),
        }
    }
}

impl std::error::Error for TenantError {}

pub(crate) struct TenantEngine {
    pub(crate) id: TenantId,
    pub(crate) front: EngineFront,
    pub(crate) back: EngineBack,
}

/// One shared graph, N per-subset tenant engines (see module docs).
pub struct TenantHost {
    ingest: GraphIngest,
    tenants: Vec<TenantEngine>,
}

impl TenantHost {
    /// Start a host over (a clone of) `g` with no tenants registered.
    pub fn new(g: &DynGraph) -> Self {
        TenantHost {
            ingest: GraphIngest::new(g),
            tenants: Vec::new(),
        }
    }

    /// Wrap a standalone engine as a one-tenant host (its private ingest
    /// becomes the shared one, so `batches_recorded` carries over).
    pub fn from_engine(engine: ShardedEngine, id: TenantId) -> Self {
        let (ingest, front, back) = engine.into_parts();
        TenantHost {
            ingest,
            tenants: vec![TenantEngine { id, front, back }],
        }
    }

    /// Register tenant `id` over subset `sources` with `num_shards`
    /// contiguous PPR replicas, factorised against the shared graph's
    /// *current* state (its offline replay baseline).
    ///
    /// Duplicate ids are rejected with [`TenantError::DuplicateId`] —
    /// never silently shadowed.
    pub fn register(
        &mut self,
        id: TenantId,
        sources: &[u32],
        num_shards: usize,
        ppr_cfg: PprConfig,
        tree_cfg: TreeSvdConfig,
    ) -> Result<(), TenantError> {
        if self.tenants.iter().any(|t| t.id == id) {
            return Err(TenantError::DuplicateId(id));
        }
        let (front, back) =
            build_parts(self.ingest.graph(), sources, num_shards, ppr_cfg, tree_cfg);
        self.tenants.push(TenantEngine { id, front, back });
        Ok(())
    }

    /// Registered tenant ids, in registration order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|t| t.id).collect()
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The shared graph (all applied batches included).
    pub fn graph(&self) -> &DynGraph {
        self.ingest.graph()
    }

    /// How many edge batches the shared ingest recorded — the record-once
    /// counter: equal to the number of applied windows, *not*
    /// `windows × tenants`.
    pub fn batches_recorded(&self) -> u64 {
        self.ingest.batches_recorded()
    }

    /// Start journaling applied windows on every tenant (idempotent).
    /// Each tenant journals the same global windows; per-tenant journals
    /// are the ground truth for that tenant's offline replay.
    pub fn enable_window_log(&mut self) {
        for t in &mut self.tenants {
            t.front.enable_window_log();
        }
    }

    /// Tenant `id`'s journaled windows (`None` if the tenant is unknown or
    /// journaling was never enabled).
    pub fn window_log(&self, id: TenantId) -> Option<&[Vec<EdgeEvent>]> {
        self.tenant(id)?.front.window_log()
    }

    /// Apply one global event batch to every tenant: record once on the
    /// shared graph, replay into each tenant's shards, commit each
    /// tenant's refresh. Returns per-tenant `(id, stats)` in registration
    /// order. The synchronous equivalent of one served flush window.
    pub fn apply_batch(&mut self, events: &[EdgeEvent]) -> Vec<(TenantId, UpdateStats)> {
        let rec = self.ingest.record(events);
        let graph = self.ingest.graph();
        self.tenants
            .iter_mut()
            .map(|t| {
                let staged = t.front.stage_recorded(graph, &rec, events);
                (t.id, t.back.commit(staged))
            })
            .collect()
    }

    /// Tenant `id`'s current embedding.
    pub fn embedding(&self, id: TenantId) -> Option<&Embedding> {
        Some(self.tenant(id)?.back.embedding())
    }

    /// Tenant `id`'s current embedding tagged with its epoch.
    pub fn tagged(&self, id: TenantId) -> Option<TaggedEmbedding> {
        Some(self.tenant(id)?.back.tagged())
    }

    /// Tenant `id`'s epoch (committed-window counter).
    pub fn epoch(&self, id: TenantId) -> Option<u64> {
        Some(self.tenant(id)?.back.epoch())
    }

    /// Cumulative events applied to tenant `id`'s engine.
    pub fn events_applied(&self, id: TenantId) -> Option<u64> {
        Some(self.tenant(id)?.back.events_applied())
    }

    /// Tenant `id`'s cumulative per-phase wall-clock.
    pub fn timings(&self, id: TenantId) -> Option<PipelineTimings> {
        Some(self.tenant(id)?.back.timings())
    }

    /// Tenant `id`'s subset in row order.
    pub fn sources(&self, id: TenantId) -> Option<&[u32]> {
        Some(self.tenant(id)?.front.sources())
    }

    /// Tenant `id`'s actual shard count (after clamping to `|S|`).
    pub fn num_shards(&self, id: TenantId) -> Option<usize> {
        Some(self.tenant(id)?.front.num_shards())
    }

    /// Collapse a one-tenant host back into a standalone engine.
    ///
    /// # Panics
    /// If the host has more or fewer than exactly one tenant.
    pub fn into_single_engine(mut self) -> ShardedEngine {
        assert_eq!(
            self.tenants.len(),
            1,
            "into_single_engine needs exactly one tenant, host has {}",
            self.tenants.len()
        );
        let t = self.tenants.pop().expect("checked above");
        ShardedEngine::from_parts(self.ingest, t.front, t.back)
    }

    pub(crate) fn into_parts(self) -> (GraphIngest, Vec<TenantEngine>) {
        (self.ingest, self.tenants)
    }

    pub(crate) fn from_parts(ingest: GraphIngest, tenants: Vec<TenantEngine>) -> Self {
        TenantHost { ingest, tenants }
    }

    fn tenant(&self, id: TenantId) -> Option<&TenantEngine> {
        self.tenants.iter().find(|t| t.id == id)
    }
}

fn tenant_json(id: TenantId, front: &EngineFront, back: &EngineBack) -> Json {
    Json::object([
        ("id", id.to_json()),
        ("front", front.to_json()),
        ("back", back.to_json()),
    ])
}

/// Serialise a host checkpoint from borrowed parts — the reactor uses this
/// while the engine halves live inside per-tenant flush pipelines, so the
/// host never has to be reassembled just to checkpoint it. The shape is
/// exactly `TenantHost::to_json`.
pub(crate) fn host_json(
    ingest: &GraphIngest,
    tenants: &[(TenantId, &EngineFront, &EngineBack)],
) -> Json {
    Json::object([
        ("graph", ingest.graph().to_json()),
        ("batches_recorded", ingest.batches_recorded().to_json()),
        (
            "tenants",
            Json::Arr(
                tenants
                    .iter()
                    .map(|(id, f, b)| tenant_json(*id, f, b))
                    .collect(),
            ),
        ),
    ])
}

// Checkpoint codec: the full host state — shared graph, record-once
// counter, and every tenant's engine halves — round-trips losslessly, so
// a host restored from a checkpoint continues bitwise (the same property
// `core::persist` gives a standalone `TreeSvdPipeline`).
impl ToJson for TenantHost {
    fn to_json(&self) -> Json {
        let parts: Vec<(TenantId, &EngineFront, &EngineBack)> = self
            .tenants
            .iter()
            .map(|t| (t.id, &t.front, &t.back))
            .collect();
        host_json(&self.ingest, &parts)
    }
}

impl FromJson for TenantHost {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let graph: DynGraph = field(j, "graph")?;
        let batches_recorded: u64 = field(j, "batches_recorded")?;
        let tenants_json = j
            .get("tenants")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError("missing field 'tenants'".into()))?;
        let mut tenants = Vec::with_capacity(tenants_json.len());
        for t in tenants_json {
            tenants.push(TenantEngine {
                id: field(t, "id")?,
                front: field(t, "front")?,
                back: field(t, "back")?,
            });
        }
        Ok(TenantHost {
            ingest: GraphIngest::restore(graph, batches_recorded),
            tenants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdPipeline, UpdatePolicy};
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            oversample: 6,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.4 },
            partition: PartitionStrategy::EqualWidth,
            seed: 7,
        }
    }

    fn random_batch(rng: &mut StdRng, n: usize, len: usize) -> Vec<EdgeEvent> {
        (0..len)
            .map(|_| {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if rng.gen_bool(0.85) {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                }
            })
            .filter(|e| e.u != e.v)
            .collect()
    }

    /// Satellite: duplicate subset ids are a typed error, not a silent
    /// shadow — and the failed registration leaves the host untouched.
    #[test]
    fn duplicate_tenant_id_rejected_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_graph(&mut rng, 60, 240);
        let ppr = PprConfig::default();
        let mut host = TenantHost::new(&g);
        host.register(7, &[0, 1, 2], 1, ppr, tree_cfg()).unwrap();
        let err = host
            .register(7, &[3, 4, 5], 2, ppr, tree_cfg())
            .expect_err("second registration of id 7 must fail");
        assert_eq!(err, TenantError::DuplicateId(7));
        assert_eq!(err.to_string(), "tenant id 7 is already registered");
        // The original tenant survives intact and no shadow was added.
        assert_eq!(host.tenant_ids(), vec![7]);
        assert_eq!(host.sources(7).unwrap(), &[0, 1, 2]);
        // A different id is still accepted.
        host.register(8, &[3, 4, 5], 2, ppr, tree_cfg()).unwrap();
        assert_eq!(host.num_tenants(), 2);
    }

    /// Record-once fan-out: N tenants, each bitwise-equal to its own
    /// offline pipeline, while the ingest counter shows one recording per
    /// batch (not per tenant).
    #[test]
    fn host_fans_one_recording_to_every_tenant_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100;
        let g0 = random_graph(&mut rng, n, 400);
        let ppr = PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        };
        // Overlapping subsets at different shard counts.
        let subsets: Vec<(TenantId, Vec<u32>, usize)> = vec![
            (0, (0..9).collect(), 1),
            (10, (5..17).collect(), 3),
            (20, (40..48).collect(), 2),
        ];
        let mut host = TenantHost::new(&g0);
        for (id, s, r) in &subsets {
            host.register(*id, s, *r, ppr, tree_cfg()).unwrap();
        }
        let mut offline: Vec<(DynGraph, TreeSvdPipeline)> = subsets
            .iter()
            .map(|(_, s, _)| {
                let g = g0.clone();
                let p = TreeSvdPipeline::new(&g, s, ppr, tree_cfg());
                (g, p)
            })
            .collect();

        let batches: Vec<Vec<EdgeEvent>> = (0..3).map(|_| random_batch(&mut rng, n, 24)).collect();
        for batch in &batches {
            let stats = host.apply_batch(batch);
            assert_eq!(stats.len(), subsets.len());
            for ((g, pipe), (id, _, _)) in offline.iter_mut().zip(&subsets) {
                pipe.update(g, batch);
                let served = host.embedding(*id).unwrap();
                assert_eq!(
                    served.left().sub(&pipe.embedding().left()).max_abs(),
                    0.0,
                    "tenant {id} diverged from its offline replay"
                );
                assert_eq!(served.sigma, pipe.embedding().sigma);
            }
        }
        // One recording per batch — the record-once acceptance counter.
        assert_eq!(host.batches_recorded(), batches.len() as u64);
        for (id, _, _) in &subsets {
            assert_eq!(host.epoch(*id).unwrap(), batches.len() as u64);
        }
    }

    #[test]
    fn single_engine_round_trip_through_host() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 60;
        let g = random_graph(&mut rng, n, 240);
        let mut engine = ShardedEngine::new(
            &g,
            &(0..6).collect::<Vec<_>>(),
            2,
            PprConfig::default(),
            tree_cfg(),
        );
        engine.apply_batch(&random_batch(&mut rng, n, 12));
        let epoch = engine.epoch();
        let host = TenantHost::from_engine(engine, 0);
        assert_eq!(host.batches_recorded(), 1);
        let engine = host.into_single_engine();
        assert_eq!(engine.epoch(), epoch);
        assert_eq!(engine.batches_recorded(), 1);
    }

    #[test]
    #[should_panic(expected = "exactly one tenant")]
    fn into_single_engine_rejects_multi_tenant_hosts() {
        let g = DynGraph::with_nodes(8);
        let mut host = TenantHost::new(&g);
        host.register(0, &[0, 1], 1, PprConfig::default(), tree_cfg())
            .unwrap();
        host.register(1, &[2, 3], 1, PprConfig::default(), tree_cfg())
            .unwrap();
        let _ = host.into_single_engine();
    }
}
