//! Observable serving counters.

use tsvd_core::PipelineTimings;

/// Point-in-time serving statistics, as returned by
/// [`crate::ServerHandle::stats`].
///
/// `events_pending` is the staleness estimate `submitted − applied −
/// coalesced`: events accepted by a handle but not yet reflected in the
/// served epoch (in the mailbox or in the open flush window).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Epoch currently being served (flushed batches since start).
    pub epoch: u64,
    /// Shard fan-out `R` of the engine behind the server.
    pub num_shards: usize,
    /// Events accepted by `submit`/`submit_batch`.
    pub events_submitted: u64,
    /// Events applied by the engine (after coalescing).
    pub events_applied: u64,
    /// Events dropped by last-write-wins window coalescing.
    pub events_coalesced: u64,
    /// Staleness: accepted but not yet applied or coalesced away.
    pub events_pending: u64,
    /// Flushes executed.
    pub batches_flushed: u64,
    /// Wall-clock of the most recent flush, milliseconds.
    pub flush_ms_last: f64,
    /// Mean flush wall-clock, milliseconds.
    pub flush_ms_mean: f64,
    /// Worst flush wall-clock, milliseconds.
    pub flush_ms_max: f64,
    /// Configured flush pipelining depth (0 = serial flushes).
    pub pipeline_depth: usize,
    /// Windows currently in flight in the flush pipeline (0 or 1): staged
    /// and committing, but not yet published.
    pub windows_inflight: u64,
    /// Wall-clock of the most recent window's stage (phase 1), ms.
    pub stage_ms_last: f64,
    /// Wall-clock of the most recent window's commit (phase 2), ms.
    pub commit_ms_last: f64,
    /// Cumulative wall-clock during which a window's commit ran
    /// concurrently with the next window's stage — the measured pipeline
    /// overlap. Always 0 at `pipeline_depth = 0`.
    pub overlapped_secs: f64,
    /// Whether the incremental SVD update path is configured
    /// (`TSVD_SVD_UPDATE` / `ServeConfig::svd_update`).
    pub svd_update: bool,
    /// Level-1 blocks repaired by the in-place core patch, cumulative
    /// across shards and flushes. Nonzero only on the incremental path.
    pub blocks_patched: u64,
    /// Level-1 blocks repaired by the incremental Brand/Zha–Simon update,
    /// cumulative. Nonzero only on the incremental path.
    pub blocks_incremental: u64,
    /// Level-1 blocks repaired by a full sparse randomized
    /// refactorisation, cumulative.
    pub blocks_refactored: u64,
    /// Cumulative per-stage engine timings (PPR / rows / SVD).
    pub timings: PipelineTimings,
}

tsvd_rt::impl_json_struct!(ServeStats {
    epoch,
    num_shards,
    events_submitted,
    events_applied,
    events_coalesced,
    events_pending,
    batches_flushed,
    flush_ms_last,
    flush_ms_mean,
    flush_ms_max,
    pipeline_depth,
    windows_inflight,
    stage_ms_last,
    commit_ms_last,
    overlapped_secs,
    svd_update,
    blocks_patched,
    blocks_incremental,
    blocks_refactored,
    timings
});

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::json::{FromJson, Json, ToJson};

    #[test]
    fn json_round_trip() {
        let stats = ServeStats {
            epoch: 7,
            num_shards: 3,
            events_submitted: 100,
            events_applied: 90,
            events_coalesced: 6,
            events_pending: 4,
            batches_flushed: 7,
            flush_ms_last: 1.5,
            flush_ms_mean: 2.0,
            flush_ms_max: 3.25,
            pipeline_depth: 1,
            windows_inflight: 1,
            stage_ms_last: 0.75,
            commit_ms_last: 1.25,
            overlapped_secs: 0.125,
            svd_update: true,
            blocks_patched: 12,
            blocks_incremental: 5,
            blocks_refactored: 2,
            timings: PipelineTimings {
                ppr_secs: 0.5,
                rows_secs: 0.25,
                svd_secs: 1.0,
                updates: 7,
            },
        };
        let j = Json::parse(&stats.to_json().to_string()).unwrap();
        assert_eq!(ServeStats::from_json(&j).unwrap(), stats);
    }
}
