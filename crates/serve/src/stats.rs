//! Observable serving counters.

use tsvd_core::PipelineTimings;

/// Point-in-time serving statistics, as returned by
/// [`crate::ServerHandle::stats`].
///
/// `events_pending` is the staleness estimate `submitted − applied −
/// coalesced`: events accepted by a handle but not yet reflected in the
/// served epoch (in the mailbox or in the open flush window).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Tenant these statistics describe (`0` for a single-tenant server).
    pub tenant: u32,
    /// Epoch currently being served (flushed batches since start).
    pub epoch: u64,
    /// Shard fan-out `R` of the engine behind the server.
    pub num_shards: usize,
    /// Events accepted by `submit`/`submit_batch`.
    pub events_submitted: u64,
    /// Events applied by the engine (after coalescing).
    pub events_applied: u64,
    /// Events dropped by last-write-wins window coalescing.
    pub events_coalesced: u64,
    /// Staleness: accepted but not yet applied or coalesced away.
    pub events_pending: u64,
    /// Flushes executed.
    pub batches_flushed: u64,
    /// Wall-clock of the most recent flush, milliseconds.
    pub flush_ms_last: f64,
    /// Mean flush wall-clock, milliseconds.
    pub flush_ms_mean: f64,
    /// Worst flush wall-clock, milliseconds.
    pub flush_ms_max: f64,
    /// Configured flush pipelining depth (0 = serial flushes).
    pub pipeline_depth: usize,
    /// Windows currently in flight in the flush pipeline (0 or 1): staged
    /// and committing, but not yet published.
    pub windows_inflight: u64,
    /// Wall-clock of the most recent window's stage (phase 1), ms.
    pub stage_ms_last: f64,
    /// Wall-clock of the most recent window's commit (phase 2), ms.
    pub commit_ms_last: f64,
    /// Cumulative wall-clock during which a window's commit ran
    /// concurrently with the next window's stage — the measured pipeline
    /// overlap. Always 0 at `pipeline_depth = 0`.
    pub overlapped_secs: f64,
    /// Whether the incremental SVD update path is configured
    /// (`TSVD_SVD_UPDATE` / `ServeConfig::svd_update`).
    pub svd_update: bool,
    /// Level-1 blocks repaired by the in-place core patch, cumulative
    /// across shards and flushes. Nonzero only on the incremental path.
    pub blocks_patched: u64,
    /// Level-1 blocks repaired by the incremental Brand/Zha–Simon update,
    /// cumulative. Nonzero only on the incremental path.
    pub blocks_incremental: u64,
    /// Level-1 blocks repaired by a full sparse randomized
    /// refactorisation, cumulative.
    pub blocks_refactored: u64,
    /// Cumulative per-stage engine timings (PPR / rows / SVD).
    pub timings: PipelineTimings,
}

tsvd_rt::impl_json_struct!(ServeStats {
    tenant,
    epoch,
    num_shards,
    events_submitted,
    events_applied,
    events_coalesced,
    events_pending,
    batches_flushed,
    flush_ms_last,
    flush_ms_mean,
    flush_ms_max,
    pipeline_depth,
    windows_inflight,
    stage_ms_last,
    commit_ms_last,
    overlapped_secs,
    svd_update,
    blocks_patched,
    blocks_incremental,
    blocks_refactored,
    timings
});

/// Host-level rollup across every tenant on a [`crate::TenantHost`]-backed
/// server: the shared-ingest counters plus the sums of the per-tenant
/// event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Edge batches recorded on the shared graph — the record-once
    /// counter: equal to the number of flushed windows, not
    /// `windows × tenants`.
    pub batches_recorded: u64,
    /// Minimum tenant epoch: the window watermark every tenant has
    /// committed and published.
    pub epoch: u64,
    /// Sum of per-tenant `events_submitted`.
    pub events_submitted: u64,
    /// Sum of per-tenant `events_applied` (attributed survivors).
    pub events_applied: u64,
    /// Sum of per-tenant `events_coalesced`.
    pub events_coalesced: u64,
    /// Sum of per-tenant `events_pending`.
    pub events_pending: u64,
}

tsvd_rt::impl_json_struct!(HostStats {
    tenants,
    batches_recorded,
    epoch,
    events_submitted,
    events_applied,
    events_coalesced,
    events_pending
});

/// Counters of one [`crate::router::Router`]: scatter-gather traffic plus
/// the fault-path events (barrier retries, failovers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Shard ranges in the router's [`crate::router::ShardMap`].
    pub shards: usize,
    /// `GetRows` reads served (scatter-gathers completed, success or not).
    pub reads: u64,
    /// `SubmitEvents` writes broadcast.
    pub writes: u64,
    /// `Flush` barriers broadcast.
    pub flushes: u64,
    /// Times a read found the shards at unequal epochs and re-probed the
    /// laggards (one count per retry round, not per shard).
    pub barrier_retries: u64,
    /// Times a shard range was failed over to its follower replica.
    pub failovers: u64,
    /// Ranges permanently poisoned: their leader diverged on a write and
    /// no follower replica could take over.
    pub poisoned: u64,
}

tsvd_rt::impl_json_struct!(RouterStats {
    shards,
    reads,
    writes,
    flushes,
    barrier_retries,
    failovers,
    poisoned
});

/// The wire `Stats` reply: the requesting tenant's [`ServeStats`] plus the
/// [`HostStats`] rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsReply {
    /// Stats of the tenant the request was pinned to.
    pub tenant: ServeStats,
    /// Host-level rollup across all tenants.
    pub host: HostStats,
}

tsvd_rt::impl_json_struct!(StatsReply { tenant, host });

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::json::{FromJson, Json, ToJson};

    #[test]
    fn json_round_trip() {
        let stats = ServeStats {
            tenant: 3,
            epoch: 7,
            num_shards: 3,
            events_submitted: 100,
            events_applied: 90,
            events_coalesced: 6,
            events_pending: 4,
            batches_flushed: 7,
            flush_ms_last: 1.5,
            flush_ms_mean: 2.0,
            flush_ms_max: 3.25,
            pipeline_depth: 1,
            windows_inflight: 1,
            stage_ms_last: 0.75,
            commit_ms_last: 1.25,
            overlapped_secs: 0.125,
            svd_update: true,
            blocks_patched: 12,
            blocks_incremental: 5,
            blocks_refactored: 2,
            timings: PipelineTimings {
                ppr_secs: 0.5,
                rows_secs: 0.25,
                svd_secs: 1.0,
                updates: 7,
            },
        };
        let j = Json::parse(&stats.to_json().to_string()).unwrap();
        assert_eq!(ServeStats::from_json(&j).unwrap(), stats);
    }

    #[test]
    fn stats_reply_round_trips_with_host_rollup() {
        let reply = StatsReply {
            tenant: ServeStats {
                tenant: 42,
                epoch: 4,
                events_submitted: 10,
                ..Default::default()
            },
            host: HostStats {
                tenants: 3,
                batches_recorded: 4,
                epoch: 4,
                events_submitted: 30,
                events_applied: 25,
                events_coalesced: 5,
                events_pending: 0,
            },
        };
        let j = Json::parse(&reply.to_json().to_string()).unwrap();
        assert_eq!(StatsReply::from_json(&j).unwrap(), reply);
    }
}
