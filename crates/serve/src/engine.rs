//! The sharded update engine: `R` row-range PPR replicas feeding one
//! global lazy Tree-SVD — bitwise-equal to an unsharded
//! [`TreeSvdPipeline`](tsvd_core::TreeSvdPipeline) at any `R`.
//!
//! # Why sharding is exact here
//!
//! A [`TreeSvdPipeline::update`](tsvd_core::TreeSvdPipeline::update) has two
//! phases with very different structure:
//!
//! 1. **PPR + proximity rows** — per-source work: each source's push state
//!    depends only on the graph and the event batch, never on other
//!    sources. This phase shards perfectly: the engine records the batch
//!    once ([`RecordedBatch`]), mutating its graph, then every shard
//!    replays the identical record on its own contiguous row range of
//!    `M_S` via [`SubsetPpr::apply_recorded`]. Per-row output is bitwise
//!    what the unsharded `SubsetPpr` would produce.
//! 2. **Lazy Tree-SVD refresh** — global: the factorisation mixes all rows,
//!    so the engine keeps *one* [`DynamicTreeSvd`] over *one*
//!    [`BlockedProximityMatrix`] that the shards write into. Same matrix
//!    content + same cache state ⇒ same embedding, bit for bit.
//!
//! Consequently the served embedding is invariant in `R` **and** in
//! `TSVD_THREADS` (the pool places results by index), which is what lets
//! the integration suite pin `server output ≡ offline replay` exactly
//! rather than up to tolerance.
//!
//! The engine is synchronous and single-writer by design; the async
//! mailbox/batching layer lives in [`crate::server`].
//!
//! # The stage/commit split
//!
//! Internally the engine is two halves with disjoint state, mirroring the
//! two phases above:
//!
//! * [`EngineFront`] — shard PPR replicas. [`EngineFront::stage_recorded`]
//!   runs phase 1 of one window against a recording captured by the shared
//!   [`GraphIngest`] and produces a [`StagedWindow`]: the fresh proximity
//!   rows in ascending global row order, ready to drain.
//! * [`EngineBack`] — matrix + tree + embedding. [`EngineBack::commit`]
//!   drains a staged window's rows into the matrix (the ordered
//!   serialization point) and runs phase 2.
//!
//! `apply_batch` is exactly `commit(stage_recorded(record(events)))`; the
//! split exists so [`crate::FlushPipeline`] can run staging of window `k+1`
//! concurrently with the commit of window `k` without changing a single bit
//! of output. The graph itself lives one level up, in
//! [`GraphIngest`](crate::ingest::GraphIngest): a multi-tenant host records
//! each batch once and replays the recording into every tenant's front,
//! which is why the front no longer owns a graph.

use std::time::Instant;

use tsvd_core::{
    BlockedProximityMatrix, DynamicTreeSvd, Embedding, PipelineTimings, TaggedEmbedding,
    TreeSvdConfig, UpdateStats,
};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_linalg::CsrMatrix;
use tsvd_ppr::{PprConfig, RecordedBatch, SubsetPpr};
use tsvd_rt::json::{field, FromJson, Json, JsonError, ToJson};
use tsvd_rt::pool::par_for_each_mut;

use crate::ingest::GraphIngest;

/// Hard cap on the in-memory window log. The log exists for tests and
/// offline-replay ground truth; it grows by one window per flush and is
/// never drained, so a long-lived server must journal through the durable
/// WAL (`tsvd-store`, `TSVD_WAL=1`) instead. Hitting the cap is a
/// configuration error and panics rather than silently dropping windows —
/// a truncated journal would break the "replay equals served" contract.
pub(crate) const WINDOW_LOG_CAP: usize = 1 << 16;

/// One pipeline replica: the PPR maintenance state for a contiguous row
/// range `[start, start + ppr.len())` of `M_S`.
struct Shard {
    /// Global row index of this shard's first source.
    start: usize,
    ppr: SubsetPpr,
    /// Scratch: `(global_row, fresh_row)` pairs produced by the parallel
    /// refresh, drained serially into the global matrix.
    pending: Vec<(usize, Vec<(u32, f64)>)>,
}

/// Phase-1 half of the engine: the shard PPR replicas (one tenant's view).
/// Everything [`EngineFront::stage_recorded`] touches lives here — none of
/// it is read or written by [`EngineBack::commit`], which is the whole
/// overlap argument of the pipelined flush.
pub(crate) struct EngineFront {
    sources: Vec<u32>,
    shards: Vec<Shard>,
    /// When enabled, every staged window is journaled in order — the exact
    /// input an offline replay needs to reproduce this engine's state
    /// bitwise (the soak test's ground-truth hook). Staging order equals
    /// commit order (commits are strictly sequential), so the journal is
    /// valid ground truth in pipelined mode too.
    window_log: Option<Vec<Vec<EdgeEvent>>>,
}

/// Phase-1 output of one window: the fresh proximity rows, already in
/// ascending global row order — exactly the `set_row` sequence the
/// unsharded pipeline would perform, detached from the structures that
/// perform it.
pub(crate) struct StagedWindow {
    rows: Vec<(usize, Vec<(u32, f64)>)>,
    num_events: usize,
    ppr_secs: f64,
    rows_secs: f64,
}

impl StagedWindow {
    /// Events in the staged (post-coalesce) window.
    pub(crate) fn num_events(&self) -> usize {
        self.num_events
    }
}

/// Phase-2 half of the engine: the global matrix, the lazy Tree-SVD and
/// the published embedding, plus all cumulative accounting.
pub(crate) struct EngineBack {
    matrix: BlockedProximityMatrix,
    tree: DynamicTreeSvd,
    embedding: Embedding,
    timings: PipelineTimings,
    stats_total: UpdateStats,
    epoch: u64,
    events_applied: u64,
}

/// Sharded dynamic subset-embedding engine (see module docs): a private
/// [`GraphIngest`] plus one tenant's front/back halves — the single-tenant
/// composition of the same parts `TenantHost` fans out across N tenants.
pub struct ShardedEngine {
    ingest: GraphIngest,
    front: EngineFront,
    back: EngineBack,
}

impl EngineFront {
    /// Run phase 1 of one window: journal it and replay an already-captured
    /// recording on every shard in parallel, then rebuild the dirty
    /// proximity rows and hand them back in ascending global row order.
    ///
    /// `graph` must be the shared ingest graph *after*
    /// [`GraphIngest::record`] mutated it for this window (the
    /// `apply_recorded` contract), and `events` the window the recording
    /// was captured from. Touches only front state — safe to run while a
    /// previous window's [`EngineBack::commit`] is still in flight, and
    /// the same `rec` can be replayed into any number of tenant fronts.
    pub(crate) fn stage_recorded(
        &mut self,
        graph: &DynGraph,
        rec: &RecordedBatch,
        events: &[EdgeEvent],
    ) -> StagedWindow {
        if let Some(log) = &mut self.window_log {
            assert!(
                log.len() < WINDOW_LOG_CAP,
                "in-memory window_log reached its cap of {WINDOW_LOG_CAP} windows; \
                 long-lived servers must journal through the durable WAL \
                 (TSVD_WAL=1 / EmbeddingServer::start_with_store) instead"
            );
            log.push(events.to_vec());
        }
        // Phase 1a: replay the record on every shard's states in parallel
        // (shards outer, sources inner — nested regions run inline on pool
        // workers, so both levels stay busy).
        let t0 = Instant::now();
        par_for_each_mut(&mut self.shards, |sh| {
            sh.ppr.apply_recorded(graph, rec);
        });
        let t1 = Instant::now();

        // Phase 1b: rebuild dirty proximity rows per shard in parallel,
        // then concatenate them in ascending global row order — the same
        // order the unsharded pipeline writes them, so version stamps (and
        // thus the lazy layer's re-diff bookkeeping) match exactly when
        // the commit drains them.
        par_for_each_mut(&mut self.shards, |sh| {
            sh.pending.clear();
            for local in sh.ppr.take_dirty_rows() {
                sh.pending
                    .push((sh.start + local, sh.ppr.proximity_row(local)));
            }
        });
        let mut rows = Vec::with_capacity(self.shards.iter().map(|sh| sh.pending.len()).sum());
        for sh in &mut self.shards {
            rows.append(&mut sh.pending);
        }
        StagedWindow {
            rows,
            num_events: events.len(),
            ppr_secs: (t1 - t0).as_secs_f64(),
            rows_secs: t1.elapsed().as_secs_f64(),
        }
    }

    pub(crate) fn sources(&self) -> &[u32] {
        &self.sources
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Start journaling every staged window (idempotent).
    pub(crate) fn enable_window_log(&mut self) {
        if self.window_log.is_none() {
            self.window_log = Some(Vec::new());
        }
    }

    pub(crate) fn window_log(&self) -> Option<&[Vec<EdgeEvent>]> {
        self.window_log.as_deref()
    }
}

/// Build one tenant's pipeline halves over `graph` for subset `sources`:
/// shard the rows into `num_shards` contiguous `SubsetPpr` replicas and run
/// the initial factorisation, identically to
/// `TreeSvdPipeline::new(graph, sources, ppr_cfg, tree_cfg)`.
///
/// Shared by [`ShardedEngine::new`] and `TenantHost` registration, so a
/// tenant registered on a host and a standalone engine start from bitwise
/// the same state.
pub(crate) fn build_parts(
    graph: &DynGraph,
    sources: &[u32],
    num_shards: usize,
    ppr_cfg: PprConfig,
    tree_cfg: TreeSvdConfig,
) -> (EngineFront, EngineBack) {
    tree_cfg.validate();
    assert!(num_shards >= 1, "need at least one shard");
    assert!(!sources.is_empty(), "subset must be non-empty");
    assert!(
        sources.iter().all(|&s| (s as usize) < graph.num_nodes()),
        "subset node out of range"
    );
    let r = num_shards.min(sources.len());
    let per = sources.len().div_ceil(r);
    let mut shards = Vec::with_capacity(r);
    let mut start = 0usize;
    while start < sources.len() {
        let end = (start + per).min(sources.len());
        shards.push(Shard {
            start,
            ppr: SubsetPpr::build(graph, &sources[start..end], ppr_cfg),
            pending: Vec::new(),
        });
        start = end;
    }
    let rows: Vec<Vec<(u32, f64)>> = shards
        .iter()
        .flat_map(|sh| sh.ppr.proximity_rows())
        .collect();
    let matrix = BlockedProximityMatrix::from_proximity_rows(graph.num_nodes(), &tree_cfg, &rows);
    for sh in &mut shards {
        sh.ppr.take_dirty_rows(); // initial build handled all rows
    }
    let mut tree = DynamicTreeSvd::new(tree_cfg);
    let embedding = tree.build(&matrix);
    (
        EngineFront {
            sources: sources.to_vec(),
            shards,
            window_log: None,
        },
        EngineBack {
            matrix,
            tree,
            embedding,
            timings: PipelineTimings::default(),
            stats_total: UpdateStats::default(),
            epoch: 0,
            events_applied: 0,
        },
    )
}

impl EngineBack {
    /// Run the commit of one staged window: drain its rows into the global
    /// matrix (the ordered serialization point) and run phase 2, the lazy
    /// Tree-SVD refresh. Commits must happen in staging order; the
    /// [`crate::FlushPipeline`] enforces that by keeping at most one in
    /// flight.
    pub(crate) fn commit(&mut self, window: StagedWindow) -> UpdateStats {
        let t0 = Instant::now();
        for (row, entries) in &window.rows {
            self.matrix.set_row(*row, entries);
        }
        let t1 = Instant::now();
        let (embedding, stats) = self.tree.update(&self.matrix);
        self.embedding = embedding;
        self.timings.ppr_secs += window.ppr_secs;
        self.timings.rows_secs += window.rows_secs + (t1 - t0).as_secs_f64();
        self.timings.svd_secs += t1.elapsed().as_secs_f64();
        self.timings.updates += 1;
        self.stats_total += stats;
        self.epoch += 1;
        self.events_applied += window.num_events as u64;
        stats
    }

    /// The current embedding, tagged with the current epoch, as a cheaply
    /// clonable snapshot ready to publish.
    pub(crate) fn tagged(&self) -> TaggedEmbedding {
        self.embedding.tagged(self.epoch)
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn events_applied(&self) -> u64 {
        self.events_applied
    }

    pub(crate) fn timings(&self) -> PipelineTimings {
        self.timings
    }

    pub(crate) fn embedding(&self) -> &Embedding {
        &self.embedding
    }
}

// Checkpoint serialisation of the engine halves. Scratch state is excluded
// by construction: a shard's `pending` buffer only lives within one stage
// call, and the front's `window_log` is the test-only journal the durable
// WAL replaces — so a reloaded engine continues bitwise from the
// serialised state.
impl ToJson for Shard {
    fn to_json(&self) -> Json {
        Json::object([("start", self.start.to_json()), ("ppr", self.ppr.to_json())])
    }
}

impl FromJson for Shard {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Shard {
            start: field(j, "start")?,
            ppr: field(j, "ppr")?,
            pending: Vec::new(),
        })
    }
}

impl ToJson for EngineFront {
    fn to_json(&self) -> Json {
        Json::object([
            ("sources", self.sources.to_json()),
            ("shards", self.shards.to_json()),
        ])
    }
}

impl FromJson for EngineFront {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(EngineFront {
            sources: field(j, "sources")?,
            shards: field(j, "shards")?,
            window_log: None,
        })
    }
}

impl ToJson for EngineBack {
    fn to_json(&self) -> Json {
        Json::object([
            ("matrix", self.matrix.to_json()),
            ("tree", self.tree.to_json()),
            ("embedding", self.embedding.to_json()),
            ("timings", self.timings.to_json()),
            ("stats_total", self.stats_total.to_json()),
            ("epoch", self.epoch.to_json()),
            ("events_applied", self.events_applied.to_json()),
        ])
    }
}

impl FromJson for EngineBack {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(EngineBack {
            matrix: field(j, "matrix")?,
            tree: field(j, "tree")?,
            embedding: field(j, "embedding")?,
            timings: field(j, "timings")?,
            stats_total: field(j, "stats_total")?,
            epoch: field(j, "epoch")?,
            events_applied: field(j, "events_applied")?,
        })
    }
}

impl ShardedEngine {
    /// Build the engine on (a clone of) `g` for subset `sources`, sharding
    /// the rows over `num_shards` contiguous ranges (clamped to `|S|`).
    ///
    /// The initial factorisation is identical to
    /// `TreeSvdPipeline::new(g, sources, ppr_cfg, tree_cfg)`: shard builds
    /// are per-source independent, and EqualMass block boundaries are
    /// computed from the *full* concatenated row set.
    pub fn new(
        g: &DynGraph,
        sources: &[u32],
        num_shards: usize,
        ppr_cfg: PprConfig,
        tree_cfg: TreeSvdConfig,
    ) -> Self {
        let (front, back) = build_parts(g, sources, num_shards, ppr_cfg, tree_cfg);
        ShardedEngine {
            ingest: GraphIngest::new(g),
            front,
            back,
        }
    }

    /// Start journaling every applied window (see `window_log`). Windows
    /// applied before this call are not recorded, so enable it before the
    /// first `apply_batch` for a complete journal.
    ///
    /// The in-memory journal is for tests and offline-replay ground truth
    /// and is capped at [`WINDOW_LOG_CAP`] windows (exceeding it panics);
    /// a long-lived server journals through the durable WAL instead.
    pub fn enable_window_log(&mut self) {
        self.front.enable_window_log();
    }

    /// The journaled windows, in application order (`None` if journaling
    /// was never enabled). Replaying exactly these windows through a fresh
    /// `TreeSvdPipeline` on the same initial graph reproduces the current
    /// embedding bitwise — regardless of how submissions raced into flush
    /// windows.
    pub fn window_log(&self) -> Option<&[Vec<EdgeEvent>]> {
        self.front.window_log()
    }

    /// Apply one event batch and refresh the embedding — the sharded
    /// equivalent of `TreeSvdPipeline::update` on the engine's own graph.
    /// Literally `commit(stage_recorded(record(events)))`: the serial
    /// composition of ingest and the two pipeline stages.
    pub fn apply_batch(&mut self, events: &[EdgeEvent]) -> UpdateStats {
        let rec = self.ingest.record(events);
        let staged = self.front.stage_recorded(self.ingest.graph(), &rec, events);
        self.back.commit(staged)
    }

    /// Split into ingest + the two pipeline halves (see module docs). Used
    /// by [`crate::FlushPipeline`] to run the halves concurrently and by
    /// `TenantHost` to share one ingest across tenants.
    pub(crate) fn into_parts(self) -> (GraphIngest, EngineFront, EngineBack) {
        (self.ingest, self.front, self.back)
    }

    /// Reassemble an engine from its parts.
    pub(crate) fn from_parts(
        ingest: GraphIngest,
        front: EngineFront,
        back: EngineBack,
    ) -> ShardedEngine {
        ShardedEngine {
            ingest,
            front,
            back,
        }
    }

    /// The current embedding, tagged with the current epoch, as a cheaply
    /// clonable snapshot ready to publish.
    pub fn tagged(&self) -> TaggedEmbedding {
        self.back.tagged()
    }

    /// The current subset embedding.
    pub fn embedding(&self) -> &Embedding {
        &self.back.embedding
    }

    /// Number of batches applied so far (the published epoch counter).
    pub fn epoch(&self) -> u64 {
        self.back.epoch
    }

    /// Total events handed to [`ShardedEngine::apply_batch`] so far.
    pub fn events_applied(&self) -> u64 {
        self.back.events_applied
    }

    /// Actual shard count `R` (after clamping to `|S|`).
    pub fn num_shards(&self) -> usize {
        self.front.num_shards()
    }

    /// Row range `[start, end)` of shard `k`.
    pub fn shard_range(&self, k: usize) -> (usize, usize) {
        let sh = &self.front.shards[k];
        (sh.start, sh.start + sh.ppr.len())
    }

    /// The subset `S` in row order.
    pub fn sources(&self) -> &[u32] {
        self.front.sources()
    }

    /// The engine's view of the graph (all applied batches included).
    pub fn graph(&self) -> &DynGraph {
        self.ingest.graph()
    }

    /// How many edge batches the engine's private ingest has recorded —
    /// equal to [`epoch`](Self::epoch) for a standalone engine.
    pub fn batches_recorded(&self) -> u64 {
        self.ingest.batches_recorded()
    }

    /// Cumulative per-phase wall-clock across all applied batches.
    pub fn timings(&self) -> PipelineTimings {
        self.back.timings
    }

    /// Field-wise sum of every batch's [`UpdateStats`].
    pub fn total_stats(&self) -> UpdateStats {
        self.back.stats_total
    }

    /// The maintained proximity matrix as CSR (right embeddings, quality
    /// measurements).
    pub fn proximity_csr(&self) -> CsrMatrix {
        self.back.matrix.to_csr()
    }

    /// The global blocked proximity matrix.
    pub fn matrix(&self) -> &BlockedProximityMatrix {
        &self.back.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdPipeline, UpdatePolicy};
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            oversample: 6,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.4 },
            partition: PartitionStrategy::EqualWidth,
            seed: 7,
        }
    }

    fn random_batch(rng: &mut StdRng, n: usize, len: usize) -> Vec<EdgeEvent> {
        (0..len)
            .map(|_| {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if rng.gen_bool(0.85) {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                }
            })
            .filter(|e| e.u != e.v)
            .collect()
    }

    /// The acceptance criterion at engine level: for every R, the sharded
    /// engine tracks an unsharded pipeline bit for bit, batch after batch.
    #[test]
    fn any_shard_count_bitwise_matches_unsharded_pipeline() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 120;
        let g0 = random_graph(&mut rng, n, 480);
        let sources: Vec<u32> = (0..13).collect();
        let ppr_cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        };
        let batches: Vec<Vec<EdgeEvent>> = (0..4).map(|_| random_batch(&mut rng, n, 30)).collect();

        let mut g = g0.clone();
        let mut pipe = TreeSvdPipeline::new(&g, &sources, ppr_cfg, tree_cfg());

        let mut engines: Vec<ShardedEngine> = [1usize, 2, 3, 13, 50]
            .iter()
            .map(|&r| ShardedEngine::new(&g0, &sources, r, ppr_cfg, tree_cfg()))
            .collect();
        assert_eq!(engines[0].num_shards(), 1);
        assert_eq!(engines[3].num_shards(), 13, "one row per shard");
        assert_eq!(engines[4].num_shards(), 13, "R clamps to |S|");

        // Initial factorisation already identical.
        for e in &engines {
            assert_eq!(
                e.embedding().left().sub(&pipe.embedding().left()).max_abs(),
                0.0
            );
        }
        for batch in &batches {
            pipe.update(&mut g, batch);
            for e in &mut engines {
                let stats = e.apply_batch(batch);
                assert!(stats.blocks_total > 0);
                let diff = e.embedding().left().sub(&pipe.embedding().left()).max_abs();
                assert_eq!(
                    diff,
                    0.0,
                    "epoch {}: sharded (R={}) diverged from pipeline",
                    e.epoch(),
                    e.num_shards()
                );
                assert_eq!(e.embedding().sigma, pipe.embedding().sigma);
            }
        }
        // Graph state also tracked identically.
        for e in &engines {
            assert_eq!(e.graph().num_edges(), g.num_edges());
            assert_eq!(e.epoch(), batches.len() as u64);
        }
    }

    #[test]
    fn equal_mass_partition_shards_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 150;
        let g0 = random_graph(&mut rng, n, 600);
        let sources: Vec<u32> = (0..10).collect();
        let ppr_cfg = PprConfig::default();
        let mut cfg = tree_cfg();
        cfg.partition = PartitionStrategy::EqualMass;

        let mut g = g0.clone();
        let mut pipe = TreeSvdPipeline::new(&g, &sources, ppr_cfg, cfg);
        let mut eng = ShardedEngine::new(&g0, &sources, 3, ppr_cfg, cfg);
        assert_eq!(
            eng.embedding()
                .left()
                .sub(&pipe.embedding().left())
                .max_abs(),
            0.0,
            "EqualMass boundaries must come from the full row set"
        );
        for _ in 0..3 {
            let batch = random_batch(&mut rng, n, 25);
            pipe.update(&mut g, &batch);
            eng.apply_batch(&batch);
            assert_eq!(
                eng.embedding()
                    .left()
                    .sub(&pipe.embedding().left())
                    .max_abs(),
                0.0
            );
        }
    }

    #[test]
    fn shard_ranges_are_contiguous_and_cover_subset() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_graph(&mut rng, 60, 240);
        let sources: Vec<u32> = (0..11).collect();
        let eng = ShardedEngine::new(&g, &sources, 4, PprConfig::default(), tree_cfg());
        let mut expect_start = 0usize;
        for k in 0..eng.num_shards() {
            let (lo, hi) = eng.shard_range(k);
            assert_eq!(lo, expect_start, "shard {k} not contiguous");
            assert!(hi > lo);
            expect_start = hi;
        }
        assert_eq!(expect_start, sources.len());
    }

    #[test]
    fn stats_and_timings_accumulate() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 80;
        let g = random_graph(&mut rng, n, 320);
        let sources: Vec<u32> = (0..8).collect();
        let mut eng = ShardedEngine::new(&g, &sources, 2, PprConfig::default(), tree_cfg());
        assert_eq!(eng.total_stats(), UpdateStats::default());
        let mut expect = UpdateStats::default();
        for _ in 0..2 {
            expect += eng.apply_batch(&random_batch(&mut rng, n, 20));
        }
        assert_eq!(eng.total_stats(), expect);
        let t = eng.timings();
        assert_eq!(t.updates, 2);
        assert!(t.ppr_secs > 0.0);
        assert_eq!(eng.epoch(), 2);
        let tagged = eng.tagged();
        assert_eq!(tagged.epoch(), 2);
        assert_eq!(tagged.num_rows(), sources.len());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let g = DynGraph::with_nodes(4);
        let _ = ShardedEngine::new(&g, &[0], 0, PprConfig::default(), tree_cfg());
    }
}
