//! Epoch snapshots and the double-buffered publish cell.
//!
//! The writer (the server's event loop) prepares a complete
//! [`EpochSnapshot`] *off* any lock — materialising the embedding, the
//! node→row index, and a content checksum — and then publishes it with a
//! single pointer-sized [`Arc`] swap inside [`EpochCell::store`]. Readers
//! clone the current `Arc` under a read lock held for nanoseconds and then
//! work entirely on their private snapshot: they never block the writer,
//! never see a half-written epoch, and an in-flight reader keeps its whole
//! epoch alive however many swaps happen underneath it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tsvd_core::{PipelineTimings, TaggedEmbedding};

use crate::query::{inv_norm_of, Metric, QueryState};

/// One immutable, internally consistent published state of the server:
/// the embedding at some epoch plus the lookup structures to query it.
#[derive(Clone)]
pub struct EpochSnapshot {
    tagged: TaggedEmbedding,
    sources: Arc<Vec<u32>>,
    index: Arc<HashMap<u32, usize>>,
    events_applied: u64,
    timings: PipelineTimings,
    checksum: f64,
    /// Per-epoch top-k query state (cached row norms + cluster index),
    /// built at publish time — never per query.
    query: Arc<QueryState>,
}

impl EpochSnapshot {
    /// Assemble a snapshot. `sources[i]` must be the node whose embedding
    /// is row `i` — the engine's subset order. Builds the per-epoch query
    /// state from scratch; publish paths that maintain it incrementally
    /// use [`EpochSnapshot::with_query`] instead.
    pub fn new(
        tagged: TaggedEmbedding,
        sources: Arc<Vec<u32>>,
        index: Arc<HashMap<u32, usize>>,
        events_applied: u64,
        timings: PipelineTimings,
    ) -> Self {
        let query = QueryState::build(&tagged);
        Self::with_query(tagged, sources, index, events_applied, timings, query)
    }

    /// Assemble a snapshot around an already-built query state (the flush
    /// pipeline refreshes it incrementally alongside the commit).
    pub(crate) fn with_query(
        tagged: TaggedEmbedding,
        sources: Arc<Vec<u32>>,
        index: Arc<HashMap<u32, usize>>,
        events_applied: u64,
        timings: PipelineTimings,
        query: Arc<QueryState>,
    ) -> Self {
        assert_eq!(sources.len(), tagged.num_rows(), "sources/rows mismatch");
        let checksum = Self::checksum_of(&tagged);
        EpochSnapshot {
            tagged,
            sources,
            index,
            events_applied,
            timings,
            checksum,
            query,
        }
    }

    /// Sequential sum over all embedding entries — deterministic, so any
    /// consistent snapshot verifies bitwise. A torn mix of two epochs
    /// (impossible by construction; asserted by the integration tests)
    /// would fail [`EpochSnapshot::verify`].
    fn checksum_of(tagged: &TaggedEmbedding) -> f64 {
        let left = tagged.left();
        let mut sum = 0.0f64;
        for r in 0..left.rows() {
            for v in left.row(r) {
                sum += v;
            }
        }
        sum
    }

    /// Recompute the checksum from the snapshot's current contents and
    /// compare bitwise against the one stamped at publish time.
    pub fn verify(&self) -> bool {
        Self::checksum_of(&self.tagged).to_bits() == self.checksum.to_bits()
    }

    /// The epoch (number of flushed batches) this snapshot reflects.
    pub fn epoch(&self) -> u64 {
        self.tagged.epoch()
    }

    /// Total events applied by the engine up to this epoch.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Cumulative per-stage timings up to this epoch.
    pub fn timings(&self) -> PipelineTimings {
        self.timings
    }

    /// Checksum stamped at publish time (sequential entry sum).
    pub fn checksum(&self) -> f64 {
        self.checksum
    }

    /// The subset `S` in row order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.tagged.dim()
    }

    /// The underlying tagged embedding.
    pub fn tagged(&self) -> &TaggedEmbedding {
        &self.tagged
    }

    /// Row index of `node` in this snapshot, if it is in the subset.
    pub fn row_of(&self, node: u32) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// The embedding vector of `node`, if it is in the subset.
    pub fn get(&self, node: u32) -> Option<&[f64]> {
        self.row_of(node).map(|r| self.tagged.row(r))
    }

    /// Batched lookup: one slot per query, `None` for non-subset nodes.
    pub fn get_many(&self, nodes: &[u32]) -> Vec<Option<&[f64]>> {
        nodes.iter().map(|&u| self.get(u)).collect()
    }

    /// The `k` subset nodes most similar to `node` by embedding dot
    /// product, descending (excluding `node` itself; ties broken by
    /// ascending row). `None` if `node` is not in the subset. Equivalent
    /// to [`top_k`](Self::top_k) with [`Metric::Dot`].
    pub fn top_k_similar(&self, node: u32, k: usize) -> Option<Vec<(u32, f64)>> {
        self.top_k(node, k, Metric::Dot)
    }

    /// The `k` subset nodes most similar to `node` under `metric`,
    /// descending, excluding `node` itself; ties broken by ascending row
    /// (the canonical deterministic order — identical at any thread
    /// count). Served by the cluster index when this epoch carries one,
    /// with bitwise-identical results either way. `None` if `node` is not
    /// in the subset.
    pub fn top_k(&self, node: u32, k: usize, metric: Metric) -> Option<Vec<(u32, f64)>> {
        let row = self.row_of(node)?;
        let q = self.tagged.row(row);
        Some(self.run_top_k(q, k, metric, Some(row as u32), false))
    }

    /// [`top_k`](Self::top_k) forced through the tier-1 blocked scan,
    /// bypassing the cluster index — results are bitwise identical; only
    /// the work differs. Exposed for equivalence testing and benchmarks.
    pub fn top_k_scan(&self, node: u32, k: usize, metric: Metric) -> Option<Vec<(u32, f64)>> {
        let row = self.row_of(node)?;
        let q = self.tagged.row(row);
        Some(self.run_top_k(q, k, metric, Some(row as u32), true))
    }

    /// Top-k against an arbitrary query vector (`q.len() == dim`),
    /// optionally excluding one subset node (e.g. the query node on the
    /// shard that owns it — the router's scatter path). For cosine, `q`
    /// is normalised with the same canonical inverse-norm the cached row
    /// norms use, so scoring a copied-out row gives bitwise the same
    /// answer as querying by node.
    pub fn top_k_by_vector(
        &self,
        q: &[f64],
        k: usize,
        metric: Metric,
        exclude: Option<u32>,
    ) -> Vec<(u32, f64)> {
        let exclude_row = exclude.and_then(|node| self.row_of(node)).map(|r| r as u32);
        self.run_top_k(q, k, metric, exclude_row, false)
    }

    fn run_top_k(
        &self,
        q: &[f64],
        k: usize,
        metric: Metric,
        exclude_row: Option<u32>,
        force_scan: bool,
    ) -> Vec<(u32, f64)> {
        self.query
            .top_k_rows(&self.tagged, q, k, metric, exclude_row, force_scan)
            .into_iter()
            .map(|h| (self.sources[h.row as usize], h.score))
            .collect()
    }

    /// Cached per-row L2 norms (computed once at publish).
    pub fn norms(&self) -> &[f64] {
        self.query.norms()
    }

    /// Whether this epoch carries a tier-2 cluster index.
    pub fn has_cluster_index(&self) -> bool {
        self.query.has_clusters()
    }

    /// The canonical inverse norm used for cosine scoring — exposed so
    /// remote scorers normalise query vectors bitwise-identically.
    pub fn query_inv_norm(q: &[f64]) -> f64 {
        inv_norm_of(q)
    }
}

/// The double buffer: the currently published snapshot behind an `Arc`
/// swap, plus a lock-free epoch counter for cheap staleness probes.
pub struct EpochCell {
    current: RwLock<Arc<EpochSnapshot>>,
    epoch: AtomicU64,
}

impl EpochCell {
    pub fn new(initial: EpochSnapshot) -> Self {
        let epoch = initial.epoch();
        EpochCell {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// Grab the current snapshot. The read lock is held only for the
    /// `Arc` clone; the returned snapshot stays valid (and unchanged)
    /// for as long as the caller holds it.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        self.current.read().unwrap().clone()
    }

    /// Publish `next` as the new current snapshot (writer side).
    pub fn store(&self, next: EpochSnapshot) {
        let epoch = next.epoch();
        let next = Arc::new(next);
        *self.current.write().unwrap() = next;
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The published epoch, without touching the lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::Embedding;
    use tsvd_linalg::DenseMatrix;

    fn snapshot(epoch: u64, scale: f64) -> EpochSnapshot {
        let rows = 3usize;
        let dim = 2usize;
        let data: Vec<f64> = (0..rows * dim).map(|i| scale * (i as f64 + 1.0)).collect();
        let emb = Embedding {
            u: DenseMatrix::from_vec(rows, dim, data),
            sigma: vec![1.0; dim],
            dim,
        };
        let sources = Arc::new(vec![10u32, 20, 30]);
        let index: Arc<HashMap<u32, usize>> =
            Arc::new(sources.iter().enumerate().map(|(i, &v)| (v, i)).collect());
        EpochSnapshot::new(
            emb.tagged(epoch),
            sources,
            index,
            epoch * 5,
            PipelineTimings::default(),
        )
    }

    #[test]
    fn lookup_and_checksum() {
        let s = snapshot(3, 1.0);
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.events_applied(), 15);
        assert!(s.verify());
        assert!(s.get(10).is_some());
        assert!(s.get(11).is_none());
        assert_eq!(s.row_of(30), Some(2));
        let many = s.get_many(&[20, 99, 10]);
        assert!(many[0].is_some() && many[1].is_none() && many[2].is_some());
        assert_eq!(s.get(20).unwrap().len(), s.dim());
    }

    #[test]
    fn top_k_orders_by_dot_product() {
        let s = snapshot(1, 1.0);
        // Rows grow with index, so node 30 (largest row) is most similar
        // to everything under plain dot product.
        let top = s.top_k_similar(10, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 30);
        assert_eq!(top[1].0, 20);
        assert!(top[0].1 >= top[1].1);
        assert!(s.top_k_similar(99, 2).is_none());
        // k larger than the subset truncates gracefully.
        assert_eq!(s.top_k_similar(10, 100).unwrap().len(), 2);
    }

    #[test]
    fn cell_swap_is_atomic_per_reader() {
        let cell = EpochCell::new(snapshot(0, 1.0));
        assert_eq!(cell.epoch(), 0);
        let held = cell.load();
        cell.store(snapshot(1, 2.0));
        assert_eq!(cell.epoch(), 1);
        // The held snapshot still verifies and still reads epoch 0.
        assert_eq!(held.epoch(), 0);
        assert!(held.verify());
        assert_eq!(cell.load().epoch(), 1);
        assert!(cell.load().verify());
    }
}
