//! Durability and replication hooks on the flush path.
//!
//! Two pieces, both fed by the reactor at the same point — after a pending
//! window is coalesced, before/after it is recorded:
//!
//! * [`DurabilitySink`] — the write-ahead contract. The reactor calls
//!   [`append_window`](DurabilitySink::append_window) with the
//!   post-coalesce window *before* recording it on the graph or staging
//!   any tenant, so by the time an epoch is published its window is
//!   already durable (fsync'd by the sink). `tsvd-store`'s `WalStore` is
//!   the production implementation; the trait lives here so `tsvd-serve`
//!   never depends on the storage crate.
//! * [`WindowJournal`] — a bounded in-memory tail of recent windows,
//!   always on, shared between the reactor (writer) and the server handle
//!   (reader). It backs the `GetWindows` wire request that followers pull
//!   to replay the leader's exact flush windows. Bounded: followers that
//!   fall more than [`JOURNAL_KEEP`] windows behind get a typed
//!   [`JournalError::Compacted`] and must re-seed from a checkpoint.
//!
//! Windows here are always the **post-coalesce** global windows, applied
//! verbatim on replay (`TenantHost::apply_batch` with coalescing already
//! done) — which is what makes WAL recovery and follower replicas land on
//! bitwise-identical embeddings.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::sync::RwLock;

use tsvd_graph::EdgeEvent;
use tsvd_rt::json::Json;

/// How many recent windows the in-memory journal retains for followers.
pub const JOURNAL_KEEP: usize = 4096;

/// Where the reactor writes each flush window before publishing it.
///
/// Contract: when `append_window(epoch, …)` returns `Ok`, the window is
/// durable — a crash immediately after must recover it. The reactor treats
/// an `Err` as a failed durability guarantee and panics (a server that
/// silently outruns its WAL would publish epochs a recovery cannot
/// reproduce). `checkpoint` receives the full host serialisation and may
/// compact the log behind `epoch`.
pub trait DurabilitySink: Send {
    /// Make the post-coalesce window for `epoch` durable. Called before
    /// the window is recorded on the graph or staged on any tenant.
    fn append_window(&mut self, epoch: u64, events: &[EdgeEvent]) -> io::Result<()>;

    /// Persist a full host checkpoint at `epoch` (every window `≤ epoch`
    /// applied, none beyond) and optionally compact the log behind it.
    fn checkpoint(&mut self, epoch: u64, host: &Json) -> io::Result<()>;
}

/// Typed failure of a journal read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// The requested windows have been dropped from the bounded tail; the
    /// reader must re-seed from a checkpoint (or a fresh host snapshot).
    Compacted {
        /// The oldest epoch still retained.
        oldest: u64,
        /// The epoch right after the reader's `after_epoch` — what it
        /// needed and could not get.
        requested: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Compacted { oldest, requested } => write!(
                f,
                "window {requested} compacted out of the journal (oldest retained: {oldest}); \
                 re-seed from a checkpoint"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// One contiguous run of journal windows, as handed to a follower.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalWindows {
    /// The newest epoch present in the journal when the read was taken
    /// (`after_epoch` itself if the reader is already caught up).
    pub latest: u64,
    /// Epoch of `windows[0]`; equals `after_epoch + 1` when non-empty.
    pub first_epoch: u64,
    /// The windows for epochs `first_epoch ..` in order (empty when the
    /// reader is caught up).
    pub windows: Vec<Vec<EdgeEvent>>,
}

struct JournalInner {
    /// Epoch of `windows[0]` (also the next epoch to append when empty).
    first: u64,
    windows: VecDeque<Vec<EdgeEvent>>,
}

/// Bounded shared tail of recent flush windows (see module docs).
pub struct WindowJournal {
    inner: RwLock<JournalInner>,
    keep: usize,
}

impl WindowJournal {
    /// An empty journal whose next appended window is `start_epoch + 1`
    /// (i.e. the server starts at `start_epoch` recorded batches).
    pub(crate) fn new(start_epoch: u64, keep: usize) -> Self {
        assert!(keep >= 1, "journal must retain at least one window");
        WindowJournal {
            inner: RwLock::new(JournalInner {
                first: start_epoch + 1,
                windows: VecDeque::new(),
            }),
            keep,
        }
    }

    /// Append the window for `epoch`, evicting the oldest beyond the cap.
    /// Epochs must arrive contiguously — the reactor is the only writer.
    pub(crate) fn push(&self, epoch: u64, events: &[EdgeEvent]) {
        let mut inner = self.inner.write().expect("journal lock poisoned");
        let expected = inner.first + inner.windows.len() as u64;
        assert_eq!(epoch, expected, "journal epochs must be contiguous");
        inner.windows.push_back(events.to_vec());
        if inner.windows.len() > self.keep {
            inner.windows.pop_front();
            inner.first += 1;
        }
    }

    /// The newest epoch present (the start epoch if nothing was appended).
    pub fn latest(&self) -> u64 {
        let inner = self.inner.read().expect("journal lock poisoned");
        inner.first + inner.windows.len() as u64 - 1
    }

    /// Up to `max` windows for epochs `> after_epoch`, in order.
    pub fn windows_after(
        &self,
        after_epoch: u64,
        max: usize,
    ) -> Result<JournalWindows, JournalError> {
        let inner = self.inner.read().expect("journal lock poisoned");
        let latest = inner.first + inner.windows.len() as u64 - 1;
        let first_needed = after_epoch + 1;
        if first_needed < inner.first {
            return Err(JournalError::Compacted {
                oldest: inner.first,
                requested: first_needed,
            });
        }
        if first_needed > latest {
            // Caught up (or ahead, which a correct follower never is).
            return Ok(JournalWindows {
                latest,
                first_epoch: first_needed,
                windows: Vec::new(),
            });
        }
        let skip = (first_needed - inner.first) as usize;
        let windows: Vec<Vec<EdgeEvent>> =
            inner.windows.iter().skip(skip).take(max).cloned().collect();
        Ok(JournalWindows {
            latest,
            first_epoch: first_needed,
            windows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(u: u32) -> Vec<EdgeEvent> {
        vec![EdgeEvent::insert(u, u + 1)]
    }

    #[test]
    fn journal_serves_contiguous_tail_and_reports_latest() {
        let j = WindowJournal::new(0, 8);
        assert_eq!(j.latest(), 0);
        for e in 1..=5u64 {
            j.push(e, &w(e as u32));
        }
        assert_eq!(j.latest(), 5);
        let got = j.windows_after(2, 100).unwrap();
        assert_eq!(got.latest, 5);
        assert_eq!(got.first_epoch, 3);
        assert_eq!(got.windows, vec![w(3), w(4), w(5)]);
        // max caps the run but not the metadata.
        let got = j.windows_after(0, 2).unwrap();
        assert_eq!(got.first_epoch, 1);
        assert_eq!(got.windows.len(), 2);
        assert_eq!(got.latest, 5);
        // Caught up: empty run, same latest.
        let got = j.windows_after(5, 100).unwrap();
        assert!(got.windows.is_empty());
        assert_eq!(got.latest, 5);
    }

    #[test]
    fn journal_evicts_beyond_cap_and_types_the_gap() {
        let j = WindowJournal::new(0, 3);
        for e in 1..=5u64 {
            j.push(e, &w(e as u32));
        }
        // Epochs 1 and 2 evicted; 3..=5 retained.
        let err = j.windows_after(0, 100).unwrap_err();
        assert_eq!(
            err,
            JournalError::Compacted {
                oldest: 3,
                requested: 1,
            }
        );
        let got = j.windows_after(2, 100).unwrap();
        assert_eq!(got.first_epoch, 3);
        assert_eq!(got.windows.len(), 3);
    }

    #[test]
    fn journal_starts_at_nonzero_epoch() {
        // A server recovered at epoch 7 journals 8, 9, ...
        let j = WindowJournal::new(7, 4);
        assert_eq!(j.latest(), 7);
        j.push(8, &w(8));
        let got = j.windows_after(7, 10).unwrap();
        assert_eq!(got.first_epoch, 8);
        assert_eq!(got.windows, vec![w(8)]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn journal_rejects_epoch_gaps() {
        let j = WindowJournal::new(0, 4);
        j.push(2, &w(2));
    }
}
