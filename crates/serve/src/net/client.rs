//! The client library: typed calls over any [`Transport`], with request
//! pipelining, reply-timeout surfacing, reconnect-and-retry for idempotent
//! requests, and client-side freshness guards.
//!
//! # Freshness guards
//!
//! Every epoch-stamped reply passes through two checks before the caller
//! sees it:
//!
//! * **staleness** — epochs must be monotone over the client's lifetime
//!   (including across reconnects; the server's epoch counter never goes
//!   backwards). A regression means the client was silently switched to a
//!   different/older server and surfaces as an error.
//! * **torn reads** — two replies stamped with the *same* epoch must carry
//!   the *same* content checksum, and a [`Reply::Embedding`] body must
//!   reproduce its own checksum bit-for-bit
//!   ([`EmbeddingReply::verify_checksum`]).
//!
//! # Retry policy
//!
//! Only idempotent requests (`Ping`, `Flush`, `GetRows`, `GetEmbedding`,
//! `GetStats`, `GetWindows`, `TopK`) are retried after a transport failure. `SubmitEvents` is
//! **never** auto-retried: the failure may have struck after the server
//! applied the batch, and a blind resend would double-apply events. The
//! caller decides (e.g. by comparing `stats().events_submitted`).

use std::io::{self, Write};

use tsvd_graph::EdgeEvent;

use crate::query::Metric;
use crate::stats::StatsReply;

use super::transport::{Duplex, Transport};
use super::wire::{
    encode_frame, read_frame, write_frame, CheckpointReply, EmbeddingReply, Message, Reply,
    Request, RowsReply, WindowsReply,
};

/// Typed outcome of a journal pull ([`NetClient::pull_windows`]): either a
/// run of windows, or the machine-readable compaction condition — the
/// leader's bounded journal no longer holds what the puller needs, so the
/// puller must re-seed via [`NetClient::get_checkpoint`] and resume.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowsPull {
    /// A contiguous run of journal windows (possibly empty: caught up).
    Windows(WindowsReply),
    /// The leader compacted past the puller's epoch (`Reply::JournalGap`).
    Compacted {
        /// Oldest epoch the leader's journal still retains.
        oldest: u64,
        /// The epoch the puller needed and could not get.
        requested: u64,
    },
}

/// Client behaviour knobs (the reply-read timeout lives on the transport).
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Reopen the transport and retry idempotent requests on failure.
    pub reconnect: bool,
    /// Retry attempts per call after the initial try.
    pub max_retries: u32,
    /// Tenant every request from this client is pinned to (stamped into
    /// the frame header and verified against each reply's echo). `0` is
    /// the default tenant of a single-tenant server.
    pub tenant: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            reconnect: true,
            max_retries: 2,
            tenant: 0,
        }
    }
}

/// A connection to a [`NetFront`](super::NetFront) over some transport.
///
/// Methods take `&mut self`: a client is a single ordered request stream
/// (share work across threads by opening one client per thread — the
/// server multiplexes connections, not the client).
pub struct NetClient {
    transport: Box<dyn Transport>,
    cfg: ClientConfig,
    conn: Option<Duplex>,
    next_id: u64,
    reconnects: u64,
    last_epoch: u64,
    /// Content checksum observed at `last_epoch`, once one has been seen.
    last_checksum: Option<u64>,
}

impl NetClient {
    /// Open a connection immediately.
    pub fn connect(transport: impl Transport + 'static, cfg: ClientConfig) -> io::Result<Self> {
        let transport: Box<dyn Transport> = Box::new(transport);
        let conn = transport.open()?;
        Ok(NetClient {
            transport,
            cfg,
            conn: Some(conn),
            next_id: 1, // id 0 is reserved for connection-level errors
            reconnects: 0,
            last_epoch: 0,
            last_checksum: None,
        })
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(Request::Ping, true)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submit an event batch; returns the number of accepted events.
    /// Never auto-retried (see the module docs on double-apply).
    pub fn submit_events(&mut self, events: Vec<EdgeEvent>) -> io::Result<u64> {
        match self.call(Request::SubmitEvents(events), false)? {
            Reply::SubmitAck { accepted } => Ok(accepted),
            other => Err(unexpected(&other)),
        }
    }

    /// Flush everything pending server-side; returns the epoch then served.
    pub fn flush(&mut self) -> io::Result<u64> {
        match self.call(Request::Flush, true)? {
            Reply::FlushAck { epoch } => Ok(epoch),
            other => Err(unexpected(&other)),
        }
    }

    /// Embedding rows for `nodes` from the served snapshot.
    pub fn get_rows(&mut self, nodes: &[u32]) -> io::Result<RowsReply> {
        match self.call(Request::GetRows(nodes.to_vec()), true)? {
            Reply::Rows(rows) => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// The `k` subset nodes most similar to `node` under `metric` at the
    /// served snapshot. `Ok(None)` when `node` is outside the subset.
    /// Idempotent (a pure read), so safe to retry; the reply's epoch and
    /// checksum pass the same freshness guards as [`get_rows`]
    /// (stale/torn replies surface as errors).
    ///
    /// [`get_rows`]: Self::get_rows
    pub fn top_k(
        &mut self,
        node: u32,
        k: u32,
        metric: Metric,
    ) -> io::Result<Option<Vec<(u32, f64)>>> {
        let req = Request::TopK {
            node,
            k,
            metric,
            query: None,
        };
        match self.call(req, true)? {
            Reply::TopKReply(t) => Ok(t.found.then_some(t.neighbors)),
            other => Err(unexpected(&other)),
        }
    }

    /// The full served embedding (checksum-verified end to end).
    pub fn get_embedding(&mut self) -> io::Result<EmbeddingReply> {
        match self.call(Request::GetEmbedding, true)? {
            Reply::Embedding(e) => Ok(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Point-in-time statistics: this client's tenant plus the host rollup.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.call(Request::GetStats, true)? {
            Reply::Stats(s) => Ok(*s),
            other => Err(unexpected(&other)),
        }
    }

    /// Journal windows for epochs `> after_epoch`, up to `max` per reply —
    /// the follower catch-up pull ([`Follower::catch_up`] loops this).
    /// Idempotent, so safe to retry. A leader that compacted past
    /// `after_epoch` answers with an error reply (surfaced as
    /// [`io::ErrorKind::InvalidData`]): re-seed from a checkpoint.
    ///
    /// [`Follower::catch_up`]: crate::Follower::catch_up
    pub fn get_windows(&mut self, after_epoch: u64, max: u32) -> io::Result<WindowsReply> {
        match self.pull_windows(after_epoch, max)? {
            WindowsPull::Windows(w) => Ok(w),
            WindowsPull::Compacted { oldest, requested } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "window {requested} compacted out of the leader's journal \
                     (oldest retained: {oldest}); re-seed from a checkpoint"
                ),
            )),
        }
    }

    /// Like [`get_windows`](Self::get_windows), but surfaces the leader's
    /// compaction condition as the typed [`WindowsPull::Compacted`] instead
    /// of an opaque error — the caller can re-seed
    /// ([`NetClient::get_checkpoint`]) and retry instead of giving up.
    pub fn pull_windows(&mut self, after_epoch: u64, max: u32) -> io::Result<WindowsPull> {
        match self.call(Request::GetWindows { after_epoch, max }, true)? {
            Reply::Windows(w) => Ok(WindowsPull::Windows(w)),
            Reply::JournalGap { oldest, requested } => {
                Ok(WindowsPull::Compacted { oldest, requested })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// A full host checkpoint at a consistent epoch — the re-seed payload
    /// for a follower that outlived the leader's bounded journal.
    /// Idempotent (the leader drains in-flight windows and serialises; no
    /// state changes), so safe to retry.
    pub fn get_checkpoint(&mut self) -> io::Result<CheckpointReply> {
        match self.call(Request::GetCheckpoint, true)? {
            Reply::Checkpoint(ck) => Ok(*ck),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to flush and stop its network front. Not retried.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.call(Request::Shutdown, false)? {
            Reply::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Pipeline `requests` over the connection: all frames are written
    /// back-to-back before any reply is read, then replies are collected
    /// in order. One round-trip latency for the whole batch. Not retried
    /// (a failure mid-batch leaves an unknown prefix applied).
    pub fn pipeline(&mut self, requests: &[Request]) -> io::Result<Vec<Reply>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let first = self.next_id;
        self.next_id += requests.len() as u64;
        let raw = {
            let tenant = self.cfg.tenant;
            let conn = self.conn()?;
            let mut buf = Vec::new();
            for (i, req) in requests.iter().enumerate() {
                encode_frame(
                    first + i as u64,
                    tenant,
                    &Message::Request(req.clone()),
                    &mut buf,
                );
            }
            let io = (|| {
                conn.writer.write_all(&buf)?;
                conn.writer.flush()?;
                let mut raw = Vec::with_capacity(requests.len());
                for i in 0..requests.len() {
                    let frame = read_frame(&mut conn.reader)?
                        .ok_or_else(|| closed("server closed mid-pipeline"))?;
                    let want = first + i as u64;
                    if frame.request_id != want {
                        return Err(protocol(format!(
                            "pipelined reply id {} (expected {want})",
                            frame.request_id
                        )));
                    }
                    if frame.tenant != tenant {
                        return Err(protocol(format!(
                            "pipelined reply tenant {} (expected {tenant})",
                            frame.tenant
                        )));
                    }
                    match frame.message {
                        Message::Reply(reply) => raw.push(reply),
                        Message::Request(_) => {
                            return Err(protocol("request frame in reply direction".into()))
                        }
                    }
                }
                Ok(raw)
            })();
            match io {
                Ok(raw) => raw,
                Err(e) => {
                    self.disconnect();
                    return Err(e);
                }
            }
        };
        raw.into_iter().map(|r| self.observe(r)).collect()
    }

    /// Split-phase send half: write one request frame and return its id
    /// without reading the reply. The router's scatter-gather uses this to
    /// put one request in flight on *every* shard connection before
    /// reading any reply — true cross-shard fan-out, one round-trip for
    /// the whole scatter. Pair each dispatch with exactly one
    /// [`collect`](Self::collect) on the same client, in dispatch order.
    /// Not auto-retried (the caller owns the in-flight set).
    pub fn dispatch(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let tenant = self.cfg.tenant;
        let conn = self.conn()?;
        match write_frame(&mut conn.writer, id, tenant, &Message::Request(req.clone())) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Split-phase receive half: read the reply for a
    /// [`dispatch`](Self::dispatch)ed request. `id` must be the value that
    /// dispatch returned; replies arrive in dispatch order on one
    /// connection. Applies the same freshness guards as the one-shot
    /// calls. Any failure drops the connection (the in-flight set is lost;
    /// the next call reconnects).
    pub fn collect(&mut self, id: u64) -> io::Result<Reply> {
        let tenant = self.cfg.tenant;
        let io = (|| {
            let conn = self
                .conn
                .as_mut()
                .ok_or_else(|| closed("no connection holds the in-flight request"))?;
            let frame =
                read_frame(&mut conn.reader)?.ok_or_else(|| closed("server closed connection"))?;
            if frame.request_id != id && frame.request_id != 0 {
                return Err(protocol(format!(
                    "reply id {} does not match dispatched id {id}",
                    frame.request_id
                )));
            }
            if frame.request_id != 0 && frame.tenant != tenant {
                return Err(protocol(format!(
                    "reply tenant {} does not match pinned tenant {tenant}",
                    frame.tenant
                )));
            }
            match frame.message {
                Message::Reply(reply) => Ok(reply),
                Message::Request(_) => Err(protocol("request frame in reply direction".into())),
            }
        })();
        match io {
            Ok(reply) => self.observe(reply),
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Drop the current connection; the next call reopens the transport.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// How many times the transport was reopened after the initial connect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Highest epoch observed in any reply so far.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    // ------------------------------------------------------------ internals

    fn conn(&mut self) -> io::Result<&mut Duplex> {
        if self.conn.is_none() {
            self.conn = Some(self.transport.open()?);
            self.reconnects += 1;
        }
        Ok(self.conn.as_mut().expect("connection just opened"))
    }

    /// One request → one reply on the current connection.
    fn exchange(&mut self, req: &Request) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let tenant = self.cfg.tenant;
        let conn = self.conn()?;
        write_frame(&mut conn.writer, id, tenant, &Message::Request(req.clone()))?;
        let frame =
            read_frame(&mut conn.reader)?.ok_or_else(|| closed("server closed connection"))?;
        if frame.request_id != id && frame.request_id != 0 {
            return Err(protocol(format!(
                "reply id {} does not match request id {id}",
                frame.request_id
            )));
        }
        // Connection-level errors (id 0) are not tenant-addressed; every
        // real reply must echo the tenant the request was pinned to.
        if frame.request_id != 0 && frame.tenant != tenant {
            return Err(protocol(format!(
                "reply tenant {} does not match pinned tenant {tenant}",
                frame.tenant
            )));
        }
        match frame.message {
            Message::Reply(reply) => Ok(reply),
            Message::Request(_) => Err(protocol("request frame in reply direction".into())),
        }
    }

    /// `exchange` plus freshness guards plus (for `retryable` requests)
    /// reconnect-and-retry on transport-level failures.
    fn call(&mut self, req: Request, retryable: bool) -> io::Result<Reply> {
        let mut attempts = 0u32;
        loop {
            match self.exchange(&req) {
                Ok(reply) => return self.observe(reply),
                Err(e) => {
                    self.disconnect();
                    let transient = matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof
                            | io::ErrorKind::BrokenPipe
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionRefused
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::WouldBlock
                    );
                    if !(retryable && self.cfg.reconnect && transient)
                        || attempts >= self.cfg.max_retries
                    {
                        return Err(e);
                    }
                    attempts += 1;
                }
            }
        }
    }

    /// Apply the freshness guards to a reply before handing it out.
    fn observe(&mut self, reply: Reply) -> io::Result<Reply> {
        match &reply {
            Reply::Rows(r) => self.check_epoch(r.epoch, Some(r.checksum_bits))?,
            Reply::TopKReply(t) => self.check_epoch(t.epoch, Some(t.checksum_bits))?,
            Reply::Embedding(e) => {
                if !e.verify_checksum() {
                    return Err(protocol(format!(
                        "torn read: embedding at epoch {} does not reproduce its checksum",
                        e.epoch
                    )));
                }
                self.check_epoch(e.epoch, Some(e.checksum_bits))?;
            }
            Reply::FlushAck { epoch } => self.check_epoch(*epoch, None)?,
            Reply::Stats(s) => self.check_epoch(s.tenant.epoch, None)?,
            Reply::Error(msg) => {
                return Err(io::Error::other(format!("server error: {msg}")));
            }
            // Journal/checkpoint epochs are global window counts, not this
            // tenant's read epochs — no freshness guard.
            Reply::Pong
            | Reply::SubmitAck { .. }
            | Reply::ShutdownAck
            | Reply::Windows(_)
            | Reply::Checkpoint(_)
            | Reply::JournalGap { .. } => {}
        }
        Ok(reply)
    }

    fn check_epoch(&mut self, epoch: u64, checksum_bits: Option<u64>) -> io::Result<()> {
        if epoch < self.last_epoch {
            return Err(protocol(format!(
                "stale reply: epoch {epoch} after already observing {}",
                self.last_epoch
            )));
        }
        if epoch > self.last_epoch {
            self.last_epoch = epoch;
            self.last_checksum = checksum_bits;
            return Ok(());
        }
        match (self.last_checksum, checksum_bits) {
            (Some(prev), Some(now)) if prev != now => Err(protocol(format!(
                "torn read: epoch {epoch} served two different checksums"
            ))),
            (None, Some(now)) => {
                self.last_checksum = Some(now);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    protocol(format!("unexpected reply variant: {reply:?}"))
}

fn protocol(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn closed(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, msg)
}
