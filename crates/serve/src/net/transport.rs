//! Byte transports under the wire protocol.
//!
//! A [`Transport`] turns "where the server is" into a connected [`Duplex`]
//! byte stream. Two implementations ship:
//!
//! * [`TcpTransport`] — a real `std::net::TcpStream` (nodelay, optional
//!   read timeout), for production traffic.
//! * the in-memory [`pipe`] — a bounded, blocking byte queue used by the
//!   loopback transport (`NetFront::loopback`) so the entire client ↔
//!   server path runs deterministically inside one process, with the same
//!   backpressure and timeout semantics as a socket. This is what lets the
//!   equivalence tests prove network replies bitwise identical to
//!   in-process calls without touching the host network stack.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A connected bidirectional byte stream plus a peer label for diagnostics.
pub struct Duplex {
    /// Incoming bytes (replies on the client side, requests on the server).
    pub reader: Box<dyn Read + Send>,
    /// Outgoing bytes.
    pub writer: Box<dyn Write + Send>,
    /// Human-readable peer description (address or "loopback").
    pub peer: String,
}

/// A way to open connections to one server.
///
/// `open` is called for the initial connection and again on every
/// reconnect, so implementations must be reusable.
pub trait Transport: Send + Sync {
    /// Open a fresh connection.
    fn open(&self) -> io::Result<Duplex>;
}

/// TCP transport: connects to `addr`, enables `TCP_NODELAY` (the protocol
/// is request/reply; Nagle would serialise pipelined round trips), and
/// applies `read_timeout` to reply reads so a dead server surfaces as
/// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] instead of a
/// hang.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    /// Server address, e.g. `"127.0.0.1:7070"`.
    pub addr: String,
    /// Reply-read timeout; `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Whether to set `TCP_NODELAY` (default true).
    pub nodelay: bool,
}

impl TcpTransport {
    /// A transport for `addr` with a 5-second read timeout and nodelay on.
    pub fn new(addr: impl Into<String>) -> TcpTransport {
        TcpTransport {
            addr: addr.into(),
            read_timeout: Some(Duration::from_secs(5)),
            nodelay: true,
        }
    }
}

impl Transport for TcpTransport {
    fn open(&self) -> io::Result<Duplex> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(self.nodelay)?;
        stream.set_read_timeout(self.read_timeout)?;
        let reader = stream.try_clone()?;
        Ok(Duplex {
            reader: Box::new(reader),
            writer: Box::new(stream),
            peer: self.addr.clone(),
        })
    }
}

// ------------------------------------------------------------------ pipe

/// Shared state of one in-memory pipe direction.
struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

struct PipeShared {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

/// Read half of an in-memory [`pipe`].
pub struct PipeReader {
    shared: Arc<PipeShared>,
    timeout: Option<Duration>,
}

/// Write half of an in-memory [`pipe`].
pub struct PipeWriter {
    shared: Arc<PipeShared>,
}

/// A bounded in-process byte queue with socket-like blocking semantics:
/// writes block while the buffer holds `capacity` bytes (backpressure),
/// reads block until bytes arrive, dropping the writer yields clean EOF,
/// and dropping the reader turns writes into `BrokenPipe`. `read_timeout`
/// makes blocked reads fail with [`io::ErrorKind::TimedOut`] after the
/// given wait, mirroring `TcpStream::set_read_timeout`.
pub fn pipe(capacity: usize, read_timeout: Option<Duration>) -> (PipeWriter, PipeReader) {
    assert!(capacity > 0, "pipe capacity must be positive");
    let shared = Arc::new(PipeShared {
        state: Mutex::new(PipeState {
            buf: VecDeque::new(),
            write_closed: false,
            read_closed: false,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
    });
    (
        PipeWriter {
            shared: shared.clone(),
        },
        PipeReader {
            shared,
            timeout: read_timeout,
        },
    )
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = state.buf.pop_front().unwrap();
                }
                self.shared.writable.notify_all();
                return Ok(n);
            }
            if state.write_closed {
                return Ok(0); // clean EOF
            }
            state = match deadline {
                None => self.shared.readable.wait(state).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "pipe read timeout"));
                    }
                    self.shared.readable.wait_timeout(state, d - now).unwrap().0
                }
            };
        }
    }
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.read_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe reader dropped",
                ));
            }
            let free = self.shared.capacity.saturating_sub(state.buf.len());
            if free > 0 {
                let n = data.len().min(free);
                state.buf.extend(&data[..n]);
                self.shared.readable.notify_all();
                return Ok(n); // partial write; write_all loops
            }
            state = self.shared.writable.wait(state).unwrap();
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.read_closed = true;
        self.shared.writable.notify_all();
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.write_closed = true;
        self.shared.readable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn pipe_round_trips_bytes_in_order() {
        let (mut w, mut r) = pipe(8, None);
        let handle = std::thread::spawn(move || {
            let payload: Vec<u8> = (0..100u8).collect();
            w.write_all(&payload).unwrap(); // > capacity: must block + drain
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 7];
        loop {
            match r.read(&mut buf).unwrap() {
                0 => break,
                n => got.extend_from_slice(&buf[..n]),
            }
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100u8).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_writer_is_clean_eof_and_dropped_reader_breaks_pipe() {
        let (w, mut r) = pipe(4, None);
        drop(w);
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF after writer drop");

        let (mut w, r) = pipe(4, None);
        drop(r);
        let err = w.write_all(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn read_timeout_fires_when_no_data_arrives() {
        let (_w, mut r) = pipe(4, Some(Duration::from_millis(20)));
        let mut buf = [0u8; 1];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
