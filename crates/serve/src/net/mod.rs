//! The network front: the serving API over a hermetic binary wire
//! protocol (`std::net` only — no external deps, per the workspace
//! hermeticity gate).
//!
//! * [`wire`] — frame codec: length-prefixed, versioned, FNV-checksummed
//!   frames; `f64`s travel as raw bits so replies are bitwise identical to
//!   in-process values. See the module docs for the byte-level spec.
//! * [`transport`] — the [`Transport`] abstraction: [`TcpTransport`] for
//!   real sockets, plus a bounded in-memory pipe behind
//!   [`LoopbackTransport`] for deterministic in-process testing.
//! * [`frontend`] — [`NetFront`]: accept loop + per-connection bounded
//!   mailboxes dispatching onto the running
//!   [`EmbeddingServer`](crate::EmbeddingServer).
//! * [`client`] — [`NetClient`]: typed calls, pipelining, reconnect, and
//!   client-side staleness / torn-read guards. Each client pins one tenant
//!   ([`ClientConfig::tenant`], default `0`): the id rides the frame
//!   header, the server routes per tenant, and replies must echo it.
//!
//! ```no_run
//! use tsvd_serve::net::{ClientConfig, NetClient, NetFront, TcpTransport};
//! # use tsvd_serve::*;
//! # let engine: ShardedEngine = unimplemented!();
//! let front = NetFront::start(EmbeddingServer::start(engine, ServeConfig::default()));
//! let addr = front.listen("127.0.0.1:0").unwrap();
//! let mut client =
//!     NetClient::connect(TcpTransport::new(addr.to_string()), ClientConfig::default()).unwrap();
//! client.submit_events(vec![tsvd_graph::EdgeEvent::insert(3, 17)]).unwrap();
//! let epoch = client.flush().unwrap();
//! let rows = client.get_rows(&[3, 17]).unwrap();
//! assert_eq!(rows.epoch, epoch);
//! ```

pub mod client;
pub mod frontend;
pub mod transport;
pub mod wire;

pub use client::{ClientConfig, NetClient, WindowsPull};
pub use frontend::{LoopbackTransport, NetFront};
pub use transport::{Duplex, TcpTransport, Transport};
pub use wire::{
    CheckpointReply, EmbeddingReply, Frame, Message, Reply, Request, RowsReply, WindowsReply,
    WireError,
};
