//! The network front: accepts connections (TCP or in-process loopback)
//! and serves the wire protocol against a running [`EmbeddingServer`].
//!
//! Every connection gets two threads wired through an
//! [`rt::exec`](tsvd_rt::exec) reactor:
//!
//! ```text
//!  socket ──▶ reader thread ──▶ bounded Mailbox<ConnMsg> ──▶ dispatcher
//!             (decode frames)    (cap 256: backpressure)     (EventLoop:
//!                                                             execute +
//!  socket ◀───────────────────────────────────────────────── write reply)
//! ```
//!
//! The bounded mailbox is the backpressure boundary: when a client floods
//! requests faster than flushes complete, the mailbox fills, the reader
//! thread blocks on `send`, the socket's receive buffer fills, and the
//! client's own writes stall — no unbounded queue anywhere. Requests on
//! one connection are executed strictly in arrival order, so replies need
//! no reordering metadata beyond the echoed request id.
//!
//! Reads (both the server's and the loopback pipes') carry a short timeout
//! so every blocking loop observes the stop flag promptly; a frame in
//! flight is never torn by the timeout (see
//! [`wire::read_frame_until`](super::wire::read_frame_until)).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use tsvd_rt::exec::{Event, EventLoop, Flow};

use crate::engine::ShardedEngine;
use crate::journal::JournalError;
use crate::server::{EmbeddingReader, ServerHandle, SubmitError};
use crate::tenant::{TenantHost, TenantId};

use super::transport::{pipe, Duplex, Transport};
use super::wire::{
    read_frame_until, write_frame, CheckpointReply, EmbeddingReply, Message, Reply, Request,
    RowsReply, TopKReply, WindowsReply,
};

/// Poll interval for stop-flag checks in blocking reads and accept loops.
const POLL: Duration = Duration::from_millis(25);

/// Per-connection request queue depth (the backpressure bound).
const CONN_MAILBOX_CAP: usize = 256;

/// Byte capacity of each loopback pipe direction (socket-buffer analogue).
const LOOPBACK_PIPE_CAP: usize = 64 * 1024;

/// What the connection reader thread hands to the dispatcher.
enum ConnMsg {
    /// A decoded request: id, tenant (from the frame header), request.
    Request(u64, u32, Request),
    /// The byte stream is unusable (corrupt frame / protocol violation):
    /// report to the peer, then close.
    Corrupt(String),
}

/// State shared by the front, its listeners, and every connection.
struct FrontShared {
    /// The server handle; taken (→ `None`) by [`NetFront::shutdown`].
    handle: RwLock<Option<ServerHandle>>,
    /// Wait-free read path, one reader per tenant, shared by all
    /// connections. Requests name their tenant in the frame header.
    readers: HashMap<TenantId, EmbeddingReader>,
    /// Set once; all listeners and connections wind down when they see it.
    stop: AtomicBool,
    /// Connection threads to join on shutdown.
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Monotone connection counter (thread labels / diagnostics).
    accepted: AtomicU64,
}

/// The network front over a running [`EmbeddingServer`](crate::EmbeddingServer).
///
/// ```no_run
/// # use tsvd_serve::*;
/// # let engine: ShardedEngine = unimplemented!();
/// let front = NetFront::start(EmbeddingServer::start(engine, ServeConfig::default()));
/// let addr = front.listen("127.0.0.1:0").unwrap(); // real TCP
/// let lb = front.loopback();                        // deterministic in-process
/// # let _ = (addr, lb);
/// let engine = front.shutdown(); // stop listeners + connections, reclaim engine
/// ```
pub struct NetFront {
    shared: Arc<FrontShared>,
    listeners: Mutex<Vec<JoinHandle<()>>>,
}

impl NetFront {
    /// Wrap a running server. No listener is opened yet — call
    /// [`NetFront::listen`] and/or [`NetFront::loopback`].
    pub fn start(handle: ServerHandle) -> NetFront {
        let readers = handle
            .tenant_ids()
            .into_iter()
            .map(|id| (id, handle.reader_for(id).expect("listed tenant has a cell")))
            .collect();
        NetFront {
            shared: Arc::new(FrontShared {
                handle: RwLock::new(Some(handle)),
                readers,
                stop: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                accepted: AtomicU64::new(0),
            }),
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// A **read-only** front over externally-owned readers — no server
    /// handle behind it. This is how a follower process exposes its
    /// replicated state on the network: the follower keeps applying
    /// windows through its own cells, and every `GetRows` served here
    /// sees the follower's latest published epoch. Write-path requests
    /// (`SubmitEvents`, `Flush`, `GetStats`, `GetWindows`,
    /// `GetCheckpoint`) answer `Reply::Error` as if the server were shut
    /// down; `Shutdown` stops the front. Reclaim nothing — tear down with
    /// [`NetFront::shutdown_readers`].
    pub fn start_readers(readers: Vec<(TenantId, EmbeddingReader)>) -> NetFront {
        NetFront {
            shared: Arc::new(FrontShared {
                handle: RwLock::new(None),
                readers: readers.into_iter().collect(),
                stop: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                accepted: AtomicU64::new(0),
            }),
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// Bind a TCP listener on `addr` (use port 0 for an OS-assigned port)
    /// and start accepting connections. Returns the bound address. May be
    /// called more than once to listen on several addresses.
    pub fn listen(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = self.shared.clone();
        let jh = std::thread::Builder::new()
            .name("tsvd-net-accept".into())
            .spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            if stream.set_nodelay(true).is_err()
                                || stream.set_read_timeout(Some(POLL)).is_err()
                            {
                                continue;
                            }
                            let reader = match stream.try_clone() {
                                Ok(r) => r,
                                Err(_) => continue,
                            };
                            spawn_connection(
                                shared.clone(),
                                Duplex {
                                    reader: Box::new(reader),
                                    writer: Box::new(stream),
                                    peer: peer.to_string(),
                                },
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
            .expect("spawn tsvd-net-accept");
        self.listeners.lock().unwrap().push(jh);
        Ok(local)
    }

    /// A deterministic in-process transport: each
    /// [`Transport::open`] builds a bounded pipe pair and serves it with
    /// the exact same connection code path as TCP. Used by the equivalence
    /// tests to prove wire replies bitwise identical to in-process calls.
    pub fn loopback(&self) -> LoopbackTransport {
        LoopbackTransport {
            shared: self.shared.clone(),
            read_timeout: Some(Duration::from_secs(10)),
        }
    }

    /// Whether the front has been told to stop (e.g. a client sent
    /// [`Request::Shutdown`]). The engine is still owned by the front
    /// until [`NetFront::shutdown`] reclaims it.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Number of connections accepted over the front's lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Block (polling) until the front is stopped or `timeout` elapses.
    pub fn wait_stopped(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while !self.is_stopped() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stop listeners and connections, shut the server down, and take the
    /// engine back (mirrors [`ServerHandle::shutdown`]). Single-tenant
    /// fronts only; multi-tenant fronts use
    /// [`shutdown_host`](Self::shutdown_host).
    pub fn shutdown(self) -> ShardedEngine {
        self.shutdown_host().into_single_engine()
    }

    /// Stop listeners and connections, shut the server down, and take the
    /// whole tenant host back (mirrors [`ServerHandle::shutdown_host`]).
    pub fn shutdown_host(self) -> TenantHost {
        self.stop_network();
        let handle = self
            .shared
            .handle
            .write()
            .unwrap()
            .take()
            .expect("NetFront::shutdown called twice");
        handle.shutdown_host()
    }

    /// Stop a readers-only front ([`NetFront::start_readers`]): listeners
    /// and connections are joined; there is no server or host to reclaim.
    /// If this front *does* own a server handle it is shut down and its
    /// host dropped.
    pub fn shutdown_readers(self) {
        self.stop_network();
        if let Some(handle) = self.shared.handle.write().unwrap().take() {
            drop(handle.shutdown_host());
        }
    }

    /// Set the stop flag and join every listener and connection thread.
    fn stop_network(&self) {
        self.shared.stop.store(true, Ordering::Release);
        for jh in self.listeners.lock().unwrap().drain(..) {
            let _ = jh.join();
        }
        let conns: Vec<_> = self.shared.conns.lock().unwrap().drain(..).collect();
        for jh in conns {
            let _ = jh.join();
        }
    }
}

/// In-process [`Transport`] built by [`NetFront::loopback`].
#[derive(Clone)]
pub struct LoopbackTransport {
    shared: Arc<FrontShared>,
    read_timeout: Option<Duration>,
}

impl LoopbackTransport {
    /// Override the client-side reply-read timeout (default 10 s).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> LoopbackTransport {
        self.read_timeout = timeout;
        self
    }
}

impl Transport for LoopbackTransport {
    fn open(&self) -> io::Result<Duplex> {
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "network front is shut down",
            ));
        }
        // client → server direction: server reads with the poll timeout so
        // its reader thread observes the stop flag like a TCP socket would.
        let (c2s_w, c2s_r) = pipe(LOOPBACK_PIPE_CAP, Some(POLL));
        // server → client direction: client reads with its own timeout.
        let (s2c_w, s2c_r) = pipe(LOOPBACK_PIPE_CAP, self.read_timeout);
        spawn_connection(
            self.shared.clone(),
            Duplex {
                reader: Box::new(c2s_r),
                writer: Box::new(s2c_w),
                peer: "loopback-peer".into(),
            },
        );
        Ok(Duplex {
            reader: Box::new(s2c_r),
            writer: Box::new(c2s_w),
            peer: "loopback".into(),
        })
    }
}

/// Spawn the two connection threads (reader + dispatcher) for one duplex.
fn spawn_connection(shared: Arc<FrontShared>, duplex: Duplex) {
    let n = shared.accepted.fetch_add(1, Ordering::Relaxed) + 1;
    let registry = shared.clone();
    let jh = std::thread::Builder::new()
        .name(format!("tsvd-net-conn-{n}"))
        .spawn(move || serve_connection(shared, duplex))
        .expect("spawn tsvd-net-conn");
    registry.conns.lock().unwrap().push(jh);
}

/// Serve one connection to completion: decode requests on a reader
/// thread, execute them in order on this thread's event loop, write each
/// reply back. Returns when the peer disconnects, a protocol violation
/// occurs, a write fails, or the front stops.
fn serve_connection(shared: Arc<FrontShared>, duplex: Duplex) {
    let Duplex {
        reader: mut r,
        writer: mut w,
        peer: _peer,
    } = duplex;
    let conn_stop = Arc::new(AtomicBool::new(false));
    let (mailbox, ev) = EventLoop::<ConnMsg>::bounded(CONN_MAILBOX_CAP);

    let reader_stop = conn_stop.clone();
    let reader_shared = shared.clone();
    let reader_jh = std::thread::Builder::new()
        .name("tsvd-net-read".into())
        .spawn(move || {
            let should_stop = || {
                reader_stop.load(Ordering::Acquire) || reader_shared.stop.load(Ordering::Acquire)
            };
            loop {
                match read_frame_until(&mut r, should_stop) {
                    Ok(Some(frame)) => match frame.message {
                        Message::Request(req) => {
                            // Bounded send: blocks when the dispatcher is
                            // behind — the backpressure path.
                            if !mailbox.send(ConnMsg::Request(frame.request_id, frame.tenant, req))
                            {
                                break;
                            }
                        }
                        Message::Reply(_) => {
                            let _ = mailbox.send(ConnMsg::Corrupt(
                                "reply-direction frame on the request path".into(),
                            ));
                            break;
                        }
                    },
                    Ok(None) => break, // clean EOF or stop
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        let _ = mailbox.send(ConnMsg::Corrupt(e.to_string()));
                        break;
                    }
                    Err(_) => break, // connection-level failure
                }
            }
            // Dropping the mailbox lets the dispatcher drain and exit.
        })
        .expect("spawn tsvd-net-read");

    ev.run(|_timers, event| match event {
        Event::Message(ConnMsg::Request(id, tenant, req)) => {
            let (reply, close) = execute(&shared, tenant, req);
            if write_frame(&mut w, id, tenant, &Message::Reply(reply)).is_err() || close {
                conn_stop.store(true, Ordering::Release);
                Flow::Stop
            } else {
                Flow::Continue
            }
        }
        Event::Message(ConnMsg::Corrupt(what)) => {
            // Best-effort connection-level error (request id 0), then close.
            let _ = write_frame(&mut w, 0, 0, &Message::Reply(Reply::Error(what)));
            conn_stop.store(true, Ordering::Release);
            Flow::Stop
        }
        Event::Timer(_) => Flow::Continue,
    });
    conn_stop.store(true, Ordering::Release);
    drop(w); // EOF towards the client
    let _ = reader_jh.join();
}

/// Execute one request against the tenant named in its frame header.
/// Returns the reply and whether the connection (and for
/// [`Request::Shutdown`], the whole front) should stop afterwards.
///
/// An unknown tenant or an exceeded quota is a *request*-level fault: the
/// reply is [`Reply::Error`] but the connection stays open (the client may
/// be multiplexing tenants or waiting out backpressure).
fn execute(shared: &FrontShared, tenant: u32, req: Request) -> (Reply, bool) {
    match req {
        Request::Ping => (Reply::Pong, false),
        Request::SubmitEvents(events) => {
            let accepted = events.len() as u64;
            match &*shared.handle.read().unwrap() {
                Some(h) => match h.submit_batch_to(tenant, events) {
                    Ok(()) => (Reply::SubmitAck { accepted }, false),
                    Err(e @ SubmitError::Closed) => (Reply::Error(e.to_string()), true),
                    Err(e) => (Reply::Error(e.to_string()), false),
                },
                None => (Reply::Error("server is shut down".into()), true),
            }
        }
        Request::Flush => match &*shared.handle.read().unwrap() {
            Some(h) => (
                Reply::FlushAck {
                    epoch: h.flush_sync(),
                },
                false,
            ),
            None => (Reply::Error("server is shut down".into()), true),
        },
        Request::GetRows(nodes) => {
            let Some(reader) = shared.readers.get(&tenant) else {
                return (Reply::Error(format!("unknown tenant {tenant}")), false);
            };
            let snap = reader.snapshot();
            let rows = nodes
                .iter()
                .map(|&n| snap.get(n).map(|r| r.to_vec()))
                .collect();
            (
                Reply::Rows(RowsReply {
                    epoch: snap.epoch(),
                    checksum_bits: snap.checksum().to_bits(),
                    dim: snap.dim() as u32,
                    rows,
                }),
                false,
            )
        }
        Request::TopK {
            node,
            k,
            metric,
            query,
        } => {
            // Readers-only path (no server handle), so follower fronts
            // serve top-k too — same as GetRows.
            let Some(reader) = shared.readers.get(&tenant) else {
                return (Reply::Error(format!("unknown tenant {tenant}")), false);
            };
            let snap = reader.snapshot();
            let (found, neighbors) = match query {
                Some(q) => {
                    if q.len() != snap.dim() {
                        return (
                            Reply::Error(format!(
                                "query dim {} does not match embedding dim {}",
                                q.len(),
                                snap.dim()
                            )),
                            false,
                        );
                    }
                    (
                        true,
                        snap.top_k_by_vector(&q, k as usize, metric, Some(node)),
                    )
                }
                None => match snap.top_k(node, k as usize, metric) {
                    Some(n) => (true, n),
                    None => (false, Vec::new()),
                },
            };
            (
                Reply::TopKReply(TopKReply {
                    epoch: snap.epoch(),
                    checksum_bits: snap.checksum().to_bits(),
                    found,
                    neighbors,
                }),
                false,
            )
        }
        Request::GetEmbedding => {
            let Some(reader) = shared.readers.get(&tenant) else {
                return (Reply::Error(format!("unknown tenant {tenant}")), false);
            };
            let snap = reader.snapshot();
            let left = snap.tagged().left();
            let mut data = Vec::with_capacity(left.rows() * snap.dim());
            for r in 0..left.rows() {
                data.extend_from_slice(left.row(r));
            }
            (
                Reply::Embedding(EmbeddingReply {
                    epoch: snap.epoch(),
                    checksum_bits: snap.checksum().to_bits(),
                    dim: snap.dim() as u32,
                    sources: snap.sources().to_vec(),
                    data,
                }),
                false,
            )
        }
        Request::GetStats => match &*shared.handle.read().unwrap() {
            Some(h) => match h.stats_reply(tenant) {
                Some(reply) => (Reply::Stats(Box::new(reply)), false),
                None => (Reply::Error(format!("unknown tenant {tenant}")), false),
            },
            None => (Reply::Error("server is shut down".into()), true),
        },
        Request::Shutdown => {
            // Flush so everything submitted is durable in the engines, then
            // stop the whole front. The owner reclaims the host via
            // NetFront::shutdown / shutdown_host.
            if let Some(h) = &*shared.handle.read().unwrap() {
                h.flush_sync();
            }
            shared.stop.store(true, Ordering::Release);
            (Reply::ShutdownAck, true)
        }
        Request::GetWindows { after_epoch, max } => match &*shared.handle.read().unwrap() {
            Some(h) => match h.journal_windows(after_epoch, max as usize) {
                Ok(run) => (
                    Reply::Windows(WindowsReply {
                        latest: run.latest,
                        first_epoch: run.first_epoch,
                        windows: run.windows,
                    }),
                    false,
                ),
                // First-class over the wire: the follower branches on
                // the typed gap (re-seed from a checkpoint) instead of
                // parsing an error string.
                Err(JournalError::Compacted { oldest, requested }) => {
                    (Reply::JournalGap { oldest, requested }, false)
                }
            },
            None => (Reply::Error("server is shut down".into()), true),
        },
        Request::GetCheckpoint => match &*shared.handle.read().unwrap() {
            Some(h) => match h.checkpoint_json() {
                Some((epoch, host)) => (
                    Reply::Checkpoint(Box::new(CheckpointReply { epoch, host })),
                    false,
                ),
                None => (Reply::Error("server is shut down".into()), true),
            },
            None => (Reply::Error("server is shut down".into()), true),
        },
    }
}
