//! The hermetic binary wire protocol: length-prefixed, versioned,
//! checksummed frames carrying the serving API (`std`-only, no external
//! codecs — consistent with the workspace hermeticity gate).
//!
//! # Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0x5654 ("TV")
//! 2       1     version      WIRE_VERSION (currently 2)
//! 3       1     msg_id       message discriminant (see below)
//! 4       8     request_id   client-chosen; echoed verbatim in the reply
//! 12      4     tenant_id    the tenant this request/reply is pinned to
//!                            (0 for single-tenant servers); echoed in the
//!                            reply
//! 16      4     payload_len  ≤ MAX_PAYLOAD, else the frame is rejected
//!                            before any allocation
//! 20      8     checksum     FNV-1a 64 over bytes [2, 20) of the header
//!                            followed by the payload — any single-byte
//!                            corruption outside the magic field lands in
//!                            the checksummed range or in the checksum
//!                            itself, so it is always detected
//! 28      len   payload      message-specific body (encodings below)
//! ```
//!
//! Version 2 widened the header by the `tenant_id` field; v1 frames (and
//! any other version byte) are rejected with [`WireError::BadVersion`]
//! straight from the header — mixed-version deployments fail closed at the
//! first frame rather than misparsing offsets.
//!
//! Request id `0` is reserved for connection-level [`Reply::Error`] frames
//! the server emits when it cannot attribute a fault to a request (e.g. an
//! undecodable frame); clients start their ids at 1.
//!
//! # Message ids and payload encodings
//!
//! | id   | message        | payload |
//! |------|----------------|---------|
//! | 0x01 | `Ping`         | empty |
//! | 0x02 | `SubmitEvents` | `u32 n`, then n × (`u32 u`, `u32 v`, `u8 kind`) with kind 0=insert 1=delete |
//! | 0x03 | `Flush`        | empty |
//! | 0x04 | `GetRows`      | `u32 n`, then n × `u32 node` |
//! | 0x05 | `GetEmbedding` | empty |
//! | 0x06 | `GetStats`     | empty |
//! | 0x07 | `Shutdown`     | empty |
//! | 0x08 | `GetWindows`   | `u64 after_epoch`, `u32 max` |
//! | 0x09 | `GetCheckpoint`| empty |
//! | 0x0A | `TopK`         | `u32 node`, `u32 k` (≤ 2^20), `u8 metric` (0=dot 1=cosine), `u8 has_query`, has_query × (`u32 dim`, dim × `f64`) |
//! | 0x81 | `Pong`         | empty |
//! | 0x82 | `SubmitAck`    | `u64 accepted` |
//! | 0x83 | `FlushAck`     | `u64 epoch` |
//! | 0x84 | `Rows`         | `u64 epoch`, `u64 checksum_bits`, `u32 dim`, `u32 n`, then n × (`u8 present`, present × dim × `f64`) |
//! | 0x85 | `Embedding`    | `u64 epoch`, `u64 checksum_bits`, `u32 dim`, `u32 rows`, rows × `u32 source`, rows·dim × `f64` (row-major) |
//! | 0x86 | `Stats`        | `u32 len`, UTF-8 JSON body (`StatsReply`: the tenant's `ServeStats` plus the `HostStats` rollup; the rt::json codec round-trips every `f64` bitwise) |
//! | 0x87 | `ShutdownAck`  | empty |
//! | 0x88 | `Windows`      | `u64 latest`, `u64 first_epoch`, `u32 n`, then n × (`u32 m`, m × (`u32 u`, `u32 v`, `u8 kind`)) |
//! | 0x89 | `Checkpoint`   | `u64 epoch`, `u32 len`, UTF-8 host-checkpoint JSON (the `TenantHost` serialisation; rt::json round-trips every `f64` bitwise, so a re-seeded follower continues bit-exact) |
//! | 0x8A | `JournalGap`   | `u64 oldest`, `u64 requested` — typed answer to a `GetWindows` that fell behind the leader's bounded journal (the `Compacted` condition); the puller must re-seed via `GetCheckpoint` |
//! | 0x8B | `TopKReply`    | `u64 epoch`, `u64 checksum_bits`, `u8 found`, `u32 n`, then n × (`u32 node`, `f64 score`) |
//! | 0xFF | `Error`        | `u32 len`, UTF-8 message |
//!
//! `f64` values travel as raw IEEE-754 bits (`to_bits`/`from_bits`), so a
//! decoded reply is **bitwise identical** to the server-side value — the
//! property the loopback equivalence tests pin. Every decoder validates
//! counts against the remaining payload *before* allocating, rejects
//! unknown discriminants, and requires the payload to be consumed exactly
//! (no trailing bytes), so corrupted or truncated frames fail closed.

use std::io::{self, Read, Write};

use tsvd_graph::{EdgeEvent, EventKind};
use tsvd_rt::json::{FromJson, Json, ToJson};

use crate::query::Metric;
use crate::stats::StatsReply;

/// First two bytes of every frame: "TV" little-endian.
pub const WIRE_MAGIC: u16 = 0x5654;

/// Protocol version stamped into (and required of) every frame. Version 2
/// added the `tenant_id` header field; older versions are rejected.
pub const WIRE_VERSION: u8 = 2;

/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 28;

/// Maximum accepted payload size (64 MiB). A frame announcing more is
/// rejected from its header alone — no allocation is attempted.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Why a frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// First two bytes were not [`WIRE_MAGIC`].
    BadMagic(u16),
    /// Version byte differs from [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown message discriminant.
    UnknownMsg(u8),
    /// Announced payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Input ended before the announced frame did.
    Truncated,
    /// Checksum mismatch: the frame was corrupted in flight.
    Checksum,
    /// Structurally invalid payload (bad discriminant, bad count, bad
    /// UTF-8, trailing bytes, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownMsg(id) => write!(f, "unknown message id {id:#04x}"),
            WireError::Oversized(n) => write!(f, "payload of {n} bytes exceeds cap"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// FNV-1a 64-bit, chainable: feed the previous digest back in as `seed`.
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a 64 offset basis — the `seed` for a fresh digest.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Reply::Pong`].
    Ping,
    /// Edge events for the server's pending flush window.
    SubmitEvents(Vec<EdgeEvent>),
    /// Flush everything pending and block until applied.
    Flush,
    /// Embedding rows for the given nodes from the current epoch snapshot.
    GetRows(Vec<u32>),
    /// The whole served embedding (all subset rows) at the current epoch.
    GetEmbedding,
    /// Point-in-time [`ServeStats`].
    GetStats,
    /// Flush, then stop accepting traffic (the owner reclaims the engine).
    Shutdown,
    /// Journal windows for epochs `> after_epoch` (follower catch-up).
    GetWindows {
        /// The follower's applied epoch; the reply starts right after it.
        after_epoch: u64,
        /// Page size: at most this many windows per reply.
        max: u32,
    },
    /// A full host checkpoint at a consistent epoch — the re-seed path for
    /// a follower that outlived the leader's bounded journal.
    GetCheckpoint,
    /// Top-k similar subset nodes at the current epoch snapshot.
    TopK {
        /// The query node. Excluded from its own results when it owns a
        /// row on the answering snapshot.
        node: u32,
        /// Number of neighbours requested (capped at [`MAX_TOP_K`]).
        k: u32,
        /// Similarity metric to score under.
        metric: Metric,
        /// Explicit query vector. `None` means "score against `node`'s own
        /// row" (single-shard form); the router's scatter path sends
        /// `Some(row)` so shards that don't own `node` can still score it.
        query: Option<Vec<f64>>,
    },
}

/// Largest accepted `k` in a [`Request::TopK`] — a sanity cap well above
/// any real working set; larger values are rejected as malformed.
pub const MAX_TOP_K: u32 = 1 << 20;

/// A full host checkpoint at one consistent epoch: the answer to
/// [`Request::GetCheckpoint`]. `host` is the leader's `TenantHost` JSON
/// serialisation (the same shape `tsvd-store` checkpoints persist), which
/// round-trips every `f64` bitwise — a follower installed from it
/// continues bit-exact from `epoch` and resumes `GetWindows` paging there.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointReply {
    /// The epoch the serialised host state reflects (every window `≤
    /// epoch` applied, none beyond).
    pub epoch: u64,
    /// The host-checkpoint JSON text.
    pub host: String,
}

/// Embedding rows for an explicit node list, stamped with the epoch and
/// the snapshot's content checksum so the client can detect staleness
/// (epoch going backwards) and divergence (same epoch, different bits).
#[derive(Debug, Clone, PartialEq)]
pub struct RowsReply {
    /// Epoch of the snapshot the rows were read from.
    pub epoch: u64,
    /// Bit pattern of the snapshot's sequential-sum content checksum.
    pub checksum_bits: u64,
    /// Embedding dimension (length of every present row).
    pub dim: u32,
    /// One slot per requested node; `None` for nodes outside the subset.
    pub rows: Vec<Option<Vec<f64>>>,
}

/// The full served embedding at one epoch. Carries enough to recompute the
/// content checksum client-side ([`EmbeddingReply::verify_checksum`]) — the
/// end-to-end torn-read detector.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingReply {
    /// Epoch of the snapshot.
    pub epoch: u64,
    /// Bit pattern of the snapshot's sequential-sum content checksum.
    pub checksum_bits: u64,
    /// Embedding dimension.
    pub dim: u32,
    /// Subset node ids in row order (`sources[i]` owns row `i`).
    pub sources: Vec<u32>,
    /// Row-major embedding entries, `sources.len() × dim`.
    pub data: Vec<f64>,
}

impl EmbeddingReply {
    /// Row `i` of the embedding.
    pub fn row(&self, i: usize) -> &[f64] {
        let d = self.dim as usize;
        &self.data[i * d..(i + 1) * d]
    }

    /// Recompute the sequential entry sum (the exact summation order the
    /// server stamps at publish time) and compare bitwise against
    /// [`EmbeddingReply::checksum_bits`]. `false` means the reply does not
    /// describe one consistent epoch — a torn read or wire corruption that
    /// slipped past the frame checksum.
    pub fn verify_checksum(&self) -> bool {
        let mut sum = 0.0f64;
        for v in &self.data {
            sum += v;
        }
        sum.to_bits() == self.checksum_bits
    }
}

/// A contiguous run of the leader's journal windows — the follower
/// catch-up payload (answer to [`Request::GetWindows`]). Field meanings
/// mirror `JournalWindows` in the serve crate: `windows[i]` is the exact
/// post-coalesce window the leader applied at epoch `first_epoch + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowsReply {
    /// Newest epoch in the leader's journal when the read was taken.
    pub latest: u64,
    /// Epoch of `windows[0]` (`after_epoch + 1`; meaningless when empty).
    pub first_epoch: u64,
    /// Windows for epochs `first_epoch ..`, in order (empty = caught up).
    pub windows: Vec<Vec<EdgeEvent>>,
}

/// Top-k neighbours from one snapshot, stamped (like [`RowsReply`]) with
/// the answering epoch and its content checksum so clients can detect
/// staleness and the router can require cross-shard epoch agreement.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKReply {
    /// Epoch of the snapshot the scan ran against.
    pub epoch: u64,
    /// Bit pattern of the snapshot's sequential-sum content checksum.
    pub checksum_bits: u64,
    /// `false` only when the request carried no explicit query vector and
    /// the query node is outside this snapshot's subset.
    pub found: bool,
    /// `(node, score)` pairs, best first (score descending, ties by
    /// ascending row — the canonical deterministic order).
    pub neighbors: Vec<(u32, f64)>,
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Events accepted into the pending window.
    SubmitAck {
        /// Number of events accepted.
        accepted: u64,
    },
    /// The epoch being served once the flush completed.
    FlushAck {
        /// Served epoch after the flush.
        epoch: u64,
    },
    /// Answer to [`Request::GetRows`].
    Rows(RowsReply),
    /// Answer to [`Request::GetEmbedding`].
    Embedding(EmbeddingReply),
    /// Answer to [`Request::GetStats`]: the requesting tenant's stats plus
    /// the host rollup. Boxed: the stats blob dwarfs every other reply, and
    /// boxing it keeps plain `Reply` values (acks, rows) small.
    Stats(Box<StatsReply>),
    /// The server flushed and is shutting its network front down.
    ShutdownAck,
    /// Answer to [`Request::GetWindows`].
    Windows(WindowsReply),
    /// Answer to [`Request::GetCheckpoint`]. Boxed for the same reason as
    /// [`Reply::Stats`]: the checkpoint JSON dwarfs every other reply.
    Checkpoint(Box<CheckpointReply>),
    /// Answer to [`Request::TopK`].
    TopKReply(TopKReply),
    /// Typed answer to a [`Request::GetWindows`] whose `after_epoch` fell
    /// behind the leader's bounded journal: the requested window was
    /// compacted away. Unlike [`Reply::Error`] this is machine-readable —
    /// the puller re-seeds via [`Request::GetCheckpoint`] and resumes.
    JournalGap {
        /// The oldest epoch the leader's journal still retains.
        oldest: u64,
        /// The epoch the puller needed (`after_epoch + 1`).
        requested: u64,
    },
    /// The request could not be served (message is human-readable).
    Error(String),
}

/// Either half of the conversation; what a frame carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server.
    Request(Request),
    /// Server → client.
    Reply(Reply),
}

/// One decoded frame: the echoed request id and tenant id plus the message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Correlation id (client-chosen; `0` reserved for connection errors).
    pub request_id: u64,
    /// Tenant the frame is pinned to (0 for single-tenant servers);
    /// replies echo the request's tenant.
    pub tenant: u32,
    /// The decoded message.
    pub message: Message,
}

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn event_kind_byte(kind: EventKind) -> u8 {
    match kind {
        EventKind::Insert => 0,
        EventKind::Delete => 1,
    }
}

impl Message {
    /// The wire discriminant of this message.
    pub fn msg_id(&self) -> u8 {
        match self {
            Message::Request(Request::Ping) => 0x01,
            Message::Request(Request::SubmitEvents(_)) => 0x02,
            Message::Request(Request::Flush) => 0x03,
            Message::Request(Request::GetRows(_)) => 0x04,
            Message::Request(Request::GetEmbedding) => 0x05,
            Message::Request(Request::GetStats) => 0x06,
            Message::Request(Request::Shutdown) => 0x07,
            Message::Request(Request::GetWindows { .. }) => 0x08,
            Message::Request(Request::GetCheckpoint) => 0x09,
            Message::Request(Request::TopK { .. }) => 0x0A,
            Message::Reply(Reply::Pong) => 0x81,
            Message::Reply(Reply::SubmitAck { .. }) => 0x82,
            Message::Reply(Reply::FlushAck { .. }) => 0x83,
            Message::Reply(Reply::Rows(_)) => 0x84,
            Message::Reply(Reply::Embedding(_)) => 0x85,
            Message::Reply(Reply::Stats(_)) => 0x86,
            Message::Reply(Reply::ShutdownAck) => 0x87,
            Message::Reply(Reply::Windows(_)) => 0x88,
            Message::Reply(Reply::Checkpoint(_)) => 0x89,
            Message::Reply(Reply::JournalGap { .. }) => 0x8A,
            Message::Reply(Reply::TopKReply(_)) => 0x8B,
            Message::Reply(Reply::Error(_)) => 0xFF,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Request(Request::Ping)
            | Message::Request(Request::Flush)
            | Message::Request(Request::GetEmbedding)
            | Message::Request(Request::GetStats)
            | Message::Request(Request::Shutdown)
            | Message::Request(Request::GetCheckpoint)
            | Message::Reply(Reply::Pong)
            | Message::Reply(Reply::ShutdownAck) => {}
            Message::Request(Request::SubmitEvents(events)) => {
                put_u32(out, events.len() as u32);
                for e in events {
                    put_u32(out, e.u);
                    put_u32(out, e.v);
                    out.push(event_kind_byte(e.kind));
                }
            }
            Message::Request(Request::GetRows(nodes)) => {
                put_u32(out, nodes.len() as u32);
                for &n in nodes {
                    put_u32(out, n);
                }
            }
            Message::Request(Request::GetWindows { after_epoch, max }) => {
                put_u64(out, *after_epoch);
                put_u32(out, *max);
            }
            Message::Request(Request::TopK {
                node,
                k,
                metric,
                query,
            }) => {
                put_u32(out, *node);
                put_u32(out, *k);
                out.push(metric.as_u8());
                match query {
                    None => out.push(0),
                    Some(q) => {
                        out.push(1);
                        put_u32(out, q.len() as u32);
                        for &x in q {
                            put_f64(out, x);
                        }
                    }
                }
            }
            Message::Reply(Reply::SubmitAck { accepted }) => put_u64(out, *accepted),
            Message::Reply(Reply::FlushAck { epoch }) => put_u64(out, *epoch),
            Message::Reply(Reply::Rows(r)) => {
                put_u64(out, r.epoch);
                put_u64(out, r.checksum_bits);
                put_u32(out, r.dim);
                put_u32(out, r.rows.len() as u32);
                for row in &r.rows {
                    match row {
                        None => out.push(0),
                        Some(v) => {
                            debug_assert_eq!(v.len(), r.dim as usize);
                            out.push(1);
                            for &x in v {
                                put_f64(out, x);
                            }
                        }
                    }
                }
            }
            Message::Reply(Reply::Embedding(e)) => {
                put_u64(out, e.epoch);
                put_u64(out, e.checksum_bits);
                put_u32(out, e.dim);
                put_u32(out, e.sources.len() as u32);
                for &s in &e.sources {
                    put_u32(out, s);
                }
                debug_assert_eq!(e.data.len(), e.sources.len() * e.dim as usize);
                for &x in &e.data {
                    put_f64(out, x);
                }
            }
            Message::Reply(Reply::Stats(reply)) => {
                let body = reply.to_json().to_string().into_bytes();
                put_u32(out, body.len() as u32);
                out.extend_from_slice(&body);
            }
            Message::Reply(Reply::Windows(w)) => {
                put_u64(out, w.latest);
                put_u64(out, w.first_epoch);
                put_u32(out, w.windows.len() as u32);
                for window in &w.windows {
                    put_u32(out, window.len() as u32);
                    for e in window {
                        put_u32(out, e.u);
                        put_u32(out, e.v);
                        out.push(event_kind_byte(e.kind));
                    }
                }
            }
            Message::Reply(Reply::Checkpoint(ck)) => {
                put_u64(out, ck.epoch);
                let body = ck.host.as_bytes();
                put_u32(out, body.len() as u32);
                out.extend_from_slice(body);
            }
            Message::Reply(Reply::JournalGap { oldest, requested }) => {
                put_u64(out, *oldest);
                put_u64(out, *requested);
            }
            Message::Reply(Reply::TopKReply(t)) => {
                put_u64(out, t.epoch);
                put_u64(out, t.checksum_bits);
                out.push(t.found as u8);
                put_u32(out, t.neighbors.len() as u32);
                for &(node, score) in &t.neighbors {
                    put_u32(out, node);
                    put_f64(out, score);
                }
            }
            Message::Reply(Reply::Error(msg)) => {
                let body = msg.as_bytes();
                put_u32(out, body.len() as u32);
                out.extend_from_slice(body);
            }
        }
    }
}

/// Append one complete frame for `message` (with `request_id`, pinned to
/// `tenant`) to `out`.
pub fn encode_frame(request_id: u64, tenant: u32, message: &Message, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(message.msg_id());
    put_u64(out, request_id);
    put_u32(out, tenant);
    put_u32(out, 0); // payload_len backfilled below
    put_u64(out, 0); // checksum backfilled below
    let payload_start = out.len();
    message.encode_payload(out);
    let payload_len = (out.len() - payload_start) as u32;
    debug_assert!(payload_len <= MAX_PAYLOAD, "reply exceeds frame cap");
    out[start + 16..start + 20].copy_from_slice(&payload_len.to_le_bytes());
    let crc = frame_checksum(&out[start + 2..start + 20], &out[payload_start..]);
    out[start + 20..start + 28].copy_from_slice(&crc.to_le_bytes());
}

/// Checksum over the post-magic header fields and the payload.
fn frame_checksum(header_tail: &[u8], payload: &[u8]) -> u64 {
    fnv1a64(fnv1a64(FNV_OFFSET, header_tail), payload)
}

// ---------------------------------------------------------------- decode

/// Bounded, panic-free payload cursor: every read is checked against the
/// remaining bytes before it happens, and counts are validated against the
/// remaining length before any allocation is sized from them.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed("payload shorter than its fields"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A count of items occupying ≥ `min_item_bytes` each: rejected before
    /// allocation if the remaining payload cannot possibly hold that many.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.checked_mul(min_item_bytes)
            .is_none_or(|total| total > self.remaining())
        {
            return Err(WireError::Malformed("count exceeds payload"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn decode_event_kind(b: u8) -> Result<EventKind, WireError> {
    match b {
        0 => Ok(EventKind::Insert),
        1 => Ok(EventKind::Delete),
        _ => Err(WireError::Malformed("bad event kind")),
    }
}

fn decode_payload(msg_id: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut c = Cursor::new(payload);
    let message = match msg_id {
        0x01 => Message::Request(Request::Ping),
        0x02 => {
            let n = c.count(9)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let u = c.u32()?;
                let v = c.u32()?;
                let kind = decode_event_kind(c.u8()?)?;
                events.push(EdgeEvent { u, v, kind });
            }
            Message::Request(Request::SubmitEvents(events))
        }
        0x03 => Message::Request(Request::Flush),
        0x04 => {
            let n = c.count(4)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(c.u32()?);
            }
            Message::Request(Request::GetRows(nodes))
        }
        0x05 => Message::Request(Request::GetEmbedding),
        0x06 => Message::Request(Request::GetStats),
        0x07 => Message::Request(Request::Shutdown),
        0x08 => {
            let after_epoch = c.u64()?;
            let max = c.u32()?;
            Message::Request(Request::GetWindows { after_epoch, max })
        }
        0x09 => Message::Request(Request::GetCheckpoint),
        0x0A => {
            let node = c.u32()?;
            let k = c.u32()?;
            if k > MAX_TOP_K {
                return Err(WireError::Malformed("top-k k exceeds cap"));
            }
            let metric = Metric::from_u8(c.u8()?).ok_or(WireError::Malformed("bad metric byte"))?;
            let query = match c.u8()? {
                0 => None,
                1 => {
                    let dim = c.count(8)?;
                    let mut q = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        q.push(c.f64()?);
                    }
                    Some(q)
                }
                _ => return Err(WireError::Malformed("bad query presence tag")),
            };
            Message::Request(Request::TopK {
                node,
                k,
                metric,
                query,
            })
        }
        0x81 => Message::Reply(Reply::Pong),
        0x82 => Message::Reply(Reply::SubmitAck { accepted: c.u64()? }),
        0x83 => Message::Reply(Reply::FlushAck { epoch: c.u64()? }),
        0x84 => {
            let epoch = c.u64()?;
            let checksum_bits = c.u64()?;
            let dim = c.u32()?;
            let n = c.count(1)?;
            let row_bytes = (dim as usize)
                .checked_mul(8)
                .ok_or(WireError::Malformed("dim overflow"))?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                match c.u8()? {
                    0 => rows.push(None),
                    1 => {
                        if c.remaining() < row_bytes {
                            return Err(WireError::Malformed("row exceeds payload"));
                        }
                        let mut row = Vec::with_capacity(dim as usize);
                        for _ in 0..dim {
                            row.push(c.f64()?);
                        }
                        rows.push(Some(row));
                    }
                    _ => return Err(WireError::Malformed("bad row presence tag")),
                }
            }
            Message::Reply(Reply::Rows(RowsReply {
                epoch,
                checksum_bits,
                dim,
                rows,
            }))
        }
        0x85 => {
            let epoch = c.u64()?;
            let checksum_bits = c.u64()?;
            let dim = c.u32()?;
            let rows = c.count(4)?;
            let mut sources = Vec::with_capacity(rows);
            for _ in 0..rows {
                sources.push(c.u32()?);
            }
            let entries = rows
                .checked_mul(dim as usize)
                .ok_or(WireError::Malformed("embedding size overflow"))?;
            if entries.checked_mul(8).is_none_or(|b| b > c.remaining()) {
                return Err(WireError::Malformed("embedding exceeds payload"));
            }
            let mut data = Vec::with_capacity(entries);
            for _ in 0..entries {
                data.push(c.f64()?);
            }
            Message::Reply(Reply::Embedding(EmbeddingReply {
                epoch,
                checksum_bits,
                dim,
                sources,
                data,
            }))
        }
        0x86 => {
            let n = c.count(1)?;
            let body = std::str::from_utf8(c.take(n)?)
                .map_err(|_| WireError::Malformed("stats not UTF-8"))?;
            let json = Json::parse(body).map_err(|_| WireError::Malformed("stats not JSON"))?;
            let reply = StatsReply::from_json(&json)
                .map_err(|_| WireError::Malformed("stats JSON shape"))?;
            Message::Reply(Reply::Stats(Box::new(reply)))
        }
        0x87 => Message::Reply(Reply::ShutdownAck),
        0x88 => {
            let latest = c.u64()?;
            let first_epoch = c.u64()?;
            let n = c.count(4)?;
            let mut windows = Vec::with_capacity(n);
            for _ in 0..n {
                let m = c.count(9)?;
                let mut events = Vec::with_capacity(m);
                for _ in 0..m {
                    let u = c.u32()?;
                    let v = c.u32()?;
                    let kind = decode_event_kind(c.u8()?)?;
                    events.push(EdgeEvent { u, v, kind });
                }
                windows.push(events);
            }
            Message::Reply(Reply::Windows(WindowsReply {
                latest,
                first_epoch,
                windows,
            }))
        }
        0x89 => {
            let epoch = c.u64()?;
            let n = c.count(1)?;
            let body = std::str::from_utf8(c.take(n)?)
                .map_err(|_| WireError::Malformed("checkpoint not UTF-8"))?;
            Message::Reply(Reply::Checkpoint(Box::new(CheckpointReply {
                epoch,
                host: body.to_string(),
            })))
        }
        0x8A => {
            let oldest = c.u64()?;
            let requested = c.u64()?;
            Message::Reply(Reply::JournalGap { oldest, requested })
        }
        0x8B => {
            let epoch = c.u64()?;
            let checksum_bits = c.u64()?;
            let found = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bad found byte")),
            };
            let n = c.count(12)?;
            let mut neighbors = Vec::with_capacity(n);
            for _ in 0..n {
                let node = c.u32()?;
                let score = c.f64()?;
                neighbors.push((node, score));
            }
            Message::Reply(Reply::TopKReply(TopKReply {
                epoch,
                checksum_bits,
                found,
                neighbors,
            }))
        }
        0xFF => {
            let n = c.count(1)?;
            let body = std::str::from_utf8(c.take(n)?)
                .map_err(|_| WireError::Malformed("error not UTF-8"))?;
            Message::Reply(Reply::Error(body.to_string()))
        }
        other => return Err(WireError::UnknownMsg(other)),
    };
    c.finish()?;
    Ok(message)
}

/// Parsed fixed-size header.
struct Header {
    msg_id: u8,
    request_id: u64,
    tenant: u32,
    payload_len: u32,
    checksum: u64,
}

fn decode_header(h: &[u8; HEADER_LEN]) -> Result<Header, WireError> {
    let magic = u16::from_le_bytes([h[0], h[1]]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if h[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(h[2]));
    }
    let payload_len = u32::from_le_bytes(h[16..20].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    Ok(Header {
        msg_id: h[3],
        request_id: u64::from_le_bytes(h[4..12].try_into().unwrap()),
        tenant: u32::from_le_bytes(h[12..16].try_into().unwrap()),
        payload_len,
        checksum: u64::from_le_bytes(h[20..28].try_into().unwrap()),
    })
}

/// Decode one frame from the front of `bytes`. Returns the frame and the
/// number of bytes it occupied (so a buffer of concatenated frames can be
/// walked). Never panics and never allocates more than the input length on
/// any input — the fuzz property the protocol test battery pins.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
    let h = decode_header(header)?;
    let total = HEADER_LEN + h.payload_len as usize;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let payload = &bytes[HEADER_LEN..total];
    if frame_checksum(&bytes[2..20], payload) != h.checksum {
        return Err(WireError::Checksum);
    }
    let message = decode_payload(h.msg_id, payload)?;
    Ok((
        Frame {
            request_id: h.request_id,
            tenant: h.tenant,
            message,
        },
        total,
    ))
}

// ---------------------------------------------------------------- stream

/// Write one frame to `w` and flush it.
pub fn write_frame(
    w: &mut impl Write,
    request_id: u64,
    tenant: u32,
    message: &Message,
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 64);
    encode_frame(request_id, tenant, message, &mut buf);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame from `r`. Returns `Ok(None)` on clean EOF (the peer
/// closed between frames); EOF mid-frame is an error. Protocol violations
/// surface as [`io::ErrorKind::InvalidData`] wrapping a [`WireError`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: distinguishes clean EOF from truncation.
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!("read of 1 byte returned more"),
    }
    r.read_exact(&mut header[1..])?;
    let h = decode_header(&header)?;
    let mut payload = vec![0u8; h.payload_len as usize];
    r.read_exact(&mut payload)?;
    if frame_checksum(&header[2..20], &payload) != h.checksum {
        return Err(WireError::Checksum.into());
    }
    let message = decode_payload(h.msg_id, &payload)?;
    Ok(Some(Frame {
        request_id: h.request_id,
        tenant: h.tenant,
        message,
    }))
}

/// Like [`read_frame`], but built for a reader with a short read timeout
/// (socket `set_read_timeout` or the pipe's equivalent): timeouts are
/// retried so slow frames are never torn, and `should_stop` is polled
/// between retries so the loop can be told to give up. Returns `Ok(None)`
/// on clean EOF or when stopped.
pub fn read_frame_until(
    r: &mut impl Read,
    mut should_stop: impl FnMut() -> bool,
) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    // Wait for the first byte of a frame, polling the stop flag while the
    // line is idle — nothing has been consumed yet, so bailing is safe.
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if should_stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    // A frame has started: finish it, retrying timeouts (the peer may be
    // mid-write), but still honour the stop flag so shutdown cannot hang
    // on a peer that died mid-frame.
    let mut fill = |buf: &mut [u8]| -> io::Result<bool> {
        let mut done = 0;
        while done < buf.len() {
            match r.read(&mut buf[done..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "mid-frame EOF",
                    ))
                }
                Ok(n) => done += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    if should_stop() {
                        return Ok(false);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    };
    if !fill(&mut header[1..])? {
        return Ok(None);
    }
    let h = decode_header(&header)?;
    let mut payload = vec![0u8; h.payload_len as usize];
    if !fill(&mut payload)? {
        return Ok(None);
    }
    if frame_checksum(&header[2..20], &payload) != h.checksum {
        return Err(WireError::Checksum.into());
    }
    let message = decode_payload(h.msg_id, &payload)?;
    Ok(Some(Frame {
        request_id: h.request_id,
        tenant: h.tenant,
        message,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(id: u64, message: Message) {
        let tenant = (id as u32).wrapping_mul(3); // vary the tenant field too
        let mut buf = Vec::new();
        encode_frame(id, tenant, &message, &mut buf);
        let (frame, used) = decode_frame(&buf).expect("decode");
        assert_eq!(used, buf.len());
        assert_eq!(frame.request_id, id);
        assert_eq!(frame.tenant, tenant);
        assert_eq!(frame.message, message);
        // Stream path agrees with the slice path.
        let mut r = &buf[..];
        let streamed = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(streamed.message, frame.message);
        assert_eq!(streamed.tenant, tenant);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn empty_payload_messages_round_trip() {
        for m in [
            Message::Request(Request::Ping),
            Message::Request(Request::Flush),
            Message::Request(Request::GetEmbedding),
            Message::Request(Request::GetStats),
            Message::Request(Request::Shutdown),
            Message::Request(Request::GetCheckpoint),
            Message::Reply(Reply::Pong),
            Message::Reply(Reply::ShutdownAck),
        ] {
            round_trip(7, m);
        }
    }

    #[test]
    fn checkpoint_and_journal_gap_round_trip() {
        round_trip(
            13,
            Message::Reply(Reply::Checkpoint(Box::new(CheckpointReply {
                epoch: 42,
                host: r#"{"graph":{},"batches_recorded":42,"tenants":[]}"#.into(),
            }))),
        );
        // Empty checkpoint body survives (a degenerate but legal host).
        round_trip(
            14,
            Message::Reply(Reply::Checkpoint(Box::new(CheckpointReply {
                epoch: 0,
                host: String::new(),
            }))),
        );
        round_trip(
            15,
            Message::Reply(Reply::JournalGap {
                oldest: 4097,
                requested: 12,
            }),
        );
    }

    #[test]
    fn checkpoint_length_larger_than_payload_rejected_before_allocation() {
        // A Checkpoint frame whose body-length field claims more bytes than
        // the payload holds must fail on the count check, not allocate.
        let mut buf = Vec::new();
        encode_frame(
            1,
            0,
            &Message::Reply(Reply::Checkpoint(Box::new(CheckpointReply {
                epoch: 3,
                host: "x".into(),
            }))),
            &mut buf,
        );
        // The length field sits right after the u64 epoch in the payload.
        buf[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = frame_checksum(&buf[2..20], &buf[HEADER_LEN..]);
        buf[20..28].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("count exceeds payload"))
        );
    }

    #[test]
    fn payload_messages_round_trip() {
        round_trip(
            1,
            Message::Request(Request::SubmitEvents(vec![
                EdgeEvent::insert(3, 4),
                EdgeEvent::delete(9, 2),
            ])),
        );
        round_trip(2, Message::Request(Request::GetRows(vec![0, 7, 42])));
        round_trip(3, Message::Reply(Reply::SubmitAck { accepted: 17 }));
        round_trip(4, Message::Reply(Reply::FlushAck { epoch: u64::MAX }));
        round_trip(
            5,
            Message::Reply(Reply::Rows(RowsReply {
                epoch: 3,
                checksum_bits: 0xDEAD_BEEF,
                dim: 2,
                rows: vec![Some(vec![1.5, -0.25]), None, Some(vec![0.0, -0.0])],
            })),
        );
        round_trip(
            6,
            Message::Reply(Reply::Embedding(EmbeddingReply {
                epoch: 9,
                checksum_bits: 1,
                dim: 2,
                sources: vec![5, 6],
                data: vec![0.1, 0.2, 0.3, 0.4],
            })),
        );
        round_trip(8, Message::Reply(Reply::Error("no such node".into())));
        round_trip(
            9,
            Message::Request(Request::GetWindows {
                after_epoch: 41,
                max: 128,
            }),
        );
        round_trip(
            10,
            Message::Reply(Reply::Windows(WindowsReply {
                latest: 44,
                first_epoch: 42,
                windows: vec![
                    vec![EdgeEvent::insert(1, 2), EdgeEvent::delete(3, 4)],
                    vec![], // an all-coalesced-away (empty) window survives
                    vec![EdgeEvent::insert(9, 9)],
                ],
            })),
        );
        round_trip(
            12,
            Message::Reply(Reply::Windows(WindowsReply {
                latest: 7,
                first_epoch: 8,
                windows: vec![], // caught-up reply
            })),
        );
    }

    #[test]
    fn top_k_messages_round_trip() {
        round_trip(
            16,
            Message::Request(Request::TopK {
                node: 42,
                k: 10,
                metric: Metric::Dot,
                query: None,
            }),
        );
        round_trip(
            17,
            Message::Request(Request::TopK {
                node: 7,
                k: MAX_TOP_K,
                metric: Metric::Cosine,
                query: Some(vec![1.5, -0.25, 0.0, -0.0]),
            }),
        );
        // Empty explicit query vector is legal at the wire layer.
        round_trip(
            18,
            Message::Request(Request::TopK {
                node: 0,
                k: 0,
                metric: Metric::Dot,
                query: Some(vec![]),
            }),
        );
        round_trip(
            19,
            Message::Reply(Reply::TopKReply(TopKReply {
                epoch: 9,
                checksum_bits: 0xFEED_F00D,
                found: true,
                neighbors: vec![(3, 0.5), (1, 0.5), (9, -2.25)],
            })),
        );
        round_trip(
            20,
            Message::Reply(Reply::TopKReply(TopKReply {
                epoch: 0,
                checksum_bits: 0,
                found: false,
                neighbors: vec![],
            })),
        );
    }

    #[test]
    fn top_k_bad_bytes_rejected() {
        let msg = Message::Request(Request::TopK {
            node: 1,
            k: 2,
            metric: Metric::Dot,
            query: None,
        });
        let mut buf = Vec::new();
        encode_frame(1, 0, &msg, &mut buf);
        // Metric byte is payload offset 8; presence tag offset 9.
        for (off, expect) in [
            (8, WireError::Malformed("bad metric byte")),
            (9, WireError::Malformed("bad query presence tag")),
        ] {
            let mut bad = buf.clone();
            bad[HEADER_LEN + off] = 7;
            let crc = frame_checksum(&bad[2..20], &bad[HEADER_LEN..]);
            bad[20..28].copy_from_slice(&crc.to_le_bytes());
            assert_eq!(decode_frame(&bad), Err(expect));
        }
        // k above the cap is malformed even with a valid checksum.
        let mut bad = buf.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&(MAX_TOP_K + 1).to_le_bytes());
        let crc = frame_checksum(&bad[2..20], &bad[HEADER_LEN..]);
        bad[20..28].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::Malformed("top-k k exceeds cap"))
        );
        // TopKReply found byte must be 0 or 1.
        let reply = Message::Reply(Reply::TopKReply(TopKReply {
            epoch: 1,
            checksum_bits: 2,
            found: true,
            neighbors: vec![],
        }));
        let mut buf = Vec::new();
        encode_frame(1, 0, &reply, &mut buf);
        buf[HEADER_LEN + 16] = 2;
        let crc = frame_checksum(&buf[2..20], &buf[HEADER_LEN..]);
        buf[20..28].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("bad found byte"))
        );
    }

    #[test]
    fn f64_bits_survive_including_nan_and_negative_zero() {
        let weird = vec![
            f64::NAN,
            f64::from_bits(0x7ff8_dead_beef_0001), // a payloaded NaN
            -0.0,
            f64::INFINITY,
            f64::MIN_POSITIVE / 2.0, // subnormal
        ];
        let msg = Message::Reply(Reply::Embedding(EmbeddingReply {
            epoch: 1,
            checksum_bits: 2,
            dim: 5,
            sources: vec![0],
            data: weird.clone(),
        }));
        let mut buf = Vec::new();
        encode_frame(1, 0, &msg, &mut buf);
        let (frame, _) = decode_frame(&buf).unwrap();
        let Message::Reply(Reply::Embedding(e)) = frame.message else {
            panic!("wrong message");
        };
        for (a, b) in weird.iter().zip(&e.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "f64 bits changed in flight");
        }
    }

    #[test]
    fn stats_reply_round_trips_exactly() {
        let stats = crate::stats::ServeStats {
            tenant: 2,
            epoch: 12,
            num_shards: 4,
            events_submitted: 1000,
            events_applied: 900,
            events_coalesced: 80,
            events_pending: 20,
            batches_flushed: 12,
            flush_ms_last: 1.25,
            flush_ms_mean: 2.5,
            flush_ms_max: 0.1 + 0.2, // not exactly representable: bits must survive
            pipeline_depth: 1,
            windows_inflight: 1,
            stage_ms_last: 0.75,
            commit_ms_last: 1.5,
            overlapped_secs: 0.1 + 0.7, // not exactly representable either
            svd_update: true,
            blocks_patched: 40,
            blocks_incremental: 9,
            blocks_refactored: 3,
            timings: Default::default(),
        };
        let reply = StatsReply {
            tenant: stats,
            host: crate::stats::HostStats {
                tenants: 3,
                batches_recorded: 12,
                epoch: 11,
                events_submitted: 3000,
                events_applied: 2700,
                events_coalesced: 240,
                events_pending: 60,
            },
        };
        round_trip(11, Message::Reply(Reply::Stats(Box::new(reply))));
    }

    #[test]
    fn oversized_frame_rejected_from_header() {
        let mut buf = Vec::new();
        encode_frame(1, 0, &Message::Request(Request::Ping), &mut buf);
        buf[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Oversized(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn truncation_and_bad_magic_rejected() {
        let mut buf = Vec::new();
        encode_frame(
            1,
            0,
            &Message::Request(Request::GetRows(vec![1, 2, 3])),
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert!(decode_frame(&buf[..cut]).is_err(), "prefix {cut} accepted");
        }
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));
        let mut wrong_version = buf.clone();
        wrong_version[2] = WIRE_VERSION + 1;
        // The version byte is inside the checksummed range, so either error
        // is a rejection; BadVersion fires first by layout.
        assert_eq!(
            decode_frame(&wrong_version),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn old_version_frames_rejected() {
        // A v1 peer stamps version 1 and uses the narrower 24-byte header.
        // Whatever follows the version byte, the v2 decoder must refuse the
        // frame from the header alone — downgrade fails closed.
        let mut buf = Vec::new();
        encode_frame(9, 3, &Message::Request(Request::Flush), &mut buf);
        buf[2] = 1;
        assert_eq!(decode_frame(&buf), Err(WireError::BadVersion(1)));
        // Same on the stream path.
        let mut r = &buf[..];
        let err = read_frame(&mut r).expect_err("v1 frame accepted");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn tenant_byte_flips_break_the_checksum() {
        // The tenant field sits inside the checksummed range: a flipped
        // tenant id cannot silently reroute a request.
        let mut buf = Vec::new();
        encode_frame(4, 0x0102_0304, &Message::Request(Request::Flush), &mut buf);
        for byte in 12..16 {
            let mut bad = buf.clone();
            bad[byte] ^= 0x10;
            assert_eq!(
                decode_frame(&bad),
                Err(WireError::Checksum),
                "tenant byte {byte} flip undetected"
            );
        }
    }

    #[test]
    fn count_larger_than_payload_rejected_before_allocation() {
        // Hand-build a GetRows frame whose count field claims 2^31 nodes
        // but whose payload holds none: must fail on the count check.
        let mut buf = Vec::new();
        encode_frame(1, 0, &Message::Request(Request::GetRows(vec![])), &mut buf);
        // Rewrite the payload count (first 4 payload bytes)…
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // …and fix the checksum so the count check itself is reached.
        let crc = frame_checksum(&buf[2..20], &buf[HEADER_LEN..]);
        buf[20..28].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("count exceeds payload"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        encode_frame(1, 0, &Message::Request(Request::Ping), &mut buf);
        // Grow the payload by one byte and re-stamp length + checksum: the
        // frame is well-formed at the frame layer but the Ping decoder must
        // reject the leftover byte.
        buf.push(0xAB);
        buf[16..20].copy_from_slice(&1u32.to_le_bytes());
        let crc = frame_checksum(&buf[2..20], &buf[HEADER_LEN..]);
        buf[20..28].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("trailing bytes after payload"))
        );
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_frame(1, 0, &Message::Request(Request::Ping), &mut buf);
        encode_frame(
            2,
            1,
            &Message::Reply(Reply::FlushAck { epoch: 5 }),
            &mut buf,
        );
        let (f1, used) = decode_frame(&buf).unwrap();
        assert_eq!(f1.request_id, 1);
        let (f2, used2) = decode_frame(&buf[used..]).unwrap();
        assert_eq!(f2.request_id, 2);
        assert_eq!(f2.tenant, 1);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vector: empty input is the offset basis,
        // "a" hashes to af63dc4c8601ec8c.
        assert_eq!(fnv1a64(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
