//! Shared graph ingest: one graph, one recording, N replays.
//!
//! Tenancy splits the serving stack along the record/replay seam of
//! [`tsvd_ppr::RecordedBatch`]: every flushed edge window mutates the
//! *single* shared graph exactly once (here), and the captured recording
//! is then replayed into each tenant's `SubsetPpr` shards. `GraphIngest`
//! owns that graph and counts recordings, so tests can assert the
//! record-once contract (`batches_recorded == windows`, not
//! `windows × tenants`).

use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::RecordedBatch;

/// The single shared graph plus the record-once counter.
pub struct GraphIngest {
    graph: DynGraph,
    batches_recorded: u64,
}

impl GraphIngest {
    /// Start ingest from a snapshot of `g`.
    pub fn new(g: &DynGraph) -> Self {
        Self::from_graph(g.clone())
    }

    /// Take ownership of an existing graph (no copy).
    pub(crate) fn from_graph(graph: DynGraph) -> Self {
        GraphIngest {
            graph,
            batches_recorded: 0,
        }
    }

    /// Rebuild ingest state from a checkpoint: the graph as of
    /// `batches_recorded` recordings, with the counter restored so replayed
    /// windows continue the original epoch numbering.
    pub(crate) fn restore(graph: DynGraph, batches_recorded: u64) -> Self {
        GraphIngest {
            graph,
            batches_recorded,
        }
    }

    /// Apply `events` to the shared graph and capture the replay recording.
    ///
    /// This is the only place a served edge batch touches the graph; each
    /// call bumps [`batches_recorded`](Self::batches_recorded). The
    /// returned batch must be replayed against [`graph`](Self::graph) *as
    /// it is now* (post-mutation), per the `apply_recorded` contract.
    pub fn record(&mut self, events: &[EdgeEvent]) -> RecordedBatch {
        self.batches_recorded += 1;
        RecordedBatch::record(&mut self.graph, events)
    }

    /// The shared graph (current, post-recording state).
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// How many edge batches were recorded since construction.
    ///
    /// With N tenants each replaying every window, this stays equal to the
    /// number of flushed windows — the acceptance counter proving the
    /// recording is captured once per batch rather than once per tenant.
    pub fn batches_recorded(&self) -> u64 {
        self.batches_recorded
    }
}
