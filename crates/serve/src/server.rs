//! The serving front: a dedicated reactor thread that batches incoming
//! edge events, drives every tenant's engine on flush, and publishes each
//! tenant's new epoch through its own [`EpochCell`].
//!
//! ```text
//!  submit_batch_to(tenant)  ┌──────────────────────────────────────────────┐
//!  ────────────────────────▶│ rt::exec::EventLoop (one thread)             │
//!   Mailbox<Msg>            │   pending ── count/deadline ──▶ flush:       │
//!   (per-tenant quota       │     coalesce (shared scratch, per-tenant     │
//!    checked at admission)  │       applied/coalesced attribution)         │
//!                           │     GraphIngest::record — ONCE per window    │
//!                           │     round-robin over tenants:                │
//!                           │       FlushPipeline::submit_recorded         │
//!                           │         stage (pool) ∥ that tenant's commit  │
//!                           │     → tenant EpochCell::store(EpochSnapshot) │
//!  reader_for(tenant) ◀─────│                                              │
//!   Arc swap load           └──────────────────────────────────────────────┘
//! ```
//!
//! The edge stream is **global**: every flushed window is recorded on the
//! shared graph exactly once and replayed into every tenant's shards (the
//! shared graph demands it — a tenant that skipped a window would diverge
//! from the graph its PPR states are defined over). Submissions are
//! tenant-*tagged* for admission control and accounting: the per-tenant
//! `submitted/applied/coalesced` counters attribute each event of a window
//! to its submitting tenant, so `submitted = applied + coalesced + pending`
//! holds per tenant and the host rollup sums to the global stream.
//!
//! A flush fires when the pending buffer reaches
//! [`ServeConfig::flush_max_events`] **or** when the oldest pending event
//! turns [`ServeConfig::flush_interval`] old, whichever comes first; the
//! count trigger disarms the deadline timer and vice versa. Readers are
//! fully decoupled: [`EmbeddingReader::snapshot`] is an `Arc` clone under
//! a nanoseconds-scale read lock and never waits on a flush.
//!
//! **Fairness:** each flush walks the tenants starting from a cursor that
//! rotates by one per flush, so no tenant permanently stages first (first
//! stager pays the cold pool) or last (last commit publishes latest). With
//! [`ServeConfig::pipeline_depth`]` = 1` every tenant keeps at most one
//! commit in flight on its own background courier — so with N tenants up
//! to N commits overlap the staging of later tenants — and a short poll
//! timer publishes committed epochs as they land. `flush_sync` and
//! `shutdown` drain every tenant first, so their answers are exact in
//! either mode, and published embeddings are bitwise identical at any
//! depth.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsvd_graph::{CoalesceScratch, EdgeEvent};
use tsvd_rt::exec::{Event, EventLoop, Flow, Mailbox, Timers};

use crate::config::ServeConfig;
use crate::engine::{EngineBack, EngineFront, ShardedEngine};
use crate::flush::{CommitOutcome, FlushPipeline};
use crate::ingest::GraphIngest;
use crate::journal::{DurabilitySink, JournalError, JournalWindows, WindowJournal, JOURNAL_KEEP};
use crate::snapshot::{EpochCell, EpochSnapshot};
use crate::stats::{HostStats, ServeStats, StatsReply};
use crate::tenant::{host_json, TenantEngine, TenantHost, TenantId};

/// Tenant id a single-engine server registers its engine under, and the id
/// the tenant-unaware handle methods route to.
pub const DEFAULT_TENANT: TenantId = 0;

/// Timer key for the deadline-triggered flush.
const FLUSH_TIMER: u64 = 1;

/// Timer key for polling in-flight pipelined commits.
const COMMIT_TIMER: u64 = 2;

/// Poll cadence for in-flight commits. Short enough to not add meaningful
/// publish latency on top of a multi-millisecond refresh; the armed timer
/// also keeps the reactor alive until every commit lands.
const COMMIT_POLL: Duration = Duration::from_micros(500);

/// Messages understood by the serving reactor.
enum Msg {
    /// New events for the pending window, tagged with the submitting
    /// tenant's slot (for per-tenant attribution — the window itself is
    /// global).
    Events(usize, Vec<EdgeEvent>),
    /// Flush whatever is pending now; ack with the epoch watermark every
    /// tenant has then published.
    Flush(mpsc::Sender<u64>),
    /// Serialise the host at a consistent cut (drain in-flight commits,
    /// do NOT flush pending events) and send back `(epoch, host JSON)` —
    /// what the `GetCheckpoint` wire request serves to re-seeding
    /// followers.
    Snapshot(mpsc::Sender<(u64, String)>),
    /// Flush, stop the loop, and hand the host back.
    Shutdown(mpsc::Sender<TenantHost>),
}

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No tenant with this id is registered on the server.
    UnknownTenant(TenantId),
    /// The tenant's submitted-but-unapplied backlog would exceed
    /// [`ServeConfig::tenant_quota`]. Back off and retry after a flush;
    /// other tenants are unaffected.
    QuotaExceeded {
        /// The rejected tenant.
        tenant: TenantId,
        /// Its backlog at admission time.
        pending: u64,
        /// The configured quota.
        quota: u64,
    },
    /// The server thread is gone.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            SubmitError::QuotaExceeded {
                tenant,
                pending,
                quota,
            } => write!(
                f,
                "tenant {tenant} quota exceeded ({pending} pending ≥ quota {quota})"
            ),
            SubmitError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Cross-thread counters shared by the reactor and every handle/reader,
/// one set per tenant.
#[derive(Default)]
struct Counters {
    /// Events accepted by `submit`/`submit_batch` for this tenant (may
    /// still be in flight).
    submitted: AtomicU64,
    /// Window events attributed to this tenant and applied (the tenant's
    /// submissions that survived coalescing).
    applied: AtomicU64,
    /// This tenant's submissions dropped by last-write-wins coalescing.
    coalesced: AtomicU64,
    /// Flushes executed (== epochs published since start).
    batches: AtomicU64,
    /// Flush wall-clock (trigger → publish), nanoseconds: cumulative /
    /// last / worst. In pipelined mode this includes any time the window
    /// waited behind the previous window's in-flight commit.
    flush_nanos_total: AtomicU64,
    flush_nanos_last: AtomicU64,
    flush_nanos_max: AtomicU64,
    /// Phase wall-clock of the most recent published window, nanoseconds.
    stage_nanos_last: AtomicU64,
    commit_nanos_last: AtomicU64,
    /// Cumulative stage/commit overlap across all windows, nanoseconds.
    overlap_nanos_total: AtomicU64,
    /// Gauge: windows staged but not yet published (0 or 1).
    inflight: AtomicU64,
    /// Level-1 block repairs by tier, cumulative across shards/flushes:
    /// in-place patches, incremental updates, full refactorisations.
    blocks_patched: AtomicU64,
    blocks_incremental: AtomicU64,
    blocks_refactored: AtomicU64,
}

/// Host-level counters (shared-ingest scope, not per tenant).
#[derive(Default)]
struct HostCounters {
    /// Mirror of `GraphIngest::batches_recorded`, published per flush.
    batches_recorded: AtomicU64,
}

/// Per staged window bookkeeping a tenant's reactor state needs when the
/// window's commit outcome surfaces (possibly one flush later, in
/// pipelined mode).
struct WindowMeta {
    /// When the flush that staged this window was triggered.
    t_trigger: Instant,
    /// Window events attributed to this tenant (its surviving submissions).
    applied: u64,
    /// This tenant's submissions dropped by coalescing of this window.
    coalesced: u64,
}

/// Reactor-side per-tenant state (single-threaded: no locks needed).
struct TenantState {
    id: TenantId,
    pipe: FlushPipeline,
    /// Metadata of staged-but-unpublished windows, in staging order.
    /// Commits complete in the same order, so pairing is a pop_front.
    meta: VecDeque<WindowMeta>,
    cell: Arc<EpochCell>,
    counters: Arc<Counters>,
    sources: Arc<Vec<u32>>,
    index: Arc<HashMap<u32, usize>>,
}

impl TenantState {
    /// Account for and publish one committed window of this tenant.
    fn complete(&mut self, o: &CommitOutcome) {
        let meta = self
            .meta
            .pop_front()
            .expect("commit outcome without staged-window metadata");
        let nanos = meta.t_trigger.elapsed().as_nanos() as u64;
        // Counters first, publish second: once a reader observes the new
        // epoch in the cell, every counter already accounts for this flush
        // (`batches ≥ epoch`, `applied + coalesced` covers every published
        // window). The reverse order let `stats()` pair a fresh epoch with
        // stale counters. Within the timing counters, `max` is raised
        // before `last` is overwritten so `max ≥ last` holds for any
        // interleaved reader.
        let c = &self.counters;
        c.applied.fetch_add(meta.applied, Ordering::Release);
        c.coalesced.fetch_add(meta.coalesced, Ordering::Release);
        c.flush_nanos_total.fetch_add(nanos, Ordering::Release);
        c.flush_nanos_max.fetch_max(nanos, Ordering::Release);
        c.flush_nanos_last.store(nanos, Ordering::Release);
        c.stage_nanos_last
            .store((o.stage_secs * 1e9) as u64, Ordering::Release);
        c.commit_nanos_last
            .store((o.commit_secs * 1e9) as u64, Ordering::Release);
        c.overlap_nanos_total
            .fetch_add((o.overlapped_secs * 1e9) as u64, Ordering::Release);
        c.blocks_patched
            .fetch_add(o.stats.blocks_patched as u64, Ordering::Release);
        c.blocks_incremental
            .fetch_add(o.stats.blocks_incremental as u64, Ordering::Release);
        c.blocks_refactored
            .fetch_add(o.stats.blocks_recomputed as u64, Ordering::Release);
        c.batches.fetch_add(1, Ordering::Release);
        self.cell.store(EpochSnapshot::with_query(
            o.tagged.clone(),
            self.sources.clone(),
            self.index.clone(),
            o.events_applied,
            o.timings,
            o.query.clone(),
        ));
    }
}

/// Reactor-side state.
struct Inner {
    ingest: GraphIngest,
    tenants: Vec<TenantState>,
    cfg: ServeConfig,
    /// The open (pre-coalesce) global window...
    pending: Vec<EdgeEvent>,
    /// ...and the submitting tenant's slot of each pending event.
    pending_tags: Vec<u32>,
    /// Coalesce workspace, reused across flushes (the `PushScratch` fix
    /// applied to the window map).
    scratch: CoalesceScratch,
    keep: Vec<bool>,
    /// Round-robin cursor: which tenant stages first this flush.
    rr: usize,
    host: Arc<HostCounters>,
    /// Durable write-ahead sink: every flushed window is appended (and
    /// fsync'd) here *before* it is recorded or any tenant commits, so a
    /// published epoch is always recoverable. `None` = no durability.
    sink: Option<Box<dyn DurabilitySink>>,
    /// Bounded in-memory tail of recent windows, shared with the handle —
    /// what `GetWindows` serves to followers.
    journal: Arc<WindowJournal>,
}

impl Inner {
    /// Reconcile the in-flight gauges and the commit poll timer with every
    /// tenant's pipeline state.
    fn sync_poll(&mut self, timers: &mut Timers) {
        let mut any = false;
        for t in &mut self.tenants {
            let inflight = t.pipe.in_flight();
            t.counters
                .inflight
                .store(inflight as u64, Ordering::Release);
            any |= inflight;
        }
        if any {
            if !timers.is_armed(COMMIT_TIMER) {
                timers.arm_after(COMMIT_TIMER, COMMIT_POLL);
            }
        } else {
            timers.cancel(COMMIT_TIMER);
        }
    }

    /// Flush the pending window: coalesce it (attributing survivors and
    /// drops to their submitting tenants), record it **once** on the
    /// shared graph, fan the recording out to every tenant round-robin,
    /// and publish every window whose commit completed during this call.
    fn flush(&mut self, timers: &mut Timers) {
        timers.cancel(FLUSH_TIMER);
        if self.pending.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let raw = std::mem::take(&mut self.pending);
        let tags = std::mem::take(&mut self.pending_tags);
        let nt = self.tenants.len();
        let mut applied = vec![0u64; nt];
        let mut coalesced = vec![0u64; nt];
        let window: Vec<EdgeEvent> = if self.cfg.coalesce {
            let survivors = self.scratch.mark_survivors(&raw, &mut self.keep);
            let mut w = Vec::with_capacity(survivors);
            for (i, e) in raw.iter().enumerate() {
                if self.keep[i] {
                    applied[tags[i] as usize] += 1;
                    w.push(*e);
                } else {
                    coalesced[tags[i] as usize] += 1;
                }
            }
            w
        } else {
            for &tag in &tags {
                applied[tag as usize] += 1;
            }
            raw
        };
        // Durability barrier: the window must be on disk before the graph
        // records it or any tenant can publish it — a crash after this
        // point replays the window; a crash before it never published it.
        // A failed append is a broken durability guarantee, not a
        // recoverable condition: continuing would publish epochs a
        // recovery cannot reproduce.
        let epoch = self.ingest.batches_recorded() + 1;
        if let Some(sink) = &mut self.sink {
            if let Err(e) = sink.append_window(epoch, &window) {
                panic!("WAL append for epoch {epoch} failed: {e}");
            }
        }
        // Record once — the replay fan-out below never touches the graph.
        let rec = self.ingest.record(&window);
        self.host
            .batches_recorded
            .store(self.ingest.batches_recorded(), Ordering::Release);
        self.journal.push(epoch, &window);
        // Fairness: rotate which tenant stages first (and thus whose
        // in-flight commit overlaps every later tenant's stage).
        for k in 0..nt {
            let slot = (self.rr + k) % nt;
            let t = &mut self.tenants[slot];
            t.meta.push_back(WindowMeta {
                t_trigger: t0,
                applied: applied[slot],
                coalesced: coalesced[slot],
            });
            for o in t.pipe.submit_recorded(self.ingest.graph(), &rec, &window) {
                t.complete(&o);
            }
        }
        self.rr = (self.rr + 1) % nt.max(1);
        self.sync_poll(timers);
        self.maybe_checkpoint(timers, epoch);
    }

    /// Periodic checkpoint: every `cfg.checkpoint_every` flushed windows
    /// (and only with a sink attached), drain the pipelines and hand the
    /// full host serialisation to the sink, which compacts the WAL behind
    /// the checkpointed epoch.
    fn maybe_checkpoint(&mut self, timers: &mut Timers, epoch: u64) {
        let every = self.cfg.checkpoint_every;
        if self.sink.is_none() || every == 0 || !epoch.is_multiple_of(every) {
            return;
        }
        // Checkpoint state must include every window ≤ epoch: join any
        // in-flight commits first. This stalls the pipeline for one
        // checkpoint — the price of a consistent cut.
        self.drain();
        self.sync_poll(timers);
        self.checkpoint_now(epoch);
    }

    /// Serialise the host at its current state. Pipelines must be drained
    /// first — an in-flight commit would make the cut torn.
    fn serialise_host(&self) -> tsvd_rt::json::Json {
        let parts: Vec<(TenantId, &EngineFront, &EngineBack)> = self
            .tenants
            .iter()
            .map(|t| (t.id, t.pipe.front(), t.pipe.back()))
            .collect();
        host_json(&self.ingest, &parts)
    }

    /// Serialise the host (pipelines must be drained) and write it through
    /// the sink. Same failure policy as the append path.
    fn checkpoint_now(&mut self, epoch: u64) {
        let json = self.serialise_host();
        if let Some(sink) = &mut self.sink {
            if let Err(e) = sink.checkpoint(epoch, &json) {
                panic!("checkpoint at epoch {epoch} failed: {e}");
            }
        }
    }

    /// Poll every tenant's in-flight commit, publishing whatever landed.
    fn poll_commits(&mut self) {
        for t in &mut self.tenants {
            if let Some(o) = t.pipe.try_complete() {
                t.complete(&o);
            }
        }
    }

    /// Block until no tenant has a window in flight, publishing whatever
    /// completes. After this, every tenant's served epoch reflects every
    /// flushed window.
    fn drain(&mut self) {
        for t in &mut self.tenants {
            while let Some(o) = t.pipe.drain() {
                t.complete(&o);
            }
        }
    }

    /// The epoch watermark every tenant has published.
    fn min_epoch(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.cell.epoch())
            .min()
            .unwrap_or(0)
    }

    fn on_events(&mut self, timers: &mut Timers, slot: usize, events: Vec<EdgeEvent>) {
        if events.is_empty() {
            return;
        }
        self.pending_tags
            .resize(self.pending_tags.len() + events.len(), slot as u32);
        self.pending.extend(events);
        if self.pending.len() >= self.cfg.flush_max_events {
            self.flush(timers);
        } else if !timers.is_armed(FLUSH_TIMER) {
            // Deadline counts from the window's *oldest* event, i.e. from
            // the first submission after the previous flush.
            timers.arm_after(FLUSH_TIMER, self.cfg.flush_interval());
        }
    }
}

/// A running embedding server: owns a [`TenantHost`] behind a reactor
/// thread. Construct with [`EmbeddingServer::start`] (one engine, tenant
/// [`DEFAULT_TENANT`]) or [`EmbeddingServer::start_host`] (N registered
/// tenants); interact through the returned [`ServerHandle`].
pub struct EmbeddingServer;

/// Handle-side per-tenant shared state.
struct TenantHandle {
    id: TenantId,
    cell: Arc<EpochCell>,
    counters: Arc<Counters>,
    num_shards: usize,
}

impl EmbeddingServer {
    /// Spawn the reactor thread over a single engine (registered as tenant
    /// [`DEFAULT_TENANT`]) and return its handle.
    pub fn start(engine: ShardedEngine, cfg: ServeConfig) -> ServerHandle {
        Self::start_host(TenantHost::from_engine(engine, DEFAULT_TENANT), cfg)
    }

    /// Spawn the reactor thread over a host with at least one registered
    /// tenant and return its handle.
    pub fn start_host(host: TenantHost, cfg: ServeConfig) -> ServerHandle {
        Self::start_host_inner(host, cfg, None)
    }

    /// Like [`start`](Self::start), with a durability sink attached: every
    /// flushed window is appended (and made durable) through `sink` before
    /// its epoch is published, and full checkpoints are written every
    /// [`ServeConfig::checkpoint_every`] windows and at shutdown.
    pub fn start_with_store(
        engine: ShardedEngine,
        cfg: ServeConfig,
        sink: Box<dyn DurabilitySink>,
    ) -> ServerHandle {
        Self::start_host_with_store(TenantHost::from_engine(engine, DEFAULT_TENANT), cfg, sink)
    }

    /// Like [`start_host`](Self::start_host), with a durability sink.
    pub fn start_host_with_store(
        host: TenantHost,
        cfg: ServeConfig,
        sink: Box<dyn DurabilitySink>,
    ) -> ServerHandle {
        Self::start_host_inner(host, cfg, Some(sink))
    }

    fn start_host_inner(
        host: TenantHost,
        cfg: ServeConfig,
        sink: Option<Box<dyn DurabilitySink>>,
    ) -> ServerHandle {
        cfg.validate();
        assert!(host.num_tenants() >= 1, "host has no tenants registered");
        let (ingest, engines) = host.into_parts();
        let mut tenants = Vec::with_capacity(engines.len());
        let mut handles = Vec::with_capacity(engines.len());
        let mut ids = HashMap::new();
        for (slot, t) in engines.into_iter().enumerate() {
            let TenantEngine { id, front, back } = t;
            let sources = Arc::new(front.sources().to_vec());
            let index: Arc<HashMap<u32, usize>> =
                Arc::new(sources.iter().enumerate().map(|(i, &v)| (v, i)).collect());
            let counters = Arc::new(Counters::default());
            let num_shards = front.num_shards();
            // The pipeline owns the query-state refresh chain; epoch 0's
            // snapshot shares its initial state instead of building twice.
            let pipe = FlushPipeline::for_tenant(front, back, cfg.pipeline_depth);
            let cell = Arc::new(EpochCell::new(EpochSnapshot::with_query(
                // Epoch 0 (the initial factorisation) is served immediately.
                pipe.back().tagged(),
                sources.clone(),
                index.clone(),
                pipe.back().events_applied(),
                pipe.back().timings(),
                pipe.query(),
            )));
            ids.insert(id, slot);
            handles.push(TenantHandle {
                id,
                cell: cell.clone(),
                counters: counters.clone(),
                num_shards,
            });
            tenants.push(TenantState {
                id,
                pipe,
                meta: VecDeque::new(),
                cell,
                counters,
                sources,
                index,
            });
        }
        let host_counters = Arc::new(HostCounters::default());
        host_counters
            .batches_recorded
            .store(ingest.batches_recorded(), Ordering::Release);
        let keep = if cfg.journal_keep == 0 {
            JOURNAL_KEEP
        } else {
            cfg.journal_keep
        };
        let journal = Arc::new(WindowJournal::new(ingest.batches_recorded(), keep));
        let inner = Inner {
            ingest,
            tenants,
            cfg,
            pending: Vec::new(),
            pending_tags: Vec::new(),
            scratch: CoalesceScratch::new(),
            keep: Vec::new(),
            rr: 0,
            host: host_counters.clone(),
            sink,
            journal: journal.clone(),
        };
        let (mailbox, ev) = EventLoop::new();
        let join = std::thread::Builder::new()
            .name("tsvd-serve".into())
            .spawn(move || {
                let mut inner = inner;
                let mut host_out: Option<mpsc::Sender<TenantHost>> = None;
                ev.run(|timers, event| match event {
                    Event::Message(Msg::Events(slot, events)) => {
                        inner.on_events(timers, slot, events);
                        Flow::Continue
                    }
                    Event::Message(Msg::Flush(ack)) => {
                        // Drain before acking: flush_sync promises the
                        // returned watermark covers everything this handle
                        // submitted, even windows still in flight.
                        inner.flush(timers);
                        inner.drain();
                        inner.sync_poll(timers);
                        let _ = ack.send(inner.min_epoch());
                        Flow::Continue
                    }
                    Event::Message(Msg::Snapshot(tx)) => {
                        // Consistent cut at whatever is *recorded*: join
                        // in-flight commits but leave pending (unflushed)
                        // events pending — they belong to a later epoch.
                        inner.drain();
                        inner.sync_poll(timers);
                        let epoch = inner.ingest.batches_recorded();
                        let json = inner.serialise_host();
                        let _ = tx.send((epoch, json.to_string()));
                        Flow::Continue
                    }
                    Event::Message(Msg::Shutdown(tx)) => {
                        inner.flush(timers);
                        host_out = Some(tx);
                        Flow::Stop
                    }
                    Event::Timer(FLUSH_TIMER) => {
                        inner.flush(timers);
                        Flow::Continue
                    }
                    Event::Timer(COMMIT_TIMER) => {
                        inner.poll_commits();
                        inner.sync_poll(timers);
                        Flow::Continue
                    }
                    Event::Timer(_) => Flow::Continue,
                });
                // Publish any windows still in flight (the shutdown-with-
                // staged-window drain), then hand the host back whole.
                inner.drain();
                // Clean shutdown checkpoints at the final epoch, so a
                // restart seeds from here with nothing left to replay (and
                // the sink can compact the whole WAL away).
                if inner.sink.is_some() {
                    let epoch = inner.ingest.batches_recorded();
                    inner.checkpoint_now(epoch);
                }
                if let Some(tx) = host_out {
                    let engines = inner
                        .tenants
                        .into_iter()
                        .map(|t| {
                            let (front, back, last) = t.pipe.into_tenant_parts();
                            debug_assert!(last.is_none(), "drained pipeline had an outcome");
                            TenantEngine {
                                id: t.id,
                                front,
                                back,
                            }
                        })
                        .collect();
                    let _ = tx.send(TenantHost::from_parts(inner.ingest, engines));
                }
            })
            .expect("spawn tsvd-serve reactor");
        ServerHandle {
            mailbox,
            tenants: handles,
            ids,
            host: host_counters,
            cfg,
            journal,
            join,
        }
    }
}

/// Client handle to a running [`EmbeddingServer`].
///
/// Tenant-unaware methods ([`submit_batch`](Self::submit_batch),
/// [`reader`](Self::reader), [`stats`](Self::stats), ...) route to the
/// server's first tenant — [`DEFAULT_TENANT`] for a server started from a
/// single engine — so single-tenant callers never name tenants.
pub struct ServerHandle {
    mailbox: Mailbox<Msg>,
    tenants: Vec<TenantHandle>,
    ids: HashMap<TenantId, usize>,
    host: Arc<HostCounters>,
    cfg: ServeConfig,
    journal: Arc<WindowJournal>,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// Submit one event; returns `false` if the server is gone.
    pub fn submit(&self, event: EdgeEvent) -> bool {
        self.submit_batch(vec![event])
    }

    /// Submit a batch of events to the first tenant (one mailbox message;
    /// the server may split or merge it across flush windows).
    pub fn submit_batch(&self, events: Vec<EdgeEvent>) -> bool {
        self.submit_batch_to(self.tenants[0].id, events).is_ok()
    }

    /// Submit a batch of events on behalf of `tenant`, enforcing its
    /// admission quota (see [`ServeConfig::tenant_quota`]).
    ///
    /// The quota check is advisory under concurrent submitters (two racing
    /// admissions may overshoot by one batch), which is fine for a
    /// backpressure signal — the reactor itself never rejects.
    pub fn submit_batch_to(
        &self,
        tenant: TenantId,
        events: Vec<EdgeEvent>,
    ) -> Result<(), SubmitError> {
        let &slot = self
            .ids
            .get(&tenant)
            .ok_or(SubmitError::UnknownTenant(tenant))?;
        if events.is_empty() {
            return Ok(());
        }
        let n = events.len() as u64;
        let c = &self.tenants[slot].counters;
        if let Some(quota) = self.cfg.quota() {
            let submitted = c.submitted.load(Ordering::Acquire);
            let applied = c.applied.load(Ordering::Acquire);
            let coalesced = c.coalesced.load(Ordering::Acquire);
            let pending = submitted.saturating_sub(applied + coalesced);
            if pending + n > quota {
                return Err(SubmitError::QuotaExceeded {
                    tenant,
                    pending,
                    quota,
                });
            }
        }
        // Count *before* handing the batch to the reactor: the reactor may
        // flush (and bump `applied`) before this thread runs again, and
        // `submitted ≥ applied + coalesced` must hold for every observer.
        // The increment is undone on the (server already gone) failure path.
        c.submitted.fetch_add(n, Ordering::Release);
        if self.mailbox.send(Msg::Events(slot, events)) {
            Ok(())
        } else {
            c.submitted.fetch_sub(n, Ordering::Release);
            Err(SubmitError::Closed)
        }
    }

    /// Force a flush of everything submitted so far (from this handle) and
    /// block until every tenant applied it; returns the epoch watermark
    /// then being served by all tenants.
    pub fn flush_sync(&self) -> u64 {
        let (tx, rx) = mpsc::channel();
        if !self.mailbox.send(Msg::Flush(tx)) {
            return self.min_epoch();
        }
        rx.recv().unwrap_or_else(|_| self.min_epoch())
    }

    fn min_epoch(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.cell.epoch())
            .min()
            .unwrap_or(0)
    }

    /// A cheap, cloneable read-side handle on the first tenant.
    pub fn reader(&self) -> EmbeddingReader {
        EmbeddingReader {
            cell: self.tenants[0].cell.clone(),
        }
    }

    /// A read-side handle on `tenant` (`None` if unknown).
    pub fn reader_for(&self, tenant: TenantId) -> Option<EmbeddingReader> {
        let &slot = self.ids.get(&tenant)?;
        Some(EmbeddingReader {
            cell: self.tenants[slot].cell.clone(),
        })
    }

    /// Registered tenant ids, in registration order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|t| t.id).collect()
    }

    /// The first tenant's currently served epoch.
    pub fn epoch(&self) -> u64 {
        self.tenants[0].cell.epoch()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// Up to `max` flushed windows with epochs `> after_epoch`, from the
    /// bounded in-memory journal — what the `GetWindows` wire request
    /// serves to followers. Windows that aged out of the journal yield
    /// [`JournalError::Compacted`]; the follower must re-seed from a
    /// checkpoint.
    pub fn journal_windows(
        &self,
        after_epoch: u64,
        max: usize,
    ) -> Result<JournalWindows, JournalError> {
        self.journal.windows_after(after_epoch, max)
    }

    /// A consistent-cut serialisation of the whole host: `(epoch, host
    /// JSON)` with every window ≤ `epoch` applied and nothing newer. The
    /// reactor drains in-flight commits first (pending *unflushed* events
    /// stay pending — they belong to a later epoch). This is what the
    /// `GetCheckpoint` wire request serves to re-seeding followers.
    /// `None` if the server is gone.
    pub fn checkpoint_json(&self) -> Option<(u64, String)> {
        let (tx, rx) = mpsc::channel();
        if !self.mailbox.send(Msg::Snapshot(tx)) {
            return None;
        }
        rx.recv().ok()
    }

    /// A point-in-time counter snapshot of the first tenant.
    pub fn stats(&self) -> ServeStats {
        self.stats_of(&self.tenants[0])
    }

    /// A point-in-time counter snapshot of `tenant` (`None` if unknown).
    pub fn stats_for(&self, tenant: TenantId) -> Option<ServeStats> {
        let &slot = self.ids.get(&tenant)?;
        Some(self.stats_of(&self.tenants[slot]))
    }

    /// The host-level rollup across every tenant.
    ///
    /// Per-tenant snapshots are taken first and the shared
    /// `batches_recorded` mirror last: the reactor publishes the mirror
    /// before any tenant commits the window, so the rollup never shows an
    /// epoch the recording counter has not covered.
    pub fn host_stats(&self) -> HostStats {
        let per: Vec<ServeStats> = self.tenants.iter().map(|t| self.stats_of(t)).collect();
        let batches_recorded = self.host.batches_recorded.load(Ordering::Acquire);
        HostStats {
            tenants: per.len(),
            batches_recorded,
            epoch: per.iter().map(|s| s.epoch).min().unwrap_or(0),
            events_submitted: per.iter().map(|s| s.events_submitted).sum(),
            events_applied: per.iter().map(|s| s.events_applied).sum(),
            events_coalesced: per.iter().map(|s| s.events_coalesced).sum(),
            events_pending: per.iter().map(|s| s.events_pending).sum(),
        }
    }

    /// The wire `Stats` answer for `tenant`: its stats plus the host
    /// rollup (`None` if the tenant is unknown).
    pub fn stats_reply(&self, tenant: TenantId) -> Option<StatsReply> {
        Some(StatsReply {
            tenant: self.stats_for(tenant)?,
            host: self.host_stats(),
        })
    }

    /// Counter snapshot of one tenant.
    ///
    /// Read order is load-bearing: the epoch snapshot is taken *first*
    /// (the flush path updates counters before publishing, so counters can
    /// only be ahead of the observed epoch, never behind), and `submitted`
    /// is read *last* with `Acquire` (the submit path counts before the
    /// mailbox send that happens-before `applied`/`coalesced` increments,
    /// so reading it after them keeps `submitted ≥ applied + coalesced`).
    fn stats_of(&self, t: &TenantHandle) -> ServeStats {
        let c = &t.counters;
        let snap = t.cell.load();
        let batches = c.batches.load(Ordering::Acquire);
        let applied = c.applied.load(Ordering::Acquire);
        let coalesced = c.coalesced.load(Ordering::Acquire);
        let total_ns = c.flush_nanos_total.load(Ordering::Acquire);
        let submitted = c.submitted.load(Ordering::Acquire);
        // `last` before `max`: the flush path raises `max` before storing
        // `last`, so this order guarantees `max ≥ last` in the result.
        let last_ns = c.flush_nanos_last.load(Ordering::Acquire);
        let max_ns = c.flush_nanos_max.load(Ordering::Acquire);
        let stage_ns = c.stage_nanos_last.load(Ordering::Acquire);
        let commit_ns = c.commit_nanos_last.load(Ordering::Acquire);
        let overlap_ns = c.overlap_nanos_total.load(Ordering::Acquire);
        let inflight = c.inflight.load(Ordering::Acquire);
        let blocks_patched = c.blocks_patched.load(Ordering::Acquire);
        let blocks_incremental = c.blocks_incremental.load(Ordering::Acquire);
        let blocks_refactored = c.blocks_refactored.load(Ordering::Acquire);
        ServeStats {
            tenant: t.id,
            epoch: snap.epoch(),
            num_shards: t.num_shards,
            events_submitted: submitted,
            events_applied: applied,
            events_coalesced: coalesced,
            events_pending: submitted.saturating_sub(applied + coalesced),
            batches_flushed: batches,
            flush_ms_last: last_ns as f64 / 1e6,
            flush_ms_mean: if batches == 0 {
                0.0
            } else {
                total_ns as f64 / batches as f64 / 1e6
            },
            flush_ms_max: max_ns as f64 / 1e6,
            pipeline_depth: self.cfg.pipeline_depth,
            windows_inflight: inflight,
            stage_ms_last: stage_ns as f64 / 1e6,
            commit_ms_last: commit_ns as f64 / 1e6,
            overlapped_secs: overlap_ns as f64 / 1e9,
            svd_update: self.cfg.svd_update,
            blocks_patched,
            blocks_incremental,
            blocks_refactored,
            timings: snap.timings(),
        }
    }

    /// Flush, stop the reactor, and take the whole host back.
    pub fn shutdown_host(self) -> TenantHost {
        let (tx, rx) = mpsc::channel();
        let sent = self.mailbox.send(Msg::Shutdown(tx));
        assert!(sent, "server thread already gone");
        let host = rx.recv().expect("server thread dropped the host");
        self.join.join().expect("tsvd-serve reactor panicked");
        host
    }

    /// Flush, stop the reactor, and take the engine back (e.g. to compare
    /// against an offline replay, or to persist). Single-tenant servers
    /// only; multi-tenant hosts use [`shutdown_host`](Self::shutdown_host).
    pub fn shutdown(self) -> ShardedEngine {
        self.shutdown_host().into_single_engine()
    }
}

/// Read-only, cloneable view of one tenant's served embedding. Loading a
/// snapshot never blocks on the writer; a held snapshot is immutable.
#[derive(Clone)]
pub struct EmbeddingReader {
    cell: Arc<EpochCell>,
}

impl EmbeddingReader {
    /// Wrap an epoch cell owned by something other than a server — the
    /// follower publishes through the same cell type, so its readers get
    /// the identical wait-free interface.
    pub(crate) fn from_cell(cell: Arc<EpochCell>) -> EmbeddingReader {
        EmbeddingReader { cell }
    }

    /// The currently served snapshot (whole-epoch consistent).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.cell.load()
    }

    /// The currently served epoch, lock-free.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The embedding of `node` in the current snapshot, copied out.
    pub fn get(&self, node: u32) -> Option<Vec<f64>> {
        self.snapshot().get(node).map(|v| v.to_vec())
    }

    /// Block (polling) until the served epoch reaches `epoch`; `false` on
    /// timeout. Test/demo convenience — production readers just `load`.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.epoch() < epoch {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tsvd_core::TreeSvdConfig;
    use tsvd_graph::DynGraph;
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn setup(num_shards: usize) -> (DynGraph, ShardedEngine) {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 60usize;
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < 240 {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        let sources: Vec<u32> = (0..8).collect();
        let cfg = TreeSvdConfig {
            dim: 4,
            num_blocks: 3,
            ..Default::default()
        };
        let engine = ShardedEngine::new(&g, &sources, num_shards, PprConfig::default(), cfg);
        (g, engine)
    }

    #[test]
    fn serves_epoch_zero_immediately() {
        let (_, engine) = setup(2);
        let server = EmbeddingServer::start(engine, ServeConfig::default());
        let reader = server.reader();
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.sources(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(snap.verify());
        assert!(snap.get(3).is_some());
        assert!(snap.get(59).is_none());
        server.shutdown();
    }

    #[test]
    fn count_trigger_flushes_without_waiting_for_deadline() {
        let (_, engine) = setup(2);
        let cfg = ServeConfig {
            flush_max_events: 4,
            flush_interval_ms: 60_000, // deadline effectively off
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let reader = server.reader();
        let events: Vec<EdgeEvent> = (0..4).map(|i| EdgeEvent::insert(50, 51 + i)).collect();
        assert!(server.submit_batch(events));
        assert!(
            reader.wait_for_epoch(1, Duration::from_secs(10)),
            "count trigger did not flush"
        );
        let stats = server.stats();
        assert_eq!(stats.tenant, DEFAULT_TENANT);
        assert_eq!(stats.batches_flushed, 1);
        assert_eq!(stats.events_submitted, 4);
        assert_eq!(stats.events_applied + stats.events_coalesced, 4);
        assert_eq!(stats.events_pending, 0);
        let engine = server.shutdown();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.batches_recorded(), 1);
    }

    #[test]
    fn deadline_trigger_flushes_partial_window() {
        let (_, engine) = setup(3);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 5,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let reader = server.reader();
        assert!(server.submit(EdgeEvent::insert(40, 41)));
        assert!(
            reader.wait_for_epoch(1, Duration::from_secs(10)),
            "deadline trigger did not flush"
        );
        assert_eq!(server.stats().events_applied, 1);
        server.shutdown();
    }

    #[test]
    fn flush_sync_applies_everything_submitted() {
        let (_, engine) = setup(2);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 60_000,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        server.submit_batch(vec![
            EdgeEvent::insert(30, 31),
            EdgeEvent::insert(31, 32),
            EdgeEvent::delete(30, 31),
        ]);
        let epoch = server.flush_sync();
        assert_eq!(epoch, 1);
        // Idempotent when nothing is pending: no empty epoch published.
        assert_eq!(server.flush_sync(), 1);
        let stats = server.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.batches_flushed, 1);
        assert!(stats.flush_ms_last > 0.0);
        assert!(stats.flush_ms_max >= stats.flush_ms_last);
        server.shutdown();
    }

    #[test]
    fn coalescing_counts_dropped_events() {
        let (_, engine) = setup(1);
        let server = EmbeddingServer::start(
            engine,
            ServeConfig {
                flush_max_events: 1_000_000,
                flush_interval_ms: 60_000,
                coalesce: true,
                num_shards: 1,
                ..Default::default()
            },
        );
        // Same pair three times: last write wins, two events coalesced away.
        server.submit_batch(vec![
            EdgeEvent::insert(20, 21),
            EdgeEvent::delete(20, 21),
            EdgeEvent::insert(20, 21),
            EdgeEvent::insert(22, 23),
        ]);
        server.flush_sync();
        let stats = server.stats();
        assert_eq!(stats.events_submitted, 4);
        assert_eq!(stats.events_applied, 2);
        assert_eq!(stats.events_coalesced, 2);
        server.shutdown();
    }

    #[test]
    fn readers_hold_consistent_epochs_across_swaps() {
        let (_, engine) = setup(2);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 60_000,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let reader = server.reader();
        let held0 = reader.snapshot();
        server.submit(EdgeEvent::insert(10, 11));
        server.flush_sync();
        let held1 = reader.snapshot();
        assert_eq!(held0.epoch(), 0);
        assert_eq!(held1.epoch(), 1);
        // Old epoch stays alive and internally consistent after the swap.
        assert!(held0.verify());
        assert!(held1.verify());
        server.shutdown();
    }

    #[test]
    fn unknown_tenant_rejected_at_admission() {
        let (_, engine) = setup(1);
        let server = EmbeddingServer::start(engine, ServeConfig::default());
        let err = server
            .submit_batch_to(99, vec![EdgeEvent::insert(0, 1)])
            .expect_err("tenant 99 is not registered");
        assert_eq!(err, SubmitError::UnknownTenant(99));
        assert!(server.reader_for(99).is_none());
        assert!(server.stats_for(99).is_none());
        assert_eq!(server.tenant_ids(), vec![DEFAULT_TENANT]);
        server.shutdown();
    }

    #[test]
    fn quota_backpressures_at_admission_and_releases_after_flush() {
        let (_, engine) = setup(1);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 60_000,
            tenant_quota: 4,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let batch = |k: u32| vec![EdgeEvent::insert(10 + k, 20 + k), EdgeEvent::insert(11, 21)];
        server.submit_batch_to(DEFAULT_TENANT, batch(0)).unwrap();
        server.submit_batch_to(DEFAULT_TENANT, batch(1)).unwrap();
        // 4 pending = quota: the next batch must be rejected, with the
        // backlog reported.
        match server.submit_batch_to(DEFAULT_TENANT, batch(2)) {
            Err(SubmitError::QuotaExceeded {
                tenant,
                pending,
                quota,
            }) => {
                assert_eq!(tenant, DEFAULT_TENANT);
                assert_eq!(pending, 4);
                assert_eq!(quota, 4);
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // Applying the backlog frees the quota.
        server.flush_sync();
        server.submit_batch_to(DEFAULT_TENANT, batch(2)).unwrap();
        server.flush_sync();
        let stats = server.stats();
        assert_eq!(stats.events_submitted, 6);
        assert_eq!(stats.events_pending, 0);
        let host = server.host_stats();
        assert_eq!(host.tenants, 1);
        assert_eq!(host.events_submitted, 6);
        assert_eq!(host.batches_recorded, 2);
        server.shutdown();
    }
}
