//! The serving front: a dedicated reactor thread that batches incoming
//! edge events, drives the [`ShardedEngine`] on flush, and publishes each
//! new epoch through an [`EpochCell`].
//!
//! ```text
//!  submit()        ┌────────────────────────────────────────────┐
//!  ───────────────▶│ rt::exec::EventLoop (one thread)           │
//!   Mailbox<Msg>   │   pending ── count/deadline ──▶ flush:     │
//!                  │     coalesce → FlushPipeline::submit_window│
//!                  │       stage (pool) ∥ commit of window k−1  │
//!                  │     → EpochCell::store(EpochSnapshot)      │
//!  reader() ◀──────│                                            │
//!   Arc swap load  └────────────────────────────────────────────┘
//! ```
//!
//! A flush fires when the pending buffer reaches
//! [`ServeConfig::flush_max_events`] **or** when the oldest pending event
//! turns [`ServeConfig::flush_interval`] old, whichever comes first; the
//! count trigger disarms the deadline timer and vice versa. Readers are
//! fully decoupled: [`EmbeddingReader::snapshot`] is an `Arc` clone under
//! a nanoseconds-scale read lock and never waits on a flush.
//!
//! With [`ServeConfig::pipeline_depth`]` = 1`, flushes run through the
//! two-stage [`FlushPipeline`]: the reactor stages each window (graph +
//! PPR replay) while the previous window's Tree-SVD commit is still in
//! flight on a background courier, and a short poll timer publishes the
//! committed epoch as soon as it lands. `flush_sync` and `shutdown` drain
//! the pipeline first, so their epoch/engine answers are exact in either
//! mode, and published embeddings are bitwise identical at any depth.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsvd_graph::EdgeEvent;
use tsvd_rt::exec::{Event, EventLoop, Flow, Mailbox, Timers};

use crate::config::ServeConfig;
use crate::engine::ShardedEngine;
use crate::flush::{CommitOutcome, FlushPipeline};
use crate::snapshot::{EpochCell, EpochSnapshot};
use crate::stats::ServeStats;

/// Timer key for the deadline-triggered flush.
const FLUSH_TIMER: u64 = 1;

/// Timer key for polling the in-flight pipelined commit.
const COMMIT_TIMER: u64 = 2;

/// Poll cadence for the in-flight commit. Short enough to not add
/// meaningful publish latency on top of a multi-millisecond refresh; the
/// armed timer also keeps the reactor alive until the commit lands.
const COMMIT_POLL: Duration = Duration::from_micros(500);

/// Messages understood by the serving reactor.
enum Msg {
    /// New events for the pending window.
    Events(Vec<EdgeEvent>),
    /// Flush whatever is pending now; ack with the resulting epoch.
    Flush(mpsc::Sender<u64>),
    /// Flush, stop the loop, and hand the engine back.
    Shutdown(mpsc::Sender<ShardedEngine>),
}

/// Cross-thread counters shared by the reactor and every handle/reader.
#[derive(Default)]
struct Counters {
    /// Events accepted by `submit`/`submit_batch` (may still be in flight).
    submitted: AtomicU64,
    /// Events actually applied by the engine (post-coalesce).
    applied: AtomicU64,
    /// Events dropped by last-write-wins coalescing.
    coalesced: AtomicU64,
    /// Flushes executed (== epochs published since start).
    batches: AtomicU64,
    /// Flush wall-clock (trigger → publish), nanoseconds: cumulative /
    /// last / worst. In pipelined mode this includes any time the window
    /// waited behind the previous window's in-flight commit.
    flush_nanos_total: AtomicU64,
    flush_nanos_last: AtomicU64,
    flush_nanos_max: AtomicU64,
    /// Phase wall-clock of the most recent published window, nanoseconds.
    stage_nanos_last: AtomicU64,
    commit_nanos_last: AtomicU64,
    /// Cumulative stage/commit overlap across all windows, nanoseconds.
    overlap_nanos_total: AtomicU64,
    /// Gauge: windows staged but not yet published (0 or 1).
    inflight: AtomicU64,
    /// Level-1 block repairs by tier, cumulative across shards/flushes:
    /// in-place patches, incremental updates, full refactorisations.
    blocks_patched: AtomicU64,
    blocks_incremental: AtomicU64,
    blocks_refactored: AtomicU64,
}

/// Per staged window bookkeeping the reactor needs when the window's
/// commit outcome surfaces (possibly one flush later, in pipelined mode).
struct WindowMeta {
    /// When the flush that staged this window was triggered.
    t_trigger: Instant,
    /// Events dropped by last-write-wins coalescing of this window.
    coalesced: u64,
}

/// Reactor-side state (single-threaded: no locks needed).
struct Inner {
    pipe: FlushPipeline,
    cfg: ServeConfig,
    pending: Vec<EdgeEvent>,
    /// Metadata of staged-but-unpublished windows, in staging order.
    /// Commits complete in the same order, so pairing is a pop_front.
    window_meta: VecDeque<WindowMeta>,
    cell: Arc<EpochCell>,
    counters: Arc<Counters>,
    sources: Arc<Vec<u32>>,
    index: Arc<HashMap<u32, usize>>,
}

impl Inner {
    /// Account for and publish one committed window.
    fn complete(&mut self, o: &CommitOutcome) {
        let meta = self
            .window_meta
            .pop_front()
            .expect("commit outcome without staged-window metadata");
        let nanos = meta.t_trigger.elapsed().as_nanos() as u64;
        // Counters first, publish second: once a reader observes the new
        // epoch in the cell, every counter already accounts for this flush
        // (`batches ≥ epoch`, `applied + coalesced` covers every published
        // window). The reverse order let `stats()` pair a fresh epoch with
        // stale counters. Within the timing counters, `max` is raised
        // before `last` is overwritten so `max ≥ last` holds for any
        // interleaved reader.
        let c = &self.counters;
        c.applied.fetch_add(o.num_events as u64, Ordering::Release);
        c.coalesced.fetch_add(meta.coalesced, Ordering::Release);
        c.flush_nanos_total.fetch_add(nanos, Ordering::Release);
        c.flush_nanos_max.fetch_max(nanos, Ordering::Release);
        c.flush_nanos_last.store(nanos, Ordering::Release);
        c.stage_nanos_last
            .store((o.stage_secs * 1e9) as u64, Ordering::Release);
        c.commit_nanos_last
            .store((o.commit_secs * 1e9) as u64, Ordering::Release);
        c.overlap_nanos_total
            .fetch_add((o.overlapped_secs * 1e9) as u64, Ordering::Release);
        c.blocks_patched
            .fetch_add(o.stats.blocks_patched as u64, Ordering::Release);
        c.blocks_incremental
            .fetch_add(o.stats.blocks_incremental as u64, Ordering::Release);
        c.blocks_refactored
            .fetch_add(o.stats.blocks_recomputed as u64, Ordering::Release);
        c.batches.fetch_add(1, Ordering::Release);
        self.cell.store(EpochSnapshot::new(
            o.tagged.clone(),
            self.sources.clone(),
            self.index.clone(),
            o.events_applied,
            o.timings,
        ));
    }

    /// Reconcile the in-flight gauge and the commit poll timer with the
    /// pipeline state.
    fn sync_poll(&mut self, timers: &mut Timers) {
        if self.pipe.in_flight() {
            self.counters.inflight.store(1, Ordering::Release);
            if !timers.is_armed(COMMIT_TIMER) {
                timers.arm_after(COMMIT_TIMER, COMMIT_POLL);
            }
        } else {
            self.counters.inflight.store(0, Ordering::Release);
            timers.cancel(COMMIT_TIMER);
        }
    }

    /// Stage the pending window (if any) through the pipeline and publish
    /// every window whose commit completed during this call.
    fn flush(&mut self, timers: &mut Timers) {
        timers.cancel(FLUSH_TIMER);
        if self.pending.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let raw = std::mem::take(&mut self.pending);
        let window = if self.cfg.coalesce {
            tsvd_graph::coalesce(&raw)
        } else {
            raw.clone()
        };
        self.window_meta.push_back(WindowMeta {
            t_trigger: t0,
            coalesced: (raw.len() - window.len()) as u64,
        });
        for o in self.pipe.submit_window(&window) {
            self.complete(&o);
        }
        self.sync_poll(timers);
    }

    /// Block until no window is in flight, publishing whatever completes.
    /// After this, the served epoch reflects every flushed window.
    fn drain(&mut self) {
        while let Some(o) = self.pipe.drain() {
            self.complete(&o);
        }
    }

    fn on_events(&mut self, timers: &mut Timers, events: Vec<EdgeEvent>) {
        if events.is_empty() {
            return;
        }
        self.pending.extend(events);
        if self.pending.len() >= self.cfg.flush_max_events {
            self.flush(timers);
        } else if !timers.is_armed(FLUSH_TIMER) {
            // Deadline counts from the window's *oldest* event, i.e. from
            // the first submission after the previous flush.
            timers.arm_after(FLUSH_TIMER, self.cfg.flush_interval());
        }
    }
}

/// A running embedding server: owns a [`ShardedEngine`] behind a reactor
/// thread. Construct with [`EmbeddingServer::start`]; interact through the
/// returned [`ServerHandle`].
pub struct EmbeddingServer;

impl EmbeddingServer {
    /// Spawn the reactor thread over `engine` and return its handle.
    pub fn start(engine: ShardedEngine, cfg: ServeConfig) -> ServerHandle {
        cfg.validate();
        let sources = Arc::new(engine.sources().to_vec());
        let index: Arc<HashMap<u32, usize>> =
            Arc::new(sources.iter().enumerate().map(|(i, &v)| (v, i)).collect());
        let counters = Arc::new(Counters::default());
        let num_shards = engine.num_shards();
        let inner = Inner {
            cell: Arc::new(EpochCell::new(EpochSnapshot::new(
                // Epoch 0 (the initial factorisation) is served immediately.
                engine.tagged(),
                sources.clone(),
                index.clone(),
                engine.events_applied(),
                engine.timings(),
            ))),
            pipe: FlushPipeline::new(engine, cfg.pipeline_depth),
            cfg,
            pending: Vec::new(),
            window_meta: VecDeque::new(),
            counters: counters.clone(),
            sources,
            index,
        };
        let cell = inner.cell.clone();
        let (mailbox, ev) = EventLoop::new();
        let join = std::thread::Builder::new()
            .name("tsvd-serve".into())
            .spawn(move || {
                let mut inner = inner;
                let mut engine_out: Option<mpsc::Sender<ShardedEngine>> = None;
                ev.run(|timers, event| match event {
                    Event::Message(Msg::Events(events)) => {
                        inner.on_events(timers, events);
                        Flow::Continue
                    }
                    Event::Message(Msg::Flush(ack)) => {
                        // Drain before acking: flush_sync promises the
                        // returned epoch covers everything this handle
                        // submitted, even a window still in flight.
                        inner.flush(timers);
                        inner.drain();
                        inner.sync_poll(timers);
                        let _ = ack.send(inner.cell.epoch());
                        Flow::Continue
                    }
                    Event::Message(Msg::Shutdown(tx)) => {
                        inner.flush(timers);
                        engine_out = Some(tx);
                        Flow::Stop
                    }
                    Event::Timer(FLUSH_TIMER) => {
                        inner.flush(timers);
                        Flow::Continue
                    }
                    Event::Timer(COMMIT_TIMER) => {
                        if let Some(o) = inner.pipe.try_complete() {
                            inner.complete(&o);
                        }
                        inner.sync_poll(timers);
                        Flow::Continue
                    }
                    Event::Timer(_) => Flow::Continue,
                });
                // Publish any window still in flight (the shutdown-with-
                // staged-window drain), then hand the engine back whole.
                inner.drain();
                if let Some(tx) = engine_out {
                    let (engine, last) = inner.pipe.into_engine();
                    debug_assert!(last.is_none(), "drained pipeline had an outcome");
                    let _ = tx.send(engine);
                }
            })
            .expect("spawn tsvd-serve reactor");
        ServerHandle {
            mailbox,
            cell,
            counters,
            cfg,
            num_shards,
            join,
        }
    }
}

/// Client handle to a running [`EmbeddingServer`].
pub struct ServerHandle {
    mailbox: Mailbox<Msg>,
    cell: Arc<EpochCell>,
    counters: Arc<Counters>,
    cfg: ServeConfig,
    num_shards: usize,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// Submit one event; returns `false` if the server is gone.
    pub fn submit(&self, event: EdgeEvent) -> bool {
        self.submit_batch(vec![event])
    }

    /// Submit a batch of events (one mailbox message; the server may split
    /// or merge it across flush windows).
    pub fn submit_batch(&self, events: Vec<EdgeEvent>) -> bool {
        if events.is_empty() {
            return true;
        }
        let n = events.len() as u64;
        // Count *before* handing the batch to the reactor: the reactor may
        // flush (and bump `applied`) before this thread runs again, and
        // `submitted ≥ applied + coalesced` must hold for every observer.
        // The increment is undone on the (server already gone) failure path.
        self.counters.submitted.fetch_add(n, Ordering::Release);
        let ok = self.mailbox.send(Msg::Events(events));
        if !ok {
            self.counters.submitted.fetch_sub(n, Ordering::Release);
        }
        ok
    }

    /// Force a flush of everything submitted so far (from this handle) and
    /// block until it is applied; returns the epoch then being served.
    pub fn flush_sync(&self) -> u64 {
        let (tx, rx) = mpsc::channel();
        if !self.mailbox.send(Msg::Flush(tx)) {
            return self.cell.epoch();
        }
        rx.recv().unwrap_or_else(|_| self.cell.epoch())
    }

    /// A cheap, cloneable read-side handle (shares the epoch cell).
    pub fn reader(&self) -> EmbeddingReader {
        EmbeddingReader {
            cell: self.cell.clone(),
        }
    }

    /// The currently served epoch.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// A point-in-time counter snapshot.
    ///
    /// Read order is load-bearing: the epoch snapshot is taken *first*
    /// (the flush path updates counters before publishing, so counters can
    /// only be ahead of the observed epoch, never behind), and `submitted`
    /// is read *last* with `Acquire` (the submit path counts before the
    /// mailbox send that happens-before `applied`/`coalesced` increments,
    /// so reading it after them keeps `submitted ≥ applied + coalesced`).
    pub fn stats(&self) -> ServeStats {
        let c = &self.counters;
        let snap = self.cell.load();
        let batches = c.batches.load(Ordering::Acquire);
        let applied = c.applied.load(Ordering::Acquire);
        let coalesced = c.coalesced.load(Ordering::Acquire);
        let total_ns = c.flush_nanos_total.load(Ordering::Acquire);
        let submitted = c.submitted.load(Ordering::Acquire);
        // `last` before `max`: the flush path raises `max` before storing
        // `last`, so this order guarantees `max ≥ last` in the result.
        let last_ns = c.flush_nanos_last.load(Ordering::Acquire);
        let max_ns = c.flush_nanos_max.load(Ordering::Acquire);
        let stage_ns = c.stage_nanos_last.load(Ordering::Acquire);
        let commit_ns = c.commit_nanos_last.load(Ordering::Acquire);
        let overlap_ns = c.overlap_nanos_total.load(Ordering::Acquire);
        let inflight = c.inflight.load(Ordering::Acquire);
        let blocks_patched = c.blocks_patched.load(Ordering::Acquire);
        let blocks_incremental = c.blocks_incremental.load(Ordering::Acquire);
        let blocks_refactored = c.blocks_refactored.load(Ordering::Acquire);
        ServeStats {
            epoch: snap.epoch(),
            num_shards: self.num_shards,
            events_submitted: submitted,
            events_applied: applied,
            events_coalesced: coalesced,
            events_pending: submitted.saturating_sub(applied + coalesced),
            batches_flushed: batches,
            flush_ms_last: last_ns as f64 / 1e6,
            flush_ms_mean: if batches == 0 {
                0.0
            } else {
                total_ns as f64 / batches as f64 / 1e6
            },
            flush_ms_max: max_ns as f64 / 1e6,
            pipeline_depth: self.cfg.pipeline_depth,
            windows_inflight: inflight,
            stage_ms_last: stage_ns as f64 / 1e6,
            commit_ms_last: commit_ns as f64 / 1e6,
            overlapped_secs: overlap_ns as f64 / 1e9,
            svd_update: self.cfg.svd_update,
            blocks_patched,
            blocks_incremental,
            blocks_refactored,
            timings: snap.timings(),
        }
    }

    /// Flush, stop the reactor, and take the engine back (e.g. to compare
    /// against an offline replay, or to persist).
    pub fn shutdown(self) -> ShardedEngine {
        let (tx, rx) = mpsc::channel();
        let sent = self.mailbox.send(Msg::Shutdown(tx));
        assert!(sent, "server thread already gone");
        let engine = rx.recv().expect("server thread dropped the engine");
        self.join.join().expect("tsvd-serve reactor panicked");
        engine
    }
}

/// Read-only, cloneable view of the served embedding. Loading a snapshot
/// never blocks on the writer; a held snapshot is immutable.
#[derive(Clone)]
pub struct EmbeddingReader {
    cell: Arc<EpochCell>,
}

impl EmbeddingReader {
    /// The currently served snapshot (whole-epoch consistent).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.cell.load()
    }

    /// The currently served epoch, lock-free.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The embedding of `node` in the current snapshot, copied out.
    pub fn get(&self, node: u32) -> Option<Vec<f64>> {
        self.snapshot().get(node).map(|v| v.to_vec())
    }

    /// Block (polling) until the served epoch reaches `epoch`; `false` on
    /// timeout. Test/demo convenience — production readers just `load`.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.epoch() < epoch {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tsvd_core::TreeSvdConfig;
    use tsvd_graph::DynGraph;
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn setup(num_shards: usize) -> (DynGraph, ShardedEngine) {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 60usize;
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < 240 {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        let sources: Vec<u32> = (0..8).collect();
        let cfg = TreeSvdConfig {
            dim: 4,
            num_blocks: 3,
            ..Default::default()
        };
        let engine = ShardedEngine::new(&g, &sources, num_shards, PprConfig::default(), cfg);
        (g, engine)
    }

    #[test]
    fn serves_epoch_zero_immediately() {
        let (_, engine) = setup(2);
        let server = EmbeddingServer::start(engine, ServeConfig::default());
        let reader = server.reader();
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.sources(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(snap.verify());
        assert!(snap.get(3).is_some());
        assert!(snap.get(59).is_none());
        server.shutdown();
    }

    #[test]
    fn count_trigger_flushes_without_waiting_for_deadline() {
        let (_, engine) = setup(2);
        let cfg = ServeConfig {
            flush_max_events: 4,
            flush_interval_ms: 60_000, // deadline effectively off
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let reader = server.reader();
        let events: Vec<EdgeEvent> = (0..4).map(|i| EdgeEvent::insert(50, 51 + i)).collect();
        assert!(server.submit_batch(events));
        assert!(
            reader.wait_for_epoch(1, Duration::from_secs(10)),
            "count trigger did not flush"
        );
        let stats = server.stats();
        assert_eq!(stats.batches_flushed, 1);
        assert_eq!(stats.events_submitted, 4);
        assert_eq!(stats.events_applied + stats.events_coalesced, 4);
        assert_eq!(stats.events_pending, 0);
        let engine = server.shutdown();
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn deadline_trigger_flushes_partial_window() {
        let (_, engine) = setup(3);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 5,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let reader = server.reader();
        assert!(server.submit(EdgeEvent::insert(40, 41)));
        assert!(
            reader.wait_for_epoch(1, Duration::from_secs(10)),
            "deadline trigger did not flush"
        );
        assert_eq!(server.stats().events_applied, 1);
        server.shutdown();
    }

    #[test]
    fn flush_sync_applies_everything_submitted() {
        let (_, engine) = setup(2);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 60_000,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        server.submit_batch(vec![
            EdgeEvent::insert(30, 31),
            EdgeEvent::insert(31, 32),
            EdgeEvent::delete(30, 31),
        ]);
        let epoch = server.flush_sync();
        assert_eq!(epoch, 1);
        // Idempotent when nothing is pending: no empty epoch published.
        assert_eq!(server.flush_sync(), 1);
        let stats = server.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.batches_flushed, 1);
        assert!(stats.flush_ms_last > 0.0);
        assert!(stats.flush_ms_max >= stats.flush_ms_last);
        server.shutdown();
    }

    #[test]
    fn coalescing_counts_dropped_events() {
        let (_, engine) = setup(1);
        let server = EmbeddingServer::start(
            engine,
            ServeConfig {
                flush_max_events: 1_000_000,
                flush_interval_ms: 60_000,
                coalesce: true,
                num_shards: 1,
                ..Default::default()
            },
        );
        // Same pair three times: last write wins, two events coalesced away.
        server.submit_batch(vec![
            EdgeEvent::insert(20, 21),
            EdgeEvent::delete(20, 21),
            EdgeEvent::insert(20, 21),
            EdgeEvent::insert(22, 23),
        ]);
        server.flush_sync();
        let stats = server.stats();
        assert_eq!(stats.events_submitted, 4);
        assert_eq!(stats.events_applied, 2);
        assert_eq!(stats.events_coalesced, 2);
        server.shutdown();
    }

    #[test]
    fn readers_hold_consistent_epochs_across_swaps() {
        let (_, engine) = setup(2);
        let cfg = ServeConfig {
            flush_max_events: 1_000_000,
            flush_interval_ms: 60_000,
            ..Default::default()
        };
        let server = EmbeddingServer::start(engine, cfg);
        let reader = server.reader();
        let held0 = reader.snapshot();
        server.submit(EdgeEvent::insert(10, 11));
        server.flush_sync();
        let held1 = reader.snapshot();
        assert_eq!(held0.epoch(), 0);
        assert_eq!(held1.epoch(), 1);
        // Old epoch stays alive and internally consistent after the swap.
        assert!(held0.verify());
        assert!(held1.verify());
        server.shutdown();
    }
}
