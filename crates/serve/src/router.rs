//! The scale-out router tier: stateless scatter-gather over `serve::net`.
//!
//! One process caps the system at one machine. The router splits the
//! subset's global row order into contiguous ranges — the same split
//! [`ShardedEngine`](crate::ShardedEngine) uses in-process — and places
//! each range in its own **shard process** (an `EmbeddingServer` +
//! [`NetFront`](crate::NetFront) over that sub-subset). The router itself
//! holds no embedding state: just a [`ShardMap`], one pipelining
//! [`NetClient`] per range, and counters.
//!
//! ```text
//!             ┌────────────┐  SubmitEvents/Flush: broadcast (lockstep)
//!  clients ──▶│ RouterFront│  GetRows: scatter per ShardMap, gather,
//!             │  (Router)  │           epoch barrier, merge
//!             └─────┬──────┘
//!        ┌──────────┼──────────────┐
//!        ▼          ▼              ▼
//!    shard 0     shard 1   ...  shard N-1      (leader processes)
//!        │          │              │  GetWindows (journal replication)
//!        ▼          ▼              ▼
//!    follower 0  follower 1 ... follower N-1   (read replicas)
//! ```
//!
//! **Lockstep invariant.** Every write (`SubmitEvents`) and every `Flush`
//! is broadcast to all healthy shards *in the same serialized order* (the
//! router is behind one lock). Each shard therefore coalesces identical
//! pending buffers into identical windows at identical epochs — so the
//! shards' journals are byte-identical, any shard can feed any range's
//! follower, and epoch `e` means the same global prefix of the event
//! stream everywhere. A shard that misses one write has diverged forever;
//! the router immediately fails it over (below) rather than let it serve.
//!
//! **Epoch barrier.** A scatter read can catch shards mid-flush at
//! different epochs. The gather takes `target = max(epoch)` over the
//! replies and re-probes every range below it (bounded retries with
//! linear backoff, [`RouterConfig::barrier_retries`] ×
//! [`RouterConfig::barrier_backoff_ms`]); per-connection staleness guards
//! in [`NetClient`] separately reject a same-epoch checksum flip. A shard
//! that cannot reach the barrier fails the read with the typed
//! [`RouterError::EpochBarrier`] — never a torn cross-shard mix.
//!
//! **Failover ladder.** A shard that faults on the *write* path has
//! either missed the broadcast or is unreachable — both mean its journal
//! has diverged from the lockstep order, so it must never serve again:
//! the router switches the range to its journal-fed
//! [`Follower`](crate::Follower) replica, which serves the identical
//! bitwise rows at a possibly-stale epoch — the barrier absorbs the lag
//! while the follower catches up from any healthy shard's journal. With
//! no usable follower the range is **poisoned**: permanently excluded
//! from writes and reads (a transient fault would otherwise reconnect the
//! diverged leader on the next call and serve it as healthy), with the
//! fault reported only after the broadcast has reached every remaining
//! shard — a mid-broadcast error must not leave the survivors with
//! divergent pending sets. One write failure is not a fault at all: a
//! *server rejection* (the shard answered with a wire `Error` instead of
//! applying the request, e.g. an exceeded tenant quota). If no shard
//! applied the batch the survivors still agree, and the rejection
//! surfaces as the request-level [`RouterError::Io`] — backpressure, not
//! divergence; if another shard *did* apply it, the rejecting shard has
//! missed a write and rides the ladder like any other write fault. On the
//! *read* path, a dead transport fails over to the follower and retries
//! there; request-level faults (a corrupt frame, a server-side error
//! string) fail only that request: the client reconnects on the next
//! call. Followers that outlive the leaders' bounded journals re-seed
//! over the wire (`GetCheckpoint` →
//! [`Follower::reseed_from`](crate::Follower)).
//!
//! The merged `Rows` reply's checksum is the FNV-1a 64 chain of the
//! per-range checksums in ascending range order — deterministic per epoch
//! (sequential f64 summation is non-associative, so the router cannot
//! recompute a *global* content checksum without the rows it did not
//! fetch; the chained per-range form is stable across failover because a
//! follower's state is bitwise its leader's). For the same reason the
//! router does not serve `GetEmbedding`.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use std::{fmt, thread};

use tsvd_graph::EdgeEvent;

use crate::config::RouterConfig;
use crate::net::wire::{
    fnv1a64, read_frame_until, write_frame, Message, Reply, Request, RowsReply, TopKReply,
    FNV_OFFSET,
};
use crate::net::{ClientConfig, NetClient, TcpTransport};
use crate::query::Metric;
use crate::stats::RouterStats;

/// Poll interval for stop-flag checks (accept loop, connection reads).
const POLL: Duration = Duration::from_millis(25);

/// The contiguous-range split of the subset's global row order across N
/// shards — the cross-process analogue of
/// [`ShardedEngine`](crate::ShardedEngine)'s in-process split. Global row
/// `i` is the `i`-th source in the full subset; shard `k` owns rows
/// `range(k).0 .. range(k).1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    sources: Vec<u32>,
    /// Half-open `(start, end)` global-row ranges, ascending, tiling
    /// `0..sources.len()` exactly (validated at construction).
    ranges: Vec<(usize, usize)>,
    /// node id → (owning shard, global row).
    owner: HashMap<u32, (usize, usize)>,
}

impl ShardMap {
    /// Split `sources` into `num_shards` contiguous ranges of near-equal
    /// size (first `len % n` ranges get one extra row — the same base/rem
    /// rule `ShardedEngine` applies). `num_shards` is clamped to
    /// `1..=sources.len()`.
    pub fn even_split(sources: &[u32], num_shards: usize) -> ShardMap {
        assert!(!sources.is_empty(), "shard map over an empty subset");
        let n = num_shards.clamp(1, sources.len());
        let base = sources.len() / n;
        let rem = sources.len() % n;
        let ranges = (0..n)
            .map(|k| {
                let start = k * base + k.min(rem);
                let len = base + usize::from(k < rem);
                (start, start + len)
            })
            .collect();
        Self::from_ranges(sources, ranges).expect("even split tiles by construction")
    }

    /// Build a map from explicit ranges, rejecting any gap or overlap in
    /// the tiling of `0..sources.len()` with a typed
    /// [`RouterError::BadMap`].
    pub fn from_ranges(
        sources: &[u32],
        ranges: Vec<(usize, usize)>,
    ) -> Result<ShardMap, RouterError> {
        if ranges.is_empty() {
            return Err(RouterError::BadMap("no shard ranges".into()));
        }
        let mut expected = 0usize;
        for (k, &(start, end)) in ranges.iter().enumerate() {
            if start != expected {
                let what = if start > expected { "gap" } else { "overlap" };
                return Err(RouterError::BadMap(format!(
                    "{what} before shard {k}: range starts at row {start}, expected {expected}"
                )));
            }
            if end <= start {
                return Err(RouterError::BadMap(format!(
                    "shard {k} owns an empty range ({start}, {end})"
                )));
            }
            expected = end;
        }
        if expected != sources.len() {
            return Err(RouterError::BadMap(format!(
                "ranges cover {expected} rows, subset has {}",
                sources.len()
            )));
        }
        let mut owner = HashMap::with_capacity(sources.len());
        for (k, &(start, end)) in ranges.iter().enumerate() {
            for (row, &node) in sources[start..end].iter().enumerate() {
                if owner.insert(node, (k, start + row)).is_some() {
                    return Err(RouterError::BadMap(format!(
                        "node {node} appears twice in the subset"
                    )));
                }
            }
        }
        Ok(ShardMap {
            sources: sources.to_vec(),
            ranges,
            owner,
        })
    }

    /// Number of shard ranges.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The full subset, in global row order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Shard `k`'s half-open global-row range.
    pub fn range(&self, k: usize) -> (usize, usize) {
        self.ranges[k]
    }

    /// The sub-subset shard `k` owns, in global row order — what its
    /// engine process is registered with.
    pub fn sources_of(&self, k: usize) -> &[u32] {
        let (start, end) = self.ranges[k];
        &self.sources[start..end]
    }

    /// The global row a subset node owns, if any — the deterministic
    /// tie-break key the cross-shard top-k merge sorts by (a shard's
    /// local rows are this minus its range start, so the merged order is
    /// the same total order a single shard would produce).
    pub fn global_row(&self, node: u32) -> Option<usize> {
        self.owner.get(&node).map(|&(_, row)| row)
    }

    /// Partition one `GetRows` request across the shards. Every shard gets
    /// an entry — possibly empty: an empty `GetRows` still returns the
    /// shard's epoch and range checksum, which the barrier and the merged
    /// checksum need from *all* ranges.
    pub fn plan(&self, nodes: &[u32]) -> ScatterPlan {
        let n = self.num_shards();
        let mut per_shard = vec![Vec::new(); n];
        let mut positions = vec![Vec::new(); n];
        for (pos, &node) in nodes.iter().enumerate() {
            if let Some(&(k, _)) = self.owner.get(&node) {
                per_shard[k].push(node);
                positions[k].push(pos);
            }
            // Nodes outside the subset stay None in the merged reply,
            // exactly as a single shard answers for unknown nodes.
        }
        ScatterPlan {
            per_shard,
            positions,
            total: nodes.len(),
        }
    }

    /// Merge one reply per shard (ascending range order, aligned with
    /// `plan`) into the client-facing [`RowsReply`]. Rejects — with a
    /// typed [`RouterError::Merge`] — any reply set that would tear the
    /// read: a row-count mismatch against the plan (a gap or overlap in
    /// global-row coverage), ranges at different epochs (the barrier's
    /// job; merging them would mix epochs), or disagreeing dimensions.
    pub fn merge(
        &self,
        plan: &ScatterPlan,
        replies: &[RowsReply],
    ) -> Result<RowsReply, RouterError> {
        if replies.len() != self.num_shards() {
            return Err(RouterError::Merge(format!(
                "{} replies for {} shard ranges",
                replies.len(),
                self.num_shards()
            )));
        }
        let epoch = replies[0].epoch;
        let dim = replies[0].dim;
        let mut checksum = FNV_OFFSET;
        for (k, r) in replies.iter().enumerate() {
            if r.epoch != epoch {
                return Err(RouterError::Merge(format!(
                    "shard {k} answered at epoch {}, shard 0 at {epoch} — torn cross-shard read",
                    r.epoch
                )));
            }
            if r.dim != dim {
                return Err(RouterError::Merge(format!(
                    "shard {k} serves dim {}, shard 0 dim {dim}",
                    r.dim
                )));
            }
            let asked = plan.per_shard[k].len();
            if r.rows.len() != asked {
                let what = if r.rows.len() < asked {
                    "gap"
                } else {
                    "overlap"
                };
                return Err(RouterError::Merge(format!(
                    "row-coverage {what}: shard {k} returned {} row slots for {asked} requested",
                    r.rows.len()
                )));
            }
            checksum = fnv1a64(checksum, &r.checksum_bits.to_le_bytes());
        }
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; plan.total];
        for (k, r) in replies.iter().enumerate() {
            for (slot, row) in plan.positions[k].iter().zip(&r.rows) {
                rows[*slot] = row.clone();
            }
        }
        Ok(RowsReply {
            epoch,
            checksum_bits: checksum,
            dim,
            rows,
        })
    }
}

/// How one `GetRows` request scatters across the [`ShardMap`]: which
/// requested nodes go to which shard, and where each answer lands in the
/// merged reply.
#[derive(Debug, Clone)]
pub struct ScatterPlan {
    /// Per shard: the requested nodes it owns, in request order.
    per_shard: Vec<Vec<u32>>,
    /// Per shard: the position in the original request of each of its
    /// nodes (parallel to `per_shard`).
    positions: Vec<Vec<usize>>,
    /// Length of the original request (== merged reply row count).
    total: usize,
}

impl ScatterPlan {
    /// The nodes shard `k` is asked for (possibly empty — a probe).
    pub fn shard_nodes(&self, k: usize) -> &[u32] {
        &self.per_shard[k]
    }
}

/// Typed failures of router operations.
#[derive(Debug)]
pub enum RouterError {
    /// A shard map that does not tile the global row order.
    BadMap(String),
    /// A shard stayed below the barrier epoch through every bounded
    /// retry: the read fails typed rather than serving a torn mix.
    EpochBarrier {
        /// The epoch the freshest range answered at.
        target: u64,
        /// The range that could not reach it.
        shard: usize,
        /// The epoch it was stuck at.
        stuck_at: u64,
        /// Retry rounds spent.
        retries: u32,
    },
    /// Gathered replies that cannot be merged into one consistent reply.
    Merge(String),
    /// A shard's transport is dead and no (reachable) follower replica
    /// covers its range.
    ShardDown {
        /// The dead range.
        shard: usize,
        /// The underlying failure.
        error: io::Error,
    },
    /// A request-level fault on one shard (corrupt frame, server-side
    /// error). The router stays up; only this request fails.
    Io {
        /// The faulting range.
        shard: usize,
        /// The underlying failure.
        error: io::Error,
    },
    /// Every shard range has been failed over to a read-only follower:
    /// no process is left to accept writes.
    NoWriters,
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::BadMap(what) => write!(f, "bad shard map: {what}"),
            RouterError::EpochBarrier {
                target,
                shard,
                stuck_at,
                retries,
            } => write!(
                f,
                "epoch barrier failed: shard {shard} stuck at epoch {stuck_at}, \
                 target {target}, after {retries} retries"
            ),
            RouterError::Merge(what) => write!(f, "merge rejected: {what}"),
            RouterError::ShardDown { shard, error } => {
                write!(f, "shard {shard} down with no usable replica: {error}")
            }
            RouterError::Io { shard, error } => write!(f, "shard {shard} request failed: {error}"),
            RouterError::NoWriters => write!(f, "every shard failed over; no writer left"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::ShardDown { error, .. } | RouterError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Where one shard range lives on the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEndpoint {
    /// The leader shard process (`host:port`).
    pub addr: String,
    /// Its journal-fed follower replica, if deployed — the failover
    /// target for this range.
    pub follower: Option<String>,
}

impl ShardEndpoint {
    /// A leader with no replica.
    pub fn leader_only(addr: impl Into<String>) -> ShardEndpoint {
        ShardEndpoint {
            addr: addr.into(),
            follower: None,
        }
    }

    /// A leader with a follower replica behind it.
    pub fn with_follower(addr: impl Into<String>, follower: impl Into<String>) -> ShardEndpoint {
        ShardEndpoint {
            addr: addr.into(),
            follower: Some(follower.into()),
        }
    }
}

/// One shard range's health, published once and observed by the writer
/// and by every [`ReadSession`]: a range failed over (or poisoned) by any
/// path is failed over for all of them.
struct RangeHealth {
    /// Once true, this range reads from its follower and receives no more
    /// writes (the leader is dead or diverged — see module docs).
    failed_over: AtomicBool,
    /// Once true, this range is out of service entirely: its leader
    /// diverged from the broadcast order (missed a write) and no follower
    /// replica could take over. A poisoned range is never written to or
    /// read from again — the client would transparently reconnect, and a
    /// diverged leader must not serve as if healthy.
    poisoned: AtomicBool,
}

/// State shared by the [`Router`] (the single writer) and every
/// [`ReadSession`]: the immutable deployment shape plus the mutable
/// range-health flags and traffic counters. Connections are *not* here —
/// each session owns its own, which is what lets reads on different
/// connections proceed concurrently.
struct RouterShared {
    map: ShardMap,
    cfg: RouterConfig,
    endpoints: Vec<ShardEndpoint>,
    health: Vec<RangeHealth>,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    barrier_retries: AtomicU64,
    failovers: AtomicU64,
    poisoned: AtomicU64,
}

impl RouterShared {
    fn client_cfg(&self) -> ClientConfig {
        ClientConfig {
            tenant: self.cfg.tenant,
            ..ClientConfig::default()
        }
    }

    fn failed_over(&self, k: usize) -> bool {
        self.health[k].failed_over.load(Ordering::Acquire)
    }

    fn is_poisoned(&self, k: usize) -> bool {
        self.health[k].poisoned.load(Ordering::Acquire)
    }

    /// Whether range `k` still takes lockstep writes.
    fn is_writer(&self, k: usize) -> bool {
        !self.failed_over(k) && !self.is_poisoned(k)
    }
}

/// One range connection owned by a [`ReadSession`]: opened lazily on
/// first use, re-pinned to the follower once the range's shared health
/// says it failed over.
struct RangeConn {
    client: Option<NetClient>,
    on_follower: bool,
}

/// The stateless scatter-gather core: a [`ShardMap`], one client per
/// range, and the barrier/failover logic. Wrap in a [`RouterFront`] to
/// serve it over the wire, or drive it in-process.
///
/// The router is the deployment's single *writer*: lockstep requires a
/// total broadcast order, so writes serialize on `&mut self`. Reads do
/// not need that order — [`Router::read_session`] hands out independent
/// [`ReadSession`]s (own connections, shared health) that scatter-gather
/// concurrently with each other and with this router's own calls.
pub struct Router {
    shared: Arc<RouterShared>,
    /// The router's own connections — opened eagerly at
    /// [`Router::connect`] and used by both the write path and this
    /// router's direct reads (one ordered stream per shard).
    session: ReadSession,
}

/// Transport failure kinds that mean "the connection/process is gone" —
/// the failover trigger. Mirrors the client's own transient set.
fn is_transport_dead(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// A request-level server rejection: the shard answered the request with
/// a wire `Error` reply instead of applying it (surfaced by [`NetClient`]
/// as `ErrorKind::Other`, e.g. an exceeded tenant quota). Unlike a
/// transport fault — where the outcome is unknown — the shard is alive
/// and positively did *not* apply the write.
fn is_server_rejection(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Other
}

impl Router {
    /// Connect one client per shard range. `endpoints[k]` serves
    /// `map.range(k)`; all connections are opened eagerly so a
    /// misconfigured deployment fails here, not mid-request.
    pub fn connect(
        map: ShardMap,
        endpoints: Vec<ShardEndpoint>,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        assert_eq!(
            endpoints.len(),
            map.num_shards(),
            "one endpoint per shard range"
        );
        let health = (0..map.num_shards())
            .map(|_| RangeHealth {
                failed_over: AtomicBool::new(false),
                poisoned: AtomicBool::new(false),
            })
            .collect();
        let shared = Arc::new(RouterShared {
            map,
            cfg,
            endpoints,
            health,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            barrier_retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        });
        let mut session = ReadSession::new(shared.clone());
        for k in 0..shared.map.num_shards() {
            session.client(k)?; // eager: a bad deployment fails here
        }
        Ok(Router { shared, session })
    }

    /// The row split this router scatters over.
    pub fn map(&self) -> &ShardMap {
        &self.shared.map
    }

    /// Traffic and fault counters so far (across this router *and* every
    /// [`ReadSession`] it handed out — the counters are shared).
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            shards: self.shared.map.num_shards(),
            reads: self.shared.reads.load(Ordering::Relaxed),
            writes: self.shared.writes.load(Ordering::Relaxed),
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            barrier_retries: self.shared.barrier_retries.load(Ordering::Relaxed),
            failovers: self.shared.failovers.load(Ordering::Relaxed),
            poisoned: self.shared.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Which ranges are currently served by their follower replica.
    pub fn failed_over(&self) -> Vec<usize> {
        (0..self.shared.map.num_shards())
            .filter(|&k| self.shared.failed_over(k))
            .collect()
    }

    /// Which ranges are permanently out of service: their leader diverged
    /// on a write (missed the broadcast or went unreachable) and no
    /// follower replica could take over.
    pub fn poisoned(&self) -> Vec<usize> {
        (0..self.shared.map.num_shards())
            .filter(|&k| self.shared.is_poisoned(k))
            .collect()
    }

    /// A fresh read session over the same deployment: its own lazily
    /// opened connection per range, the shared health flags and counters.
    /// Sessions scatter-gather reads concurrently with each other and
    /// with this router — lockstep only requires serializing *writes*.
    pub fn read_session(&self) -> ReadSession {
        ReadSession::new(self.shared.clone())
    }

    /// After a diverging write fault on range `k`: the leader either
    /// missed the write or is unreachable — both mean its stream has
    /// diverged from the broadcast order and it must never serve again
    /// (module docs). Fail the range over so the follower replicates the
    /// true window stream from the remaining shards' journals; with no
    /// usable follower, poison the range permanently — the client would
    /// otherwise reconnect the diverged leader on the next call and serve
    /// it as healthy. Returns the [`RouterError::ShardDown`] to surface
    /// (after the broadcast completes) when the range is lost for good.
    fn write_fault(&mut self, k: usize, error: io::Error) -> Option<RouterError> {
        match self.session.failover(k, error) {
            Ok(()) => None,
            Err(err) => {
                self.shared.health[k]
                    .poisoned
                    .store(true, Ordering::Release);
                self.shared.poisoned.fetch_add(1, Ordering::Relaxed);
                Some(err)
            }
        }
    }

    /// Broadcast one write-path request (`op`) to every shard that still
    /// takes writes, in lockstep order — callers serialize on `&mut
    /// self`. The broadcast always runs to completion: faults are
    /// collected and settled only after every remaining shard has seen
    /// the request, so a mid-broadcast error can never leave the
    /// survivors with divergent pending sets. Settlement: transport
    /// faults ride the failover ladder ([`Router::write_fault`]);
    /// server-level rejections do too, but *only* if some other shard
    /// applied the request — a rejection applied nowhere (e.g. a uniform
    /// tenant-quota bounce) leaves the survivors in agreement and
    /// surfaces as the request-level [`RouterError::Io`] instead.
    fn broadcast<T>(
        &mut self,
        mut op: impl FnMut(&mut NetClient) -> io::Result<T>,
    ) -> Result<Vec<T>, RouterError> {
        let mut applied = Vec::new();
        let mut faults: Vec<(usize, io::Error)> = Vec::new();
        let mut rejections: Vec<(usize, io::Error)> = Vec::new();
        for k in 0..self.shared.map.num_shards() {
            if !self.shared.is_writer(k) {
                continue;
            }
            // A writer range still holds its eagerly opened leader client
            // (failover is what clears writer status).
            let client = self.session.conns[k]
                .client
                .as_mut()
                .expect("writer range has a connected client");
            match op(client) {
                Ok(v) => applied.push(v),
                Err(e) if is_server_rejection(&e) => rejections.push((k, e)),
                Err(e) => faults.push((k, e)),
            }
        }
        let any_applied = !applied.is_empty();
        let mut down = None;
        for (k, e) in faults {
            if let Some(err) = self.write_fault(k, e) {
                down.get_or_insert(err);
            }
        }
        if any_applied {
            // A shard that rejected a request its peers applied has
            // missed a write: divergence, like any transport fault.
            for (k, e) in rejections {
                if let Some(err) = self.write_fault(k, e) {
                    down.get_or_insert(err);
                }
            }
        } else if down.is_none() {
            // No shard applied the request, so the survivors still agree:
            // a uniform server rejection is backpressure, not divergence.
            if let Some((shard, error)) = rejections.into_iter().next() {
                return Err(RouterError::Io { shard, error });
            }
        }
        match down {
            Some(err) => Err(err),
            None => Ok(applied),
        }
    }

    /// Broadcast one event batch to every healthy shard (lockstep order —
    /// callers serialize on `&mut self`). Returns the accepted count. A
    /// faulting shard is failed over to its replica (or poisoned — see
    /// [`Router::write_fault`]); the write succeeds as long as one leader
    /// remains and no range was lost outright.
    pub fn submit(&mut self, events: Vec<EdgeEvent>) -> Result<u64, RouterError> {
        self.shared.writes.fetch_add(1, Ordering::Relaxed);
        let applied = self.broadcast(|c| c.submit_events(events.clone()))?;
        applied.into_iter().next().ok_or(RouterError::NoWriters)
    }

    /// Broadcast a flush barrier; returns the epoch watermark the healthy
    /// shards reached (equal across shards in lockstep).
    pub fn flush(&mut self) -> Result<u64, RouterError> {
        self.shared.flushes.fetch_add(1, Ordering::Relaxed);
        let applied = self.broadcast(NetClient::flush)?;
        applied.into_iter().max().ok_or(RouterError::NoWriters)
    }

    /// Scatter-gather one `GetRows` across every range and merge under
    /// the epoch barrier, on this router's own connections. The merged
    /// reply is aligned with `nodes` (request order); nodes outside the
    /// subset come back `None`.
    pub fn get_rows(&mut self, nodes: &[u32]) -> Result<RowsReply, RouterError> {
        self.session.get_rows(nodes)
    }

    /// Cross-shard top-k on this router's own connections — see
    /// [`ReadSession::top_k`].
    pub fn top_k(&mut self, node: u32, k: u32, metric: Metric) -> Result<TopKReply, RouterError> {
        self.session.top_k(node, k, metric, None)
    }

    /// Flush, then tell every healthy leader to shut down (clean
    /// deployment teardown — staged windows drain server-side before the
    /// ack). Followers are owned by whoever deployed them.
    pub fn shutdown_shards(&mut self) {
        let _ = self.flush();
        for k in 0..self.shared.map.num_shards() {
            if !self.shared.is_writer(k) {
                continue;
            }
            if let Some(client) = self.session.conns[k].client.as_mut() {
                let _ = client.shutdown_server();
            }
        }
    }
}

/// An independent read path over a router deployment: one lazily opened
/// connection per shard range, scatter-gather/barrier/merge logic, and
/// the shared health flags. A [`RouterFront`] gives every incoming
/// connection its own session, so concurrent reads from different
/// connections proceed in parallel — only writes serialize (on the
/// [`Router`] itself, whose lock *is* the lockstep order).
///
/// A session is a single ordered request stream per range (methods take
/// `&mut self`); share read load across threads by creating one session
/// per thread via [`Router::read_session`].
pub struct ReadSession {
    shared: Arc<RouterShared>,
    conns: Vec<RangeConn>,
}

impl ReadSession {
    fn new(shared: Arc<RouterShared>) -> ReadSession {
        let conns = (0..shared.map.num_shards())
            .map(|_| RangeConn {
                client: None,
                on_follower: false,
            })
            .collect();
        ReadSession { shared, conns }
    }

    /// The connected client for range `k`: opened on first use, and
    /// re-pinned to the follower when the shared health says the range
    /// failed over (a leader another path declared diverged must not be
    /// re-dialed here).
    fn client(&mut self, k: usize) -> io::Result<&mut NetClient> {
        let fo = self.shared.failed_over(k);
        let conn = &mut self.conns[k];
        if conn.client.is_none() || (fo && !conn.on_follower) {
            let addr = if fo {
                self.shared.endpoints[k]
                    .follower
                    .clone()
                    .expect("failed-over range has a follower endpoint")
            } else {
                self.shared.endpoints[k].addr.clone()
            };
            conn.client = Some(NetClient::connect(
                TcpTransport::new(addr),
                self.shared.client_cfg(),
            )?);
            conn.on_follower = fo;
        }
        Ok(conn.client.as_mut().expect("connection just opened"))
    }

    /// Switch range `k` to its follower replica and publish the failover
    /// to the shared health (every other session re-pins on its next
    /// touch of the range). Idempotent; errors if no follower is
    /// configured or it is unreachable.
    fn failover(&mut self, k: usize, cause: io::Error) -> Result<(), RouterError> {
        if self.shared.failed_over(k) && self.conns[k].on_follower {
            return Ok(());
        }
        let Some(follower) = self.shared.endpoints[k].follower.clone() else {
            return Err(RouterError::ShardDown {
                shard: k,
                error: cause,
            });
        };
        let client = NetClient::connect(TcpTransport::new(follower), self.shared.client_cfg())
            .map_err(|e| RouterError::ShardDown { shard: k, error: e })?;
        self.conns[k].client = Some(client);
        self.conns[k].on_follower = true;
        if !self.shared.health[k]
            .failed_over
            .swap(true, Ordering::AcqRel)
        {
            self.shared.failovers.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// One synchronous range call with the failover ladder: a dead
    /// transport on the leader switches to the follower and retries
    /// there; request-level faults (corrupt frame, server error) fail
    /// only this request.
    fn range_call<T>(
        &mut self,
        k: usize,
        op: impl Fn(&mut NetClient) -> io::Result<T>,
    ) -> Result<T, RouterError> {
        let first = match self.client(k) {
            Ok(c) => op(c),
            Err(e) => Err(e),
        };
        match first {
            Ok(r) => Ok(r),
            Err(e) if is_transport_dead(&e) && !self.conns[k].on_follower => {
                self.failover(k, e)?;
                match self.client(k) {
                    Ok(c) => op(c),
                    Err(e) => Err(e),
                }
                .map_err(|error| RouterError::ShardDown { shard: k, error })
            }
            Err(e) if is_transport_dead(&e) => Err(RouterError::ShardDown { shard: k, error: e }),
            Err(error) => Err(RouterError::Io { shard: k, error }),
        }
    }

    /// Fail fast when any range is poisoned: it has no server and no
    /// replica, and every merged read needs all ranges (if only as an
    /// epoch probe) — re-dialing the diverged leader through the client's
    /// transparent reconnect would serve it as healthy.
    fn check_poisoned(&self) -> Result<(), RouterError> {
        let n = self.shared.map.num_shards();
        if let Some(k) = (0..n).find(|&k| self.shared.is_poisoned(k)) {
            return Err(RouterError::ShardDown {
                shard: k,
                error: io::Error::new(
                    io::ErrorKind::NotConnected,
                    "range poisoned: its leader diverged and no follower took over",
                ),
            });
        }
        Ok(())
    }

    /// Split-phase scatter of one request per range, gathering every
    /// in-flight reply (skipping one on a fault would leave its bytes in
    /// the socket and poison the next request on that connection), then
    /// filling holes synchronously — which is where failover happens.
    /// `parse` extracts the expected reply variant; `sync_op` is the
    /// same call in one-shot form for the hole-filling path.
    fn scatter<T>(
        &mut self,
        mk_req: impl Fn(usize) -> Request,
        parse: impl Fn(Reply) -> io::Result<T>,
        sync_op: impl Fn(&mut NetClient, usize) -> io::Result<T>,
    ) -> Result<Vec<T>, RouterError> {
        let n = self.shared.map.num_shards();
        let mut pending: Vec<Option<u64>> = Vec::with_capacity(n);
        for k in 0..n {
            let req = mk_req(k);
            pending.push(match self.client(k) {
                Ok(c) => c.dispatch(&req).ok(),
                Err(_) => None, // lazy connect failed: a hole for sync
            });
        }
        let mut gathered: Vec<Result<T, io::Error>> = Vec::with_capacity(n);
        for (k, slot) in pending.into_iter().enumerate() {
            gathered.push(match slot {
                Some(id) => {
                    let client = self.conns[k]
                        .client
                        .as_mut()
                        .expect("dispatched range has a client");
                    client.collect(id).and_then(&parse)
                }
                None => Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "dispatch failed; connection is down",
                )),
            });
        }
        let mut replies: Vec<T> = Vec::with_capacity(n);
        for (k, got) in gathered.into_iter().enumerate() {
            replies.push(match got {
                Ok(r) => r,
                Err(e) if is_transport_dead(&e) => self.range_call(k, |c| sync_op(c, k))?,
                Err(error) => return Err(RouterError::Io { shard: k, error }),
            });
        }
        Ok(replies)
    }

    /// Scatter-gather one `GetRows` across every range and merge under
    /// the epoch barrier. The merged reply is aligned with `nodes`
    /// (request order); nodes outside the subset come back `None`.
    pub fn get_rows(&mut self, nodes: &[u32]) -> Result<RowsReply, RouterError> {
        self.shared.reads.fetch_add(1, Ordering::Relaxed);
        self.get_rows_inner(nodes)
    }

    fn get_rows_inner(&mut self, nodes: &[u32]) -> Result<RowsReply, RouterError> {
        self.check_poisoned()?;
        let plan = self.shared.map.plan(nodes);
        let n = self.shared.map.num_shards();
        let mut replies = self.scatter(
            |k| Request::GetRows(plan.shard_nodes(k).to_vec()),
            |reply| match reply {
                Reply::Rows(r) => Ok(r),
                other => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected reply variant: {other:?}"),
                )),
            },
            |c, k| c.get_rows(plan.shard_nodes(k)),
        )?;

        // Epoch barrier: re-probe every range below the freshest epoch
        // until all agree or the bounded retries run out.
        let mut retries = 0u32;
        loop {
            let target = replies.iter().map(|r| r.epoch).max().expect("n >= 1");
            let lagging: Vec<usize> = (0..n).filter(|&k| replies[k].epoch < target).collect();
            if lagging.is_empty() {
                break;
            }
            if retries >= self.shared.cfg.barrier_retries {
                let k = lagging[0];
                return Err(RouterError::EpochBarrier {
                    target,
                    shard: k,
                    stuck_at: replies[k].epoch,
                    retries,
                });
            }
            retries += 1;
            self.shared.barrier_retries.fetch_add(1, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(
                self.shared.cfg.barrier_backoff_ms * retries as u64,
            ));
            for k in lagging {
                replies[k] = self.range_call(k, |c| c.get_rows(plan.shard_nodes(k)))?;
            }
        }
        self.shared.map.merge(&plan, &replies)
    }

    /// Cross-shard top-k: resolve the query vector (via an epoch-barriered
    /// [`get_rows`](Self::get_rows) when `query` is `None`), scatter a
    /// [`Request::TopK`] carrying the explicit vector to *every* range —
    /// the owner excludes `node` from its own answer — and merge the
    /// per-range lists under the canonical total order (score descending
    /// by `total_cmp`, ties by ascending **global** row). Every reply
    /// must answer at one epoch; a flush racing between the two phases
    /// triggers a bounded retry of the whole round.
    ///
    /// The merged reply's checksum is the FNV-1a 64 chain of the
    /// per-range checksums in ascending range order — bitwise the same
    /// chain a merged `GetRows` carries at the same epoch. The merged
    /// neighbor list is bitwise identical to what a single unsharded
    /// process answers: per-range scores are computed by the same
    /// sequential kernel, and each range's local-row tie order is the
    /// global order restricted to its contiguous range.
    pub fn top_k(
        &mut self,
        node: u32,
        k: u32,
        metric: Metric,
        query: Option<Vec<f64>>,
    ) -> Result<TopKReply, RouterError> {
        self.shared.reads.fetch_add(1, Ordering::Relaxed);
        let mut rounds = 0u32;
        loop {
            // Phase 1: the query vector and the anchor epoch.
            let (anchor, q) = match &query {
                Some(q) => (None, q.clone()),
                None => {
                    let rows = self.get_rows_inner(&[node])?;
                    match rows.rows.into_iter().next().flatten() {
                        Some(q) => (Some(rows.epoch), q),
                        None => {
                            // Outside the subset: same not-found answer a
                            // single shard gives, at the barriered epoch.
                            return Ok(TopKReply {
                                epoch: rows.epoch,
                                checksum_bits: rows.checksum_bits,
                                found: false,
                                neighbors: Vec::new(),
                            });
                        }
                    }
                }
            };
            // Phase 2: scatter the explicit-vector form everywhere.
            let replies = self.scatter(
                |_| Request::TopK {
                    node,
                    k,
                    metric,
                    query: Some(q.clone()),
                },
                |reply| match reply {
                    Reply::TopKReply(t) => Ok(t),
                    other => Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reply variant: {other:?}"),
                    )),
                },
                |_c, _| {
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "in-flight top-k lost to failover; retrying the round",
                    ))
                },
            );
            // A failover mid-scatter restarts the round: the follower may
            // sit at a different epoch, and the anchor must be re-probed.
            let replies = match replies {
                Ok(r) => r,
                Err(RouterError::ShardDown { .. }) if rounds < self.shared.cfg.barrier_retries => {
                    rounds += 1;
                    self.shared.barrier_retries.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(Duration::from_millis(
                        self.shared.cfg.barrier_backoff_ms * rounds as u64,
                    ));
                    continue;
                }
                Err(e) => return Err(e),
            };
            let epoch = anchor.unwrap_or(replies[0].epoch);
            if replies.iter().all(|r| r.epoch == epoch) {
                return self.merge_top_k(epoch, k, &replies);
            }
            // A flush landed between the phases (or mid-scatter): the
            // ranges answered at mixed epochs. Bounded retry, like the
            // rows barrier.
            if rounds >= self.shared.cfg.barrier_retries {
                let freshest = replies.iter().map(|r| r.epoch).max().expect("n >= 1");
                let (shard, stuck_at) = replies
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.epoch < freshest)
                    .map(|(sk, r)| (sk, r.epoch))
                    .next()
                    .unwrap_or((0, epoch));
                return Err(RouterError::EpochBarrier {
                    target: freshest,
                    shard,
                    stuck_at,
                    retries: rounds,
                });
            }
            rounds += 1;
            self.shared.barrier_retries.fetch_add(1, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(
                self.shared.cfg.barrier_backoff_ms * rounds as u64,
            ));
        }
    }

    /// Merge per-range top-k lists answered at one agreed epoch.
    fn merge_top_k(
        &self,
        epoch: u64,
        k: u32,
        replies: &[TopKReply],
    ) -> Result<TopKReply, RouterError> {
        let mut checksum = FNV_OFFSET;
        let mut hits: Vec<(f64, usize, u32)> = Vec::new();
        for (sk, r) in replies.iter().enumerate() {
            checksum = fnv1a64(checksum, &r.checksum_bits.to_le_bytes());
            for &(nd, score) in &r.neighbors {
                let row = self.shared.map.global_row(nd).ok_or_else(|| {
                    RouterError::Merge(format!(
                        "shard {sk} answered neighbor {nd} outside the shard map"
                    ))
                })?;
                hits.push((score, row, nd));
            }
        }
        // The canonical total order: score descending (total_cmp), ties
        // by ascending global row — identical to a single shard's order.
        hits.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        hits.truncate(k as usize);
        Ok(TopKReply {
            epoch,
            checksum_bits: checksum,
            found: true,
            neighbors: hits.into_iter().map(|(score, _, nd)| (nd, score)).collect(),
        })
    }
}

/// Shared state of a [`RouterFront`] and its connection threads.
struct FrontInner {
    /// Taken (→ `None`) by [`RouterFront::shutdown`].
    router: Mutex<Option<Router>>,
    /// The same deployment the router scatters over, for per-connection
    /// [`ReadSession`]s — reads bypass the router lock entirely.
    shared: Arc<RouterShared>,
    /// The tenant every request must name (the router pins one).
    tenant: u32,
    stop: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
    accepted: AtomicU64,
}

/// Serves a [`Router`] over the same wire protocol the shards speak, so
/// any [`NetClient`] can talk to the deployment without knowing it is
/// sharded. *Write-path* requests across all connections are serialized
/// through the router's lock — that serialization *is* the lockstep
/// write order the shards' journals rely on.
///
/// **Reads do not serialize.** Every accepted connection owns a
/// [`ReadSession`] — its own connection per shard range over the shared
/// health flags and counters — so `GetRows` and `TopK` from different
/// connections scatter-gather in parallel, including across any
/// epoch-barrier backoff sleeps and even while a write holds the router
/// lock. The shards' epoch/checksum guards keep every session's merges
/// consistent, and a failover observed by one path is published to all
/// of them through the shared health.
pub struct RouterFront {
    inner: Arc<FrontInner>,
    listeners: Mutex<Vec<JoinHandle<()>>>,
}

impl RouterFront {
    /// Wrap a connected router. Call [`RouterFront::listen`] to accept.
    pub fn start(router: Router) -> RouterFront {
        let tenant = router.shared.cfg.tenant;
        let shared = router.shared.clone();
        RouterFront {
            inner: Arc::new(FrontInner {
                router: Mutex::new(Some(router)),
                shared,
                tenant,
                stop: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                accepted: AtomicU64::new(0),
            }),
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// Bind a TCP listener (port 0 for OS-assigned) and start accepting.
    pub fn listen(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = self.inner.clone();
        let jh = thread::Builder::new()
            .name("tsvd-router-accept".into())
            .spawn(move || {
                while !inner.stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if stream.set_nodelay(true).is_err()
                                || stream.set_read_timeout(Some(POLL)).is_err()
                            {
                                continue;
                            }
                            let reader = match stream.try_clone() {
                                Ok(r) => r,
                                Err(_) => continue,
                            };
                            let conn_inner = inner.clone();
                            let n = inner.accepted.fetch_add(1, Ordering::Relaxed) + 1;
                            let jh = thread::Builder::new()
                                .name(format!("tsvd-router-conn-{n}"))
                                .spawn(move || serve_connection(conn_inner, reader, stream))
                                .expect("spawn tsvd-router-conn");
                            inner.conns.lock().unwrap().push(jh);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
                        Err(_) => thread::sleep(POLL),
                    }
                }
            })
            .expect("spawn tsvd-router-accept");
        self.listeners.lock().unwrap().push(jh);
        Ok(local)
    }

    /// Whether a client's `Shutdown` (or [`RouterFront::shutdown`]) has
    /// stopped the front.
    pub fn is_stopped(&self) -> bool {
        self.inner.stop.load(Ordering::Acquire)
    }

    /// Block (polling) until stopped or `timeout` elapses.
    pub fn wait_stopped(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while !self.is_stopped() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stop listeners and connections and take the router back (`None` if
    /// a wire `Shutdown` already consumed it — it shut the shards down).
    pub fn shutdown(self) -> Option<Router> {
        self.inner.stop.store(true, Ordering::Release);
        for jh in self.listeners.lock().unwrap().drain(..) {
            let _ = jh.join();
        }
        let conns: Vec<_> = self.inner.conns.lock().unwrap().drain(..).collect();
        for jh in conns {
            let _ = jh.join();
        }
        self.inner.router.lock().unwrap().take()
    }
}

/// One router connection: read frames, execute (reads over this
/// connection's own [`ReadSession`]; writes against the shared router
/// under its lock), write replies. Synchronous per connection;
/// concurrency comes from multiple connections.
fn serve_connection(inner: Arc<FrontInner>, mut reader: impl io::Read, mut writer: impl io::Write) {
    let should_stop = {
        let inner = inner.clone();
        move || inner.stop.load(Ordering::Acquire)
    };
    let mut session = ReadSession::new(inner.shared.clone());
    loop {
        match read_frame_until(&mut reader, &should_stop) {
            Ok(Some(frame)) => {
                let (reply, close) = match frame.message {
                    Message::Request(req) => execute(&inner, &mut session, frame.tenant, req),
                    Message::Reply(_) => (
                        Reply::Error("reply-direction frame on the request path".into()),
                        true,
                    ),
                };
                let wrote = write_frame(
                    &mut writer,
                    frame.request_id,
                    frame.tenant,
                    &Message::Reply(reply),
                );
                if wrote.is_err() || close {
                    break;
                }
            }
            Ok(None) => break, // clean EOF or stop
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = write_frame(
                    &mut writer,
                    0,
                    0,
                    &Message::Reply(Reply::Error(e.to_string())),
                );
                break;
            }
            Err(_) => break,
        }
    }
}

/// Execute one request. Reads (`GetRows`, `TopK`) run on this
/// connection's own session — off the router lock, so they proceed while
/// a write from another connection is in flight. Write-path requests
/// serialize under the router's lock (that order *is* lockstep). Faults
/// map to `Reply::Error` — a request-level answer; the connection stays
/// open unless the router itself is gone.
fn execute(
    inner: &FrontInner,
    session: &mut ReadSession,
    tenant: u32,
    req: Request,
) -> (Reply, bool) {
    if tenant != inner.tenant {
        return (
            Reply::Error(format!(
                "router pins tenant {}, request named {tenant}",
                inner.tenant
            )),
            false,
        );
    }
    // Read path: no router lock. A wire Shutdown (or front shutdown)
    // raises `stop` before the router is consumed, so the flag is the
    // liveness check here.
    match req {
        Request::Ping => return (Reply::Pong, false),
        Request::GetRows(ref nodes) => {
            if inner.stop.load(Ordering::Acquire) {
                return (Reply::Error("router is shut down".into()), true);
            }
            return match session.get_rows(nodes) {
                Ok(rows) => (Reply::Rows(rows), false),
                Err(e) => (Reply::Error(e.to_string()), false),
            };
        }
        Request::TopK {
            node,
            k,
            metric,
            ref query,
        } => {
            if inner.stop.load(Ordering::Acquire) {
                return (Reply::Error("router is shut down".into()), true);
            }
            return match session.top_k(node, k, metric, query.clone()) {
                Ok(t) => (Reply::TopKReply(t), false),
                Err(e) => (Reply::Error(e.to_string()), false),
            };
        }
        _ => {}
    }
    let mut guard = inner.router.lock().unwrap();
    let Some(router) = guard.as_mut() else {
        return (Reply::Error("router is shut down".into()), true);
    };
    match req {
        Request::Ping | Request::GetRows(_) | Request::TopK { .. } => {
            unreachable!("read path handled above")
        }
        Request::SubmitEvents(events) => match router.submit(events) {
            Ok(accepted) => (Reply::SubmitAck { accepted }, false),
            Err(e) => (Reply::Error(e.to_string()), false),
        },
        Request::Flush => match router.flush() {
            Ok(epoch) => (Reply::FlushAck { epoch }, false),
            Err(e) => (Reply::Error(e.to_string()), false),
        },
        Request::GetEmbedding => (
            Reply::Error(
                "router serves GetRows only: a cross-shard embedding has no \
                 single-process checksum"
                    .into(),
            ),
            false,
        ),
        Request::GetStats | Request::GetWindows { .. } | Request::GetCheckpoint => (
            Reply::Error("not served by the router tier; ask a shard directly".into()),
            false,
        ),
        Request::Shutdown => {
            router.shutdown_shards();
            *guard = None;
            inner.stop.store(true, Ordering::Release);
            (Reply::ShutdownAck, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(epoch: u64, checksum_bits: u64, dim: u32, rows: Vec<Option<Vec<f64>>>) -> RowsReply {
        RowsReply {
            epoch,
            checksum_bits,
            dim,
            rows,
        }
    }

    #[test]
    fn even_split_tiles_with_base_rem_rule() {
        let sources: Vec<u32> = (0..11).map(|i| i * 3).collect();
        let map = ShardMap::even_split(&sources, 4);
        assert_eq!(map.num_shards(), 4);
        // 11 rows over 4 shards: 3, 3, 3, 2.
        assert_eq!(map.range(0), (0, 3));
        assert_eq!(map.range(1), (3, 6));
        assert_eq!(map.range(2), (6, 9));
        assert_eq!(map.range(3), (9, 11));
        assert_eq!(map.sources_of(3), &[27, 30]);
        // Clamped: more shards than rows degenerates to one row each.
        assert_eq!(ShardMap::even_split(&[5, 6], 10).num_shards(), 2);
    }

    #[test]
    fn from_ranges_rejects_gap_overlap_and_short_cover() {
        let s: Vec<u32> = (0..6).collect();
        let gap = ShardMap::from_ranges(&s, vec![(0, 2), (3, 6)]).unwrap_err();
        assert!(gap.to_string().contains("gap"), "{gap}");
        let overlap = ShardMap::from_ranges(&s, vec![(0, 3), (2, 6)]).unwrap_err();
        assert!(overlap.to_string().contains("overlap"), "{overlap}");
        let short = ShardMap::from_ranges(&s, vec![(0, 3), (3, 5)]).unwrap_err();
        assert!(short.to_string().contains("cover 5 rows"), "{short}");
        let empty = ShardMap::from_ranges(&s, vec![(0, 0), (0, 6)]).unwrap_err();
        assert!(empty.to_string().contains("empty range"), "{empty}");
        assert!(ShardMap::from_ranges(&s, vec![(0, 3), (3, 6)]).is_ok());
    }

    #[test]
    fn plan_routes_by_owner_and_keeps_probe_entries() {
        let s: Vec<u32> = vec![10, 20, 30, 40];
        let map = ShardMap::even_split(&s, 2);
        // 99 is outside the subset; shard 1 gets nodes, shard 0 a probe.
        let plan = map.plan(&[40, 99, 30]);
        assert_eq!(plan.shard_nodes(0), &[] as &[u32]);
        assert_eq!(plan.shard_nodes(1), &[40, 30]);
        assert_eq!(plan.total, 3);
    }

    #[test]
    fn merge_reassembles_request_order_and_chains_checksums() {
        let s: Vec<u32> = vec![10, 20, 30, 40];
        let map = ShardMap::even_split(&s, 2);
        let plan = map.plan(&[40, 99, 10]);
        let replies = vec![
            reply(5, 111, 2, vec![Some(vec![1.0, 2.0])]), // shard 0: node 10
            reply(5, 222, 2, vec![Some(vec![3.0, 4.0])]), // shard 1: node 40
        ];
        let merged = map.merge(&plan, &replies).unwrap();
        assert_eq!(merged.epoch, 5);
        assert_eq!(merged.dim, 2);
        assert_eq!(merged.rows.len(), 3);
        assert_eq!(merged.rows[0], Some(vec![3.0, 4.0])); // 40
        assert_eq!(merged.rows[1], None); // 99: not in subset
        assert_eq!(merged.rows[2], Some(vec![1.0, 2.0])); // 10
        let expect = fnv1a64(
            fnv1a64(FNV_OFFSET, &111u64.to_le_bytes()),
            &222u64.to_le_bytes(),
        );
        assert_eq!(merged.checksum_bits, expect);
    }

    #[test]
    fn merge_rejects_row_count_gap_and_overlap() {
        let s: Vec<u32> = vec![1, 2, 3, 4];
        let map = ShardMap::even_split(&s, 2);
        let plan = map.plan(&[1, 3]);
        // Shard 1 answers zero slots for one requested node: a gap.
        let gap = map
            .merge(
                &plan,
                &[
                    reply(1, 0, 2, vec![Some(vec![0.0, 0.0])]),
                    reply(1, 0, 2, vec![]),
                ],
            )
            .unwrap_err();
        assert!(gap.to_string().contains("gap"), "{gap}");
        // Shard 1 answers two slots for one requested node: an overlap.
        let overlap = map
            .merge(
                &plan,
                &[
                    reply(1, 0, 2, vec![Some(vec![0.0, 0.0])]),
                    reply(1, 0, 2, vec![None, None]),
                ],
            )
            .unwrap_err();
        assert!(overlap.to_string().contains("overlap"), "{overlap}");
    }

    #[test]
    fn merge_rejects_epoch_and_dim_mismatch() {
        let s: Vec<u32> = vec![1, 2];
        let map = ShardMap::even_split(&s, 2);
        let plan = map.plan(&[]);
        let torn = map
            .merge(&plan, &[reply(3, 0, 2, vec![]), reply(4, 0, 2, vec![])])
            .unwrap_err();
        assert!(matches!(torn, RouterError::Merge(_)), "{torn}");
        assert!(torn.to_string().contains("torn"), "{torn}");
        let dim = map
            .merge(&plan, &[reply(3, 0, 2, vec![]), reply(3, 0, 4, vec![])])
            .unwrap_err();
        assert!(dim.to_string().contains("dim"), "{dim}");
    }
}
