//! Per-epoch top-k query state: cached row norms plus an incrementally
//! maintained cluster index over the live embedding.
//!
//! Every published [`EpochSnapshot`](crate::EpochSnapshot) carries an
//! immutable [`QueryState`] built (or incrementally refreshed) at publish
//! time, **not** per query:
//!
//! * **row norms** — the L2 norm and inverse norm of every embedding row,
//!   so cosine queries are a scaled dot product with zero per-query norm
//!   work. Norm buffers are recycled across epochs through a [`BufPool`]:
//!   once an old epoch's snapshot leaves the publish cell, its norm
//!   buffers drop to a single reference and the next refresh reclaims the
//!   allocation instead of re-allocating.
//! * **cluster index** (tier 2) — a k-means-lite partition of the rows
//!   (`C = ⌊√n⌋` clusters, deterministic seeding, two Lloyd rounds).
//!   Queries upper-bound every cluster by the standard centroid bound and
//!   scan only clusters that can still beat the current k-th hit, falling
//!   back to the exact gather scan inside survivors — so results are
//!   *identical* to the exact scan (recall@k = 1.0), just cheaper when the
//!   bound prunes.
//!
//! **Pruning bound.** For dot similarity, `q·x = q·c + q·(x−c) ≤ q·c +
//! ‖q‖·r_c` where `c` is the cluster centroid and `r_c = max_{x∈c}‖x−c‖`
//! its radius (Cauchy–Schwarz). For cosine, the same bound in the
//! normalised space (`x̂ = x/‖x‖`, unit `q̂`): `q̂·x̂ ≤ q̂·ĉ + r̂_c`. Both
//! bounds are inflated by a relative epsilon slack (~1e-9) so floating-
//! point rounding can never prune a true top-k member: member scores and
//! bounds are computed to ~1e-13 relative error, orders of magnitude
//! inside the slack. A cluster is skipped only when its slacked bound is
//! **strictly** below the current k-th score — a tie must be scanned,
//! because a tying row with a lower index wins under the canonical order.
//!
//! **Incremental maintenance.** The refresh runs alongside the flush
//! pipeline's commit (it rides the same background courier, overlapping
//! the next window's stage). Dirty rows are found by bitwise comparison
//! against the previous epoch's matrix — exact, and free of false
//! positives under the lazy Tree-SVD policy where most epochs change few
//! rows (an unchanged epoch reuses the whole index by `Arc` clone). Dirty
//! rows are reassigned to their nearest *previous* centroid and only the
//! touched clusters (old ∪ new homes) get their centroid, radius, and
//! member list recomputed; untouched clusters are copied verbatim.
//! Because pruning is exact, an incrementally maintained index and a
//! fresh full build return bitwise-identical query results even when
//! their internal cluster shapes differ.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use tsvd_core::TaggedEmbedding;
use tsvd_linalg::topk::{scan_rows_into, topk_scan, Hit, ScanScratch, TopK};
use tsvd_rt::pool;

/// Similarity metric of a top-k query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain dot product `q · x`.
    Dot,
    /// Cosine similarity `q · x / (‖q‖·‖x‖)`; zero-norm rows score 0.
    Cosine,
}

impl Metric {
    /// Wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            Metric::Dot => 0,
            Metric::Cosine => 1,
        }
    }

    /// Wire decoding; `None` for unknown bytes.
    pub fn from_u8(b: u8) -> Option<Metric> {
        match b {
            0 => Some(Metric::Dot),
            1 => Some(Metric::Cosine),
            _ => None,
        }
    }
}

/// The canonical inverse-norm: `1/‖v‖` with the sum of squares reduced
/// sequentially, `0.0` for the zero vector. Every caller (norm cache
/// build, ad-hoc query vectors, remote shards scoring a router-provided
/// vector) must use this exact function so cosine scores agree bitwise
/// across read paths.
pub(crate) fn inv_norm_of(v: &[f64]) -> f64 {
    let n = norm_of(v);
    if n == 0.0 {
        0.0
    } else {
        1.0 / n
    }
}

/// Sequential-sum L2 norm.
fn norm_of(v: &[f64]) -> f64 {
    let mut s = 0.0f64;
    for &x in v {
        s += x * x;
    }
    s.sqrt()
}

/// Don't bother clustering tiny subsets: a blocked scan over < 64 rows is
/// already a handful of panels.
const MIN_CLUSTER_ROWS: usize = 64;

/// Clusters scanned per parallel batch in the pruned query path.
const CLUSTER_BATCH: usize = 8;

/// Relative slack added to every cluster bound so float rounding can
/// never prune a true member (module docs).
const BOUND_SLACK: f64 = 1e-9;

/// Recycling pool for per-epoch norm buffers. The publisher holds it
/// across epochs; a stashed buffer is reclaimed once every snapshot that
/// references it has been dropped or swapped out of the epoch cell
/// (typically two epochs later).
pub(crate) struct BufPool {
    slots: VecDeque<Arc<Vec<f64>>>,
}

/// Keep at most this many stashed buffers (norms + inverse norms for ~2
/// generations).
const BUF_POOL_CAP: usize = 4;

impl BufPool {
    pub(crate) fn new() -> Self {
        BufPool {
            slots: VecDeque::new(),
        }
    }

    /// A zeroed buffer of `len`, reclaimed from a retired stash slot when
    /// one has dropped to a single reference, freshly allocated otherwise.
    fn grab(&mut self, len: usize) -> Vec<f64> {
        for i in 0..self.slots.len() {
            if Arc::strong_count(&self.slots[i]) == 1 {
                let arc = self.slots.remove(i).expect("index in bounds");
                let mut v = Arc::try_unwrap(arc).expect("sole owner");
                v.clear();
                v.resize(len, 0.0);
                return v;
            }
        }
        vec![0.0; len]
    }

    /// Register a freshly published buffer for future reclamation.
    fn stash(&mut self, arc: Arc<Vec<f64>>) {
        self.slots.push_back(arc);
        while self.slots.len() > BUF_POOL_CAP {
            self.slots.pop_front();
        }
    }
}

/// Immutable per-epoch query state (module docs): cached norms plus the
/// optional cluster index. Shared by `Arc` between the publish cell's
/// snapshot and the pipeline's refresh chain.
pub(crate) struct QueryState {
    norms: Arc<Vec<f64>>,
    inv_norms: Arc<Vec<f64>>,
    clusters: Option<Arc<ClusterIndex>>,
}

impl QueryState {
    /// Full build from scratch (initial epoch, re-seeded follower).
    pub(crate) fn build(tagged: &TaggedEmbedding) -> Arc<QueryState> {
        let mut bufs = BufPool::new();
        Self::build_with(tagged, &mut bufs)
    }

    fn build_with(tagged: &TaggedEmbedding, bufs: &mut BufPool) -> Arc<QueryState> {
        let rows = tagged.num_rows();
        let mut norms = bufs.grab(rows);
        let mut inv = bufs.grab(rows);
        for r in 0..rows {
            let n = norm_of(tagged.row(r));
            norms[r] = n;
            inv[r] = if n == 0.0 { 0.0 } else { 1.0 / n };
        }
        let norms = Arc::new(norms);
        let inv_norms = Arc::new(inv);
        bufs.stash(norms.clone());
        bufs.stash(inv_norms.clone());
        let clusters = if rows >= MIN_CLUSTER_ROWS {
            Some(Arc::new(ClusterIndex::build(tagged, &inv_norms)))
        } else {
            None
        };
        Arc::new(QueryState {
            norms,
            inv_norms,
            clusters,
        })
    }

    /// Incremental refresh from the previous epoch's state (module docs).
    /// `prev_tagged` must be the matrix `prev` was built over; a
    /// rows/dim change falls back to a full rebuild.
    pub(crate) fn refresh(
        prev: &Arc<QueryState>,
        prev_tagged: &TaggedEmbedding,
        next: &TaggedEmbedding,
        bufs: &mut BufPool,
    ) -> Arc<QueryState> {
        let rows = next.num_rows();
        let dim = next.dim();
        if prev_tagged.num_rows() != rows || prev_tagged.dim() != dim {
            return Self::build_with(next, bufs);
        }
        // Dirty rows by exact bitwise comparison: under the lazy update
        // policy most epochs touch few rows, and an untouched epoch costs
        // one memcmp sweep plus two Arc clones.
        let a = prev_tagged.left().as_slice();
        let b = next.left().as_slice();
        let mut dirty: Vec<u32> = Vec::new();
        for r in 0..rows {
            if a[r * dim..(r + 1) * dim] != b[r * dim..(r + 1) * dim] {
                dirty.push(r as u32);
            }
        }
        if dirty.is_empty() {
            return Arc::new(QueryState {
                norms: prev.norms.clone(),
                inv_norms: prev.inv_norms.clone(),
                clusters: prev.clusters.clone(),
            });
        }
        let mut norms = bufs.grab(rows);
        let mut inv = bufs.grab(rows);
        norms.copy_from_slice(&prev.norms);
        inv.copy_from_slice(&prev.inv_norms);
        for &r in &dirty {
            let n = norm_of(next.row(r as usize));
            norms[r as usize] = n;
            inv[r as usize] = if n == 0.0 { 0.0 } else { 1.0 / n };
        }
        let norms = Arc::new(norms);
        let inv_norms = Arc::new(inv);
        bufs.stash(norms.clone());
        bufs.stash(inv_norms.clone());
        let clusters = prev
            .clusters
            .as_ref()
            .map(|ci| Arc::new(ci.refresh(&dirty, next, &inv_norms)));
        Arc::new(QueryState {
            norms,
            inv_norms,
            clusters,
        })
    }

    /// Cached L2 norm of every row.
    pub(crate) fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// Whether this epoch carries a tier-2 cluster index.
    pub(crate) fn has_clusters(&self) -> bool {
        self.clusters.is_some()
    }

    /// Answer a top-k query over `tagged` (the matrix this state was
    /// published with). `exclude` is a row to skip (the query node
    /// itself). `force_scan` bypasses the cluster index — results are
    /// identical either way; only the work differs.
    pub(crate) fn top_k_rows(
        &self,
        tagged: &TaggedEmbedding,
        q: &[f64],
        k: usize,
        metric: Metric,
        exclude: Option<u32>,
        force_scan: bool,
    ) -> Vec<Hit> {
        let rows = tagged.num_rows();
        let dim = tagged.dim();
        assert_eq!(q.len(), dim, "query dimension mismatch");
        if k == 0 || rows == 0 {
            return Vec::new();
        }
        let data = tagged.left().as_slice();
        let (q_scale, row_scale) = match metric {
            Metric::Dot => (1.0, None),
            Metric::Cosine => (inv_norm_of(q), Some(self.inv_norms.as_slice())),
        };
        match (&self.clusters, force_scan) {
            (Some(ci), false) => {
                let mut tk = ci.query(
                    data,
                    dim,
                    q,
                    k,
                    metric,
                    exclude,
                    q_scale,
                    row_scale,
                    &self.norms,
                );
                let mut out = Vec::with_capacity(tk.len());
                tk.drain_sorted_into(&mut out);
                out
            }
            _ => {
                let mut out = Vec::new();
                QSCRATCH.with(|s| {
                    let scratch = &mut *s.borrow_mut();
                    topk_scan(
                        data, rows, dim, q, k, exclude, q_scale, row_scale, scratch, &mut out,
                    );
                });
                out
            }
        }
    }
}

thread_local! {
    /// Per-thread scan workspace so snapshot-level queries allocate
    /// nothing in the kernel at steady state.
    static QSCRATCH: std::cell::RefCell<ScanScratch> = std::cell::RefCell::new(ScanScratch::new());
}

/// Tier-2 cluster index (module docs). Immutable once built; refreshes
/// produce a new index sharing nothing mutable.
pub(crate) struct ClusterIndex {
    dim: usize,
    /// Row → cluster.
    assign: Vec<u32>,
    /// Cluster → member rows, ascending.
    members: Vec<Vec<u32>>,
    /// `C × dim` centroids in raw space.
    centroids: Vec<f64>,
    /// Max Euclidean distance member → centroid, per cluster (raw space).
    radius: Vec<f64>,
    /// `C × dim` centroids of the normalised rows.
    centroids_hat: Vec<f64>,
    /// Max distance in normalised space.
    radius_hat: Vec<f64>,
}

impl ClusterIndex {
    /// Number of clusters for `rows`: `⌊√rows⌋`, at least 1.
    fn num_clusters(rows: usize) -> usize {
        ((rows as f64).sqrt() as usize).max(1)
    }

    /// Deterministic k-means-lite build: contiguous seeding, two Lloyd
    /// rounds (ties to the lowest cluster id), then exact per-cluster
    /// centroid/radius in both raw and normalised space.
    fn build(tagged: &TaggedEmbedding, inv_norms: &[f64]) -> ClusterIndex {
        let rows = tagged.num_rows();
        let dim = tagged.dim();
        let c = Self::num_clusters(rows);
        let data = tagged.left().as_slice();
        // Seed: row r starts in cluster ⌊r·C/rows⌋ (contiguous, balanced).
        let mut assign: Vec<u32> = (0..rows).map(|r| (r * c / rows) as u32).collect();
        let mut centroids = vec![0.0f64; c * dim];
        for _round in 0..2 {
            Self::centroids_of(data, rows, dim, c, &assign, &mut centroids);
            let next: Vec<u32> = pool::par_map(rows, |r| {
                Self::nearest(&data[r * dim..(r + 1) * dim], &centroids, c)
            });
            assign = next;
        }
        Self::finish(rows, dim, c, data, assign, inv_norms)
    }

    /// Incremental refresh: reassign only `dirty` rows (against the
    /// *previous* centroids), then recompute exactly the touched clusters.
    fn refresh(&self, dirty: &[u32], next: &TaggedEmbedding, inv_norms: &[f64]) -> ClusterIndex {
        let rows = next.num_rows();
        let dim = next.dim();
        let c = self.members.len();
        debug_assert_eq!(dim, self.dim);
        let data = next.left().as_slice();
        let mut assign = self.assign.clone();
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for &r in dirty {
            let old = assign[r as usize];
            let new = Self::nearest(
                &data[r as usize * dim..(r as usize + 1) * dim],
                &self.centroids,
                c,
            );
            assign[r as usize] = new;
            touched.insert(old);
            touched.insert(new);
        }
        // Member lists are rebuilt with one O(rows) sweep (ascending by
        // construction); per-cluster stats only for touched clusters —
        // untouched clusters kept the same members over identical rows.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); c];
        for (r, &a) in assign.iter().enumerate() {
            members[a as usize].push(r as u32);
        }
        let mut out = ClusterIndex {
            dim,
            assign,
            members,
            centroids: self.centroids.clone(),
            radius: self.radius.clone(),
            centroids_hat: self.centroids_hat.clone(),
            radius_hat: self.radius_hat.clone(),
        };
        let _ = rows;
        for &t in &touched {
            out.recompute_cluster(t as usize, data, inv_norms);
        }
        out
    }

    /// Full per-cluster finish: members, centroids, radii, hat versions.
    fn finish(
        rows: usize,
        dim: usize,
        c: usize,
        data: &[f64],
        assign: Vec<u32>,
        inv_norms: &[f64],
    ) -> ClusterIndex {
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); c];
        for (r, &a) in assign.iter().enumerate() {
            members[a as usize].push(r as u32);
        }
        let _ = rows;
        let mut out = ClusterIndex {
            dim,
            assign,
            members,
            centroids: vec![0.0; c * dim],
            radius: vec![0.0; c],
            centroids_hat: vec![0.0; c * dim],
            radius_hat: vec![0.0; c],
        };
        for k in 0..c {
            out.recompute_cluster(k, data, inv_norms);
        }
        out
    }

    /// Recompute one cluster's centroid/radius in raw and normalised
    /// space from its current member list (ascending, so sums are
    /// deterministic).
    fn recompute_cluster(&mut self, k: usize, data: &[f64], inv_norms: &[f64]) {
        let dim = self.dim;
        let cen = &mut self.centroids[k * dim..(k + 1) * dim];
        let cen_hat = &mut self.centroids_hat[k * dim..(k + 1) * dim];
        cen.fill(0.0);
        cen_hat.fill(0.0);
        let m = &self.members[k];
        if m.is_empty() {
            self.radius[k] = 0.0;
            self.radius_hat[k] = 0.0;
            return;
        }
        for &r in m {
            let row = &data[r as usize * dim..(r as usize + 1) * dim];
            let s = inv_norms[r as usize];
            for j in 0..dim {
                cen[j] += row[j];
                cen_hat[j] += row[j] * s;
            }
        }
        let count = m.len() as f64;
        for j in 0..dim {
            cen[j] /= count;
            cen_hat[j] /= count;
        }
        let mut rad = 0.0f64;
        let mut rad_hat = 0.0f64;
        for &r in m {
            let row = &data[r as usize * dim..(r as usize + 1) * dim];
            let s = inv_norms[r as usize];
            let mut d2 = 0.0f64;
            let mut d2h = 0.0f64;
            for j in 0..dim {
                let d = row[j] - cen[j];
                d2 += d * d;
                let dh = row[j] * s - cen_hat[j];
                d2h += dh * dh;
            }
            rad = rad.max(d2.sqrt());
            rad_hat = rad_hat.max(d2h.sqrt());
        }
        self.radius[k] = rad;
        self.radius_hat[k] = rad_hat;
    }

    /// Mean of each cluster's members (ascending-row sums; empty clusters
    /// keep a zero centroid).
    fn centroids_of(
        data: &[f64],
        rows: usize,
        dim: usize,
        c: usize,
        assign: &[u32],
        centroids: &mut [f64],
    ) {
        centroids.fill(0.0);
        let mut counts = vec![0usize; c];
        for r in 0..rows {
            let k = assign[r] as usize;
            counts[k] += 1;
            let row = &data[r * dim..(r + 1) * dim];
            let cen = &mut centroids[k * dim..(k + 1) * dim];
            for j in 0..dim {
                cen[j] += row[j];
            }
        }
        for k in 0..c {
            if counts[k] > 0 {
                let inv = 1.0 / counts[k] as f64;
                for v in &mut centroids[k * dim..(k + 1) * dim] {
                    *v *= inv;
                }
            }
        }
    }

    /// Nearest centroid by squared Euclidean distance, ties to the lowest
    /// cluster id.
    fn nearest(row: &[f64], centroids: &[f64], c: usize) -> u32 {
        let dim = row.len();
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for k in 0..c {
            let cen = &centroids[k * dim..(k + 1) * dim];
            let mut d2 = 0.0f64;
            for j in 0..dim {
                let d = row[j] - cen[j];
                d2 += d * d;
            }
            if d2 < best_d {
                best_d = d2;
                best = k as u32;
            }
        }
        best
    }

    /// Pruned exact query (module docs): bound every cluster, visit them
    /// best-bound first in parallel batches, stop as soon as no remaining
    /// bound can beat the current k-th hit.
    #[allow(clippy::too_many_arguments)]
    fn query(
        &self,
        data: &[f64],
        dim: usize,
        q: &[f64],
        k: usize,
        metric: Metric,
        exclude: Option<u32>,
        q_scale: f64,
        row_scale: Option<&[f64]>,
        _norms: &[f64],
    ) -> TopK {
        debug_assert_eq!(dim, self.dim);
        let c = self.members.len();
        let q_norm = norm_of(q);
        // Slacked upper bound per cluster (module docs).
        let mut order: Vec<(u32, f64)> = (0..c as u32)
            .map(|kc| {
                let kc_us = kc as usize;
                let ub = match metric {
                    Metric::Dot => {
                        let cen = &self.centroids[kc_us * dim..(kc_us + 1) * dim];
                        let mut dot = 0.0f64;
                        for j in 0..dim {
                            dot += q[j] * cen[j];
                        }
                        dot + q_norm * self.radius[kc_us]
                    }
                    Metric::Cosine => {
                        let cen = &self.centroids_hat[kc_us * dim..(kc_us + 1) * dim];
                        let mut dot = 0.0f64;
                        for j in 0..dim {
                            dot += q[j] * cen[j];
                        }
                        dot * q_scale + self.radius_hat[kc_us]
                    }
                };
                (kc, ub + BOUND_SLACK * (1.0 + ub.abs()))
            })
            .collect();
        order.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut global = TopK::new(k);
        global.reset(k);
        let mut i = 0;
        while i < order.len() {
            if let Some(w) = global.worst() {
                // Strictly below the k-th score ⇒ this and every later
                // cluster can be skipped (bounds are sorted descending).
                // A tie is still scanned: a tying row with a lower index
                // would displace the current worst.
                if order[i].1 < w.score {
                    break;
                }
            }
            let end = (i + CLUSTER_BATCH).min(order.len());
            // Clusters in one batch scan in parallel; the merge is order-
            // independent because the hit order is total. Later clusters
            // of a batch may turn out prunable — scanning them is wasted
            // work only, never a different result.
            let batch: Vec<TopK> = pool::par_map(end - i, |j| {
                let kc = order[i + j].0 as usize;
                let mut tk = TopK::new(k);
                tk.reset(k);
                scan_rows_into(
                    data,
                    dim,
                    &self.members[kc],
                    q,
                    exclude,
                    q_scale,
                    row_scale,
                    &mut tk,
                );
                tk
            });
            for tk in &batch {
                global.merge_from(tk);
            }
            i = end;
        }
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::Embedding;
    use tsvd_linalg::topk::topk_scan_naive;
    use tsvd_linalg::DenseMatrix;
    use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

    fn tagged(seed: u64, rows: usize, dim: usize, epoch: u64) -> TaggedEmbedding {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * dim)
            .map(|_| rng.gen_range(-1000..1000) as f64 / 83.0)
            .collect();
        Embedding {
            u: DenseMatrix::from_vec(rows, dim, data),
            sigma: vec![1.0; dim],
            dim,
        }
        .tagged(epoch)
    }

    fn assert_hits_eq(a: &[Hit], b: &[Hit]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.row, y.row);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn clustered_query_is_bitwise_exact_vs_naive_both_metrics() {
        let rows = 300;
        let dim = 16;
        let t = tagged(3, rows, dim, 0);
        let state = QueryState::build(&t);
        assert!(state.has_clusters());
        let data = t.left().as_slice();
        for metric in [Metric::Dot, Metric::Cosine] {
            for qrow in [0usize, 17, 299] {
                let q = t.row(qrow).to_vec();
                let (q_scale, row_scale) = match metric {
                    Metric::Dot => (1.0, None),
                    Metric::Cosine => (
                        inv_norm_of(&q),
                        Some({
                            let inv: &[f64] = &state.inv_norms;
                            inv
                        }),
                    ),
                };
                let naive = topk_scan_naive(
                    data,
                    rows,
                    dim,
                    &q,
                    10,
                    Some(qrow as u32),
                    q_scale,
                    row_scale,
                );
                let clustered = state.top_k_rows(&t, &q, 10, metric, Some(qrow as u32), false);
                let scanned = state.top_k_rows(&t, &q, 10, metric, Some(qrow as u32), true);
                assert_hits_eq(&clustered, &naive);
                assert_hits_eq(&scanned, &naive);
            }
        }
    }

    #[test]
    fn small_subset_skips_cluster_index() {
        let t = tagged(5, 20, 8, 0);
        let state = QueryState::build(&t);
        assert!(!state.has_clusters());
        let q = t.row(1).to_vec();
        let hits = state.top_k_rows(&t, &q, 5, Metric::Dot, Some(1), false);
        let naive = topk_scan_naive(t.left().as_slice(), 20, 8, &q, 5, Some(1), 1.0, None);
        assert_hits_eq(&hits, &naive);
    }

    #[test]
    fn refresh_tracks_dirty_rows_exactly() {
        let rows = 200;
        let dim = 12;
        let t0 = tagged(7, rows, dim, 0);
        let state0 = QueryState::build(&t0);
        let mut bufs = BufPool::new();

        // Mutate a handful of rows to make epoch 1.
        let mut data: Vec<f64> = t0.left().as_slice().to_vec();
        for &r in &[3usize, 50, 51, 180] {
            for j in 0..dim {
                data[r * dim + j] = -data[r * dim + j] + 0.25;
            }
        }
        let t1 = Embedding {
            u: DenseMatrix::from_vec(rows, dim, data),
            sigma: vec![1.0; dim],
            dim,
        }
        .tagged(1);
        let state1 = QueryState::refresh(&state0, &t0, &t1, &mut bufs);
        // Norms agree with a full rebuild, bitwise.
        let full = QueryState::build(&t1);
        for r in 0..rows {
            assert_eq!(
                state1.norms[r].to_bits(),
                full.norms[r].to_bits(),
                "row {r}"
            );
            assert_eq!(state1.inv_norms[r].to_bits(), full.inv_norms[r].to_bits());
        }
        // Query results agree with naive, for both the refreshed and the
        // fully rebuilt index (internal shapes may differ; results not).
        for metric in [Metric::Dot, Metric::Cosine] {
            let q = t1.row(50).to_vec();
            let (q_scale, row_scale) = match metric {
                Metric::Dot => (1.0, None),
                Metric::Cosine => (inv_norm_of(&q), Some(state1.inv_norms.as_slice())),
            };
            let naive = topk_scan_naive(
                t1.left().as_slice(),
                rows,
                dim,
                &q,
                8,
                Some(50),
                q_scale,
                row_scale,
            );
            assert_hits_eq(
                &state1.top_k_rows(&t1, &q, 8, metric, Some(50), false),
                &naive,
            );
            assert_hits_eq(
                &full.top_k_rows(&t1, &q, 8, metric, Some(50), false),
                &naive,
            );
        }
    }

    #[test]
    fn clean_refresh_reuses_the_whole_state_by_arc() {
        let t0 = tagged(9, 100, 8, 0);
        let state0 = QueryState::build(&t0);
        let mut bufs = BufPool::new();
        let t1 = Embedding {
            u: DenseMatrix::from_vec(100, 8, t0.left().as_slice().to_vec()),
            sigma: vec![1.0; 8],
            dim: 8,
        }
        .tagged(1);
        let state1 = QueryState::refresh(&state0, &t0, &t1, &mut bufs);
        assert!(Arc::ptr_eq(&state0.norms, &state1.norms));
        assert!(Arc::ptr_eq(&state0.inv_norms, &state1.inv_norms));
        assert!(Arc::ptr_eq(
            state0.clusters.as_ref().unwrap(),
            state1.clusters.as_ref().unwrap()
        ));
    }

    #[test]
    fn buf_pool_recycles_retired_norm_buffers() {
        let rows = 80;
        let dim = 8;
        let mut bufs = BufPool::new();
        let t0 = tagged(11, rows, dim, 0);
        let state0 = QueryState::build_with(&t0, &mut bufs);
        let ptr0 = state0.norms.as_ptr();

        // Epoch 1 dirties a row; epoch-0 state is then fully retired.
        let mut data = t0.left().as_slice().to_vec();
        data[0] += 1.0;
        let t1 = Embedding {
            u: DenseMatrix::from_vec(rows, dim, data.clone()),
            sigma: vec![1.0; dim],
            dim,
        }
        .tagged(1);
        let state1 = QueryState::refresh(&state0, &t0, &t1, &mut bufs);
        drop(state0); // last external ref to epoch 0's buffers

        data[1] += 1.0;
        let t2 = Embedding {
            u: DenseMatrix::from_vec(rows, dim, data),
            sigma: vec![1.0; dim],
            dim,
        }
        .tagged(2);
        let state2 = QueryState::refresh(&state1, &t1, &t2, &mut bufs);
        let reused = [state2.norms.as_ptr(), state2.inv_norms.as_ptr()];
        assert!(
            reused.contains(&ptr0),
            "epoch-2 refresh did not reclaim epoch-0's retired buffer"
        );
    }

    #[test]
    fn metric_wire_codes_round_trip() {
        for m in [Metric::Dot, Metric::Cosine] {
            assert_eq!(Metric::from_u8(m.as_u8()), Some(m));
        }
        assert_eq!(Metric::from_u8(2), None);
        assert_eq!(Metric::from_u8(255), None);
    }
}
