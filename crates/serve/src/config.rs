//! Serving-layer configuration.

use std::time::Duration;

/// Configuration of the serving front: shard fan-out plus the batching
/// window that trades per-event latency against update amortisation.
///
/// A flush is triggered by whichever fires first:
///
/// * **count** — the pending buffer reaches [`ServeConfig::flush_max_events`];
/// * **deadline** — the oldest pending event is
///   [`ServeConfig::flush_interval`] old.
///
/// With `coalesce` on (the default), each flushed window is normalised with
/// [`tsvd_graph::coalesce`] — one event per `(u, v)` pair, last write wins —
/// before it reaches the engine, so a hot edge flapping inside one window
/// costs one update, not many.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of pipeline replicas `R` the subset's rows are sharded over.
    /// Clamped to `|S|` at engine construction.
    pub num_shards: usize,
    /// Flush as soon as this many events are pending.
    pub flush_max_events: usize,
    /// Flush when the oldest pending event reaches this age (milliseconds).
    pub flush_interval_ms: u64,
    /// Last-write-wins dedup of each window before applying it.
    pub coalesce: bool,
    /// Flush pipelining depth: `0` runs each window's two phases serially
    /// on the reactor's flush; `1` overlaps phase 1 (PPR replay + row
    /// rebuild) of window `k+1` with phase 2 (Tree-SVD refresh) of window
    /// `k` via [`crate::FlushPipeline`]. Published embeddings are bitwise
    /// identical either way — this is purely a latency/throughput knob.
    pub pipeline_depth: usize,
    /// Whether the engines behind this server run the incremental SVD
    /// update path. The actual switch lives in the Tree-SVD config
    /// (`UpdatePolicy`, resolved against `TSVD_SVD_UPDATE` at
    /// `DynamicTreeSvd` construction); this field mirrors the same env
    /// default so the serving layer can report the mode in
    /// [`crate::ServeStats`].
    pub svd_update: bool,
    /// Per-tenant admission quota: the maximum number of submitted-but-not
    /// -yet-applied events a tenant may have pending. Submissions beyond it
    /// are rejected at admission (`SubmitError::QuotaExceeded`), which is
    /// the backpressure signal for that tenant's writers — other tenants
    /// are unaffected. `0` disables the quota (unbounded).
    pub tenant_quota: u64,
    /// Mirror of the `TSVD_WAL` env toggle. The durability sink itself is
    /// injected via `EmbeddingServer::start_with_store` (a config stays
    /// `Copy` and cannot carry a path); this field records the intent so
    /// test harnesses and binaries can branch on one knob when deciding
    /// whether to attach a `tsvd-store` WAL to the server they start.
    pub wal: bool,
    /// With a durability sink attached: write a full host checkpoint (and
    /// compact the WAL behind it) every this many flushed windows. `0`
    /// checkpoints only at shutdown. Ignored without a sink.
    pub checkpoint_every: u64,
    /// How many recent flush windows the in-memory journal retains for
    /// `GetWindows` (follower feed). `0` = the built-in default
    /// ([`crate::journal::JOURNAL_KEEP`]). Small values force the
    /// compaction / re-seed path — useful in tests.
    pub journal_keep: usize,
}

tsvd_rt::impl_json_struct!(ServeConfig {
    num_shards,
    flush_max_events,
    flush_interval_ms,
    coalesce,
    pipeline_depth,
    svd_update,
    tenant_quota,
    wal,
    checkpoint_every,
    journal_keep
});

/// Default pipeline depth: the `TSVD_PIPELINE_DEPTH` env var if set and
/// parseable, else `0` (serial flushes). Read per call — not memoized —
/// so test batteries can be swept under both modes by the CI driver.
fn default_pipeline_depth() -> usize {
    std::env::var("TSVD_PIPELINE_DEPTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Default incremental-SVD toggle: the `TSVD_SVD_UPDATE` env var, read per
/// call like [`default_pipeline_depth`]. Same resolution the engine's
/// `UpdatePolicy` applies.
fn default_svd_update() -> bool {
    tsvd_core::UpdatePolicy::svd_update_env()
}

/// Default WAL toggle: the `TSVD_WAL` env var, read per call like
/// [`default_pipeline_depth`]; unset, empty, and `"0"` mean off.
fn default_wal() -> bool {
    std::env::var("TSVD_WAL")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_shards: 4,
            flush_max_events: 512,
            flush_interval_ms: 20,
            coalesce: true,
            pipeline_depth: default_pipeline_depth(),
            svd_update: default_svd_update(),
            tenant_quota: 0,
            wal: default_wal(),
            checkpoint_every: 0,
            journal_keep: 0,
        }
    }
}

impl ServeConfig {
    /// The deadline trigger as a [`Duration`].
    pub fn flush_interval(&self) -> Duration {
        Duration::from_millis(self.flush_interval_ms)
    }

    /// The admission quota as an `Option` (`None` = unbounded).
    pub fn quota(&self) -> Option<u64> {
        (self.tenant_quota > 0).then_some(self.tenant_quota)
    }

    /// Panic on nonsensical settings (zero shards or degenerate windows).
    pub fn validate(&self) {
        assert!(self.num_shards >= 1, "need at least one shard");
        assert!(
            self.flush_max_events >= 1,
            "flush window must hold ≥ 1 event"
        );
        assert!(self.flush_interval_ms >= 1, "flush deadline must be ≥ 1ms");
        assert!(
            self.pipeline_depth <= 1,
            "pipeline depth > 1 is not supported"
        );
    }
}

/// Configuration of the scatter-gather router tier
/// ([`crate::router::Router`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Tenant id the router serves (one router instance pins one tenant,
    /// like a [`crate::net::NetClient`]).
    pub tenant: u32,
    /// Epoch barrier: how many times a lagging shard is re-probed before
    /// the read fails with [`crate::router::RouterError::EpochBarrier`].
    pub barrier_retries: u32,
    /// Backoff between barrier retries, milliseconds (linear: attempt `k`
    /// sleeps `k * barrier_backoff_ms`).
    pub barrier_backoff_ms: u64,
    /// Page size (windows per pull) a failed-over follower uses while
    /// catching up / re-seeding.
    pub catch_up_page: u32,
}

tsvd_rt::impl_json_struct!(RouterConfig {
    tenant,
    barrier_retries,
    barrier_backoff_ms,
    catch_up_page
});

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            tenant: 0,
            barrier_retries: 8,
            barrier_backoff_ms: 2,
            catch_up_page: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::json::{FromJson, Json};

    #[test]
    fn default_validates_and_round_trips() {
        let cfg = ServeConfig::default();
        cfg.validate();
        assert_eq!(cfg.flush_interval(), Duration::from_millis(20));
        let j = Json::parse(&tsvd_rt::json::ToJson::to_json(&cfg).to_string()).unwrap();
        let back = ServeConfig::from_json(&j).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn router_config_round_trips() {
        let cfg = RouterConfig {
            tenant: 3,
            barrier_retries: 2,
            barrier_backoff_ms: 7,
            catch_up_page: 16,
        };
        let j = Json::parse(&tsvd_rt::json::ToJson::to_json(&cfg).to_string()).unwrap();
        assert_eq!(RouterConfig::from_json(&j).unwrap(), cfg);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ServeConfig {
            num_shards: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "≥ 1 event")]
    fn zero_window_rejected() {
        ServeConfig {
            flush_max_events: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "depth > 1")]
    fn deep_pipeline_rejected() {
        ServeConfig {
            pipeline_depth: 2,
            ..Default::default()
        }
        .validate();
    }
}
