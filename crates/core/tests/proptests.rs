//! Property-based tests for the Tree-SVD core: norm bookkeeping, the
//! empirical Theorem 3.2 bound, and dynamic-vs-static equivalence under the
//! eager policy, on arbitrary matrices and update sequences.

use tsvd_core::{
    BlockedProximityMatrix, DynamicTreeSvd, Level1Method, TreeSvd, TreeSvdConfig, UpdatePolicy,
};
use tsvd_linalg::svd::exact_svd;
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::{ensure, ensure_eq};

fn checker() -> Checker {
    Checker::new(48).with_regressions("tests/proptests.proptest-regressions")
}

type SparseRows = Vec<Vec<(u32, f64)>>;
type RowRewrites = Vec<(usize, Vec<(u32, f64)>)>;

/// A blocked matrix plus a sequence of row rewrites.
fn matrix_and_updates(g: &mut Gen) -> (usize, usize, usize, SparseRows, RowRewrites) {
    let rows = g.usize_in(2..8);
    let cols = g.usize_in(8..40);
    let blocks = g.usize_in(1..6).min(cols);
    let initial: SparseRows = (0..rows)
        .map(|_| g.sparse_row(cols as u32, cols.min(10), 0.1..5.0))
        .collect();
    let updates: RowRewrites = g.vec(0..8, |g| {
        (
            g.usize_in(0..rows),
            g.sparse_row(cols as u32, cols.min(10), 0.1..5.0),
        )
    });
    (rows, cols, blocks, initial, updates)
}

fn cfg(blocks: usize, dim: usize) -> TreeSvdConfig {
    TreeSvdConfig {
        dim,
        branching: 2,
        num_blocks: blocks,
        oversample: 6,
        power_iters: 2,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::ChangedOnly,
        partition: tsvd_core::PartitionStrategy::EqualWidth,
        seed: 3,
    }
}

#[test]
fn norm_bookkeeping_is_exact() {
    checker().run("norm_bookkeeping_is_exact", |g| {
        let (rows, cols, blocks, initial, updates) = matrix_and_updates(g);
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        for (i, row) in &updates {
            m.set_row(*i, row);
        }
        // Per-block and total Frobenius norms match a from-scratch CSR.
        let csr = m.to_csr();
        ensure!((m.frobenius_norm_sq() - csr.frobenius_norm_sq()).abs() < 1e-9);
        for j in 0..blocks {
            let want = m.block_csr(j).frobenius_norm_sq();
            ensure!((m.block_norm_sq(j) - want).abs() < 1e-9, "block {j}");
        }
        ensure_eq!(csr.nnz(), m.nnz());
        Ok(())
    });
}

#[test]
fn theorem_3_2_bound_holds() {
    checker().run("theorem_3_2_bound_holds", |g| {
        let (rows, cols, blocks, initial, _) = matrix_and_updates(g);
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        let d = 3usize.min(rows);
        let c = cfg(blocks, d);
        let emb = TreeSvd::new(c).embed(&m);
        let csr = m.to_csr();
        let resid = emb.projection_residual(&csr);
        // Theorem 3.2 with ε from the randomized level (generous ε = 0.5):
        // ‖Ψ‖ ≤ ((2+ε)(1+√2)^{q−1} − 1)·‖M − M_d‖.
        let exact = exact_svd(&csr.to_dense());
        let opt: f64 = exact.s.iter().skip(d).map(|s| s * s).sum::<f64>().sqrt();
        let q = c.levels() as i32;
        let bound = (2.5 * (1.0 + std::f64::consts::SQRT_2).powi(q - 1) - 1.0) * opt;
        // The absolute floor covers rank ≤ d inputs, where opt == 0 but the
        // randomized level-1 factorisation leaves rounding-level residue.
        let floor = 1e-6 * (1.0 + csr.frobenius_norm());
        ensure!(
            resid <= bound + floor,
            "residual {resid} exceeds Thm 3.2 bound {bound} (opt {opt}, q {q})"
        );
        Ok(())
    });
}

#[test]
fn eager_dynamic_equals_fresh_static() {
    checker().run("eager_dynamic_equals_fresh_static", |g| {
        let (rows, cols, blocks, initial, updates) = matrix_and_updates(g);
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        let d = 3usize.min(rows);
        let c = cfg(blocks, d);
        let mut dt = DynamicTreeSvd::new(c);
        dt.build(&m);
        for (i, row) in &updates {
            m.set_row(*i, row);
        }
        let (emb, stats) = dt.update(&m);
        let fresh = TreeSvd::new(c).embed(&m);
        ensure!(
            emb.left().sub(&fresh.left()).max_abs() < 1e-10,
            "eager dynamic != fresh static ({} blocks redone)",
            stats.blocks_recomputed
        );
        Ok(())
    });
}

#[test]
fn lazy_never_recomputes_more_than_eager() {
    checker().run("lazy_never_recomputes_more_than_eager", |g| {
        let (rows, cols, blocks, initial, updates) = matrix_and_updates(g);
        let mut m1 = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m1.set_row(i, row);
        }
        let mut m2 = m1.clone();
        let d = 3usize.min(rows);
        let mut lazy = DynamicTreeSvd::new(TreeSvdConfig {
            policy: UpdatePolicy::Lazy { delta: 0.65 },
            ..cfg(blocks, d)
        });
        let mut eager = DynamicTreeSvd::new(cfg(blocks, d));
        lazy.build(&m1);
        eager.build(&m2);
        for (i, row) in &updates {
            m1.set_row(*i, row);
            m2.set_row(*i, row);
        }
        let (_, ls) = lazy.update(&m1);
        let (_, es) = eager.update(&m2);
        ensure!(ls.blocks_recomputed <= es.blocks_recomputed);
        ensure_eq!(ls.blocks_changed, es.blocks_changed);
        Ok(())
    });
}

#[test]
fn update_stats_are_consistent() {
    checker().run("update_stats_are_consistent", |g| {
        let (rows, cols, blocks, initial, updates) = matrix_and_updates(g);
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        let d = 2usize.min(rows);
        let mut dt = DynamicTreeSvd::new(cfg(blocks, d));
        dt.build(&m);
        for (i, row) in &updates {
            m.set_row(*i, row);
        }
        let (_, stats) = dt.update(&m);
        ensure_eq!(stats.blocks_total, blocks);
        ensure!(stats.blocks_recomputed <= stats.blocks_changed);
        ensure!(stats.blocks_changed <= blocks);
        if stats.blocks_recomputed == 0 {
            ensure_eq!(stats.merges_recomputed, 0);
        }
        Ok(())
    });
}
