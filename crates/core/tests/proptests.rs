//! Property-based tests for the Tree-SVD core: norm bookkeeping, the
//! empirical Theorem 3.2 bound, and dynamic-vs-static equivalence under the
//! eager policy, on arbitrary matrices and update sequences.

use proptest::prelude::*;
use tsvd_core::{
    BlockedProximityMatrix, DynamicTreeSvd, Level1Method, TreeSvd, TreeSvdConfig, UpdatePolicy,
};
use tsvd_linalg::svd::exact_svd;

/// Strategy: a row's sparse entries over `cols` columns (sorted, distinct).
fn sparse_row(cols: usize) -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::btree_map(0..cols as u32, 0.1..5.0f64, 0..cols.min(10))
        .prop_map(|m| m.into_iter().collect())
}

type SparseRows = Vec<Vec<(u32, f64)>>;
type RowRewrites = Vec<(usize, Vec<(u32, f64)>)>;

/// Strategy: a blocked matrix plus a sequence of row rewrites.
fn matrix_and_updates(
) -> impl Strategy<Value = (usize, usize, usize, SparseRows, RowRewrites)> {
    (2usize..8, 8usize..40, 1usize..6).prop_flat_map(|(rows, cols, blocks)| {
        let blocks = blocks.min(cols);
        let initial = proptest::collection::vec(sparse_row(cols), rows);
        let updates = proptest::collection::vec((0..rows, sparse_row(cols)), 0..8);
        (Just(rows), Just(cols), Just(blocks), initial, updates)
    })
}

fn cfg(blocks: usize, dim: usize) -> TreeSvdConfig {
    TreeSvdConfig {
        dim,
        branching: 2,
        num_blocks: blocks,
        oversample: 6,
        power_iters: 2,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::ChangedOnly,
        partition: tsvd_core::PartitionStrategy::EqualWidth,
        seed: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn norm_bookkeeping_is_exact(
        (rows, cols, blocks, initial, updates) in matrix_and_updates()
    ) {
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        for (i, row) in &updates {
            m.set_row(*i, row);
        }
        // Per-block and total Frobenius norms match a from-scratch CSR.
        let csr = m.to_csr();
        prop_assert!((m.frobenius_norm_sq() - csr.frobenius_norm_sq()).abs() < 1e-9);
        for j in 0..blocks {
            let want = m.block_csr(j).frobenius_norm_sq();
            prop_assert!((m.block_norm_sq(j) - want).abs() < 1e-9, "block {j}");
        }
        prop_assert_eq!(csr.nnz(), m.nnz());
    }

    #[test]
    fn theorem_3_2_bound_holds(
        (rows, cols, blocks, initial, _) in matrix_and_updates()
    ) {
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        let d = 3usize.min(rows);
        let c = cfg(blocks, d);
        let emb = TreeSvd::new(c).embed(&m);
        let csr = m.to_csr();
        let resid = emb.projection_residual(&csr);
        // Theorem 3.2 with ε from the randomized level (generous ε = 0.5):
        // ‖Ψ‖ ≤ ((2+ε)(1+√2)^{q−1} − 1)·‖M − M_d‖.
        let exact = exact_svd(&csr.to_dense());
        let opt: f64 = exact.s.iter().skip(d).map(|s| s * s).sum::<f64>().sqrt();
        let q = c.levels() as i32;
        let bound = (2.5 * (1.0 + std::f64::consts::SQRT_2).powi(q - 1) - 1.0) * opt;
        // The absolute floor covers rank ≤ d inputs, where opt == 0 but the
        // randomized level-1 factorisation leaves rounding-level residue.
        let floor = 1e-6 * (1.0 + csr.frobenius_norm());
        prop_assert!(
            resid <= bound + floor,
            "residual {resid} exceeds Thm 3.2 bound {bound} (opt {opt}, q {q})"
        );
    }

    #[test]
    fn eager_dynamic_equals_fresh_static(
        (rows, cols, blocks, initial, updates) in matrix_and_updates()
    ) {
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        let d = 3usize.min(rows);
        let c = cfg(blocks, d);
        let mut dt = DynamicTreeSvd::new(c);
        dt.build(&m);
        for (i, row) in &updates {
            m.set_row(*i, row);
        }
        let (emb, stats) = dt.update(&m);
        let fresh = TreeSvd::new(c).embed(&m);
        prop_assert!(
            emb.left().sub(&fresh.left()).max_abs() < 1e-10,
            "eager dynamic != fresh static ({} blocks redone)",
            stats.blocks_recomputed
        );
    }

    #[test]
    fn lazy_never_recomputes_more_than_eager(
        (rows, cols, blocks, initial, updates) in matrix_and_updates()
    ) {
        let mut m1 = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m1.set_row(i, row);
        }
        let mut m2 = m1.clone();
        let d = 3usize.min(rows);
        let mut lazy = DynamicTreeSvd::new(TreeSvdConfig {
            policy: UpdatePolicy::Lazy { delta: 0.65 },
            ..cfg(blocks, d)
        });
        let mut eager = DynamicTreeSvd::new(cfg(blocks, d));
        lazy.build(&m1);
        eager.build(&m2);
        for (i, row) in &updates {
            m1.set_row(*i, row);
            m2.set_row(*i, row);
        }
        let (_, ls) = lazy.update(&m1);
        let (_, es) = eager.update(&m2);
        prop_assert!(ls.blocks_recomputed <= es.blocks_recomputed);
        prop_assert_eq!(ls.blocks_changed, es.blocks_changed);
    }

    #[test]
    fn update_stats_are_consistent(
        (rows, cols, blocks, initial, updates) in matrix_and_updates()
    ) {
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for (i, row) in initial.iter().enumerate() {
            m.set_row(i, row);
        }
        let d = 2usize.min(rows);
        let mut dt = DynamicTreeSvd::new(cfg(blocks, d));
        dt.build(&m);
        for (i, row) in &updates {
            m.set_row(*i, row);
        }
        let (_, stats) = dt.update(&m);
        prop_assert_eq!(stats.blocks_total, blocks);
        prop_assert!(stats.blocks_recomputed <= stats.blocks_changed);
        prop_assert!(stats.blocks_changed <= blocks);
        if stats.blocks_recomputed == 0 {
            prop_assert_eq!(stats.merges_recomputed, 0);
        }
    }
}
