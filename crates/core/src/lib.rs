//! # tsvd-core
//!
//! The paper's primary contribution: **Tree-SVD**, a hierarchical truncated
//! SVD over a vertically blocked proximity matrix, with lazily updated
//! blocks on dynamic graphs.
//!
//! * [`BlockedProximityMatrix`] — the `|S| × n` log-scaled PPR proximity
//!   matrix stored per (row, column-block) with exact incremental
//!   Frobenius-norm bookkeeping;
//! * [`TreeSvd`] — the static Algorithm 3: sparse randomized SVD per
//!   first-level block, exact truncated SVDs up the tree, embedding
//!   `X = U·√Σ` at the root. The same code with an exact first level is the
//!   HSVD baseline of Iwen & Ong ([`Level1Method::Exact`]);
//! * [`DynamicTreeSvd`] — the dynamic Algorithm 4: per-block change tracking
//!   against the cached factorisation, the √2·δ lazy-update rule of
//!   Lemma 3.4, and bottom-up recomputation of affected tree nodes only;
//! * [`TreeSvdPipeline`] — graph → PPR → proximity matrix → Tree-SVD glued
//!   into the end-to-end dynamic subset-embedding system.

mod blocked;
mod config;
mod dynamic_tree;
mod embedding;
mod persist;
mod pipeline;
mod static_tree;

pub use blocked::BlockedProximityMatrix;
pub use config::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
pub use dynamic_tree::{DynamicTreeSvd, UpdateStats};
pub use embedding::{Embedding, TaggedEmbedding};
pub use persist::{atomic_write, PersistError};
pub use pipeline::{PipelineTimings, TreeSvdPipeline};
pub use static_tree::TreeSvd;
