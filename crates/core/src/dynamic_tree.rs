//! Dynamic Tree-SVD with lazy updates (Algorithm 4).
//!
//! The dynamic state caches, per first-level block `j`:
//!
//! * the block contents as of its last factorisation (`B^{t−i}_j`),
//! * the factorisation's `U·Σ` and its residual `‖(B^{t−i}_j)_d − B^{t−i}_j‖_F`,
//! * exact per-row squared diffs against the cached contents, summed into
//!   `‖D_j‖_F²`.
//!
//! On update, a block is re-factorised only when the lazy rule of Lemma 3.4
//! fires: `‖(B^{t−i}_j)_d − B^{t−i}_j‖_F + ‖D_j‖_F > √2·δ·‖B^t_j‖_F`.
//! Affected interior nodes (ancestors of re-factorised blocks) are then
//! re-merged bottom-up; everything else reuses cached factors. The expensive
//! part — sparse randomized SVDs over `O(n)` columns — is skipped for every
//! quiet block, which is where the paper's order-of-magnitude update speedup
//! comes from.
//!
//! Under [`UpdatePolicy::LazyIncremental`] a *fired* block is additionally
//! repaired by the cheapest sufficient tier instead of always
//! refactorising: tiny relative deltas patch the cached `U·Σ·Vᵀ` core in
//! place, moderate ones take the Brand/Zha–Simon incremental update
//! ([`tsvd_linalg::svd_update_rows`], nnz-independent cost), and only large
//! ones pay the full sparse randomized SVD. The firing rule — and hence the
//! Lemma 3.4 skip guarantee — is unchanged; the tiers only decide *how* a
//! fired block is brought back under tolerance.

use crate::blocked::{sparse_row_dist_sq, sparse_row_sub, BlockedProximityMatrix};
use crate::config::{TreeSvdConfig, UpdatePolicy};
use crate::embedding::Embedding;
use crate::static_tree::{level1_factor, merge_group};
use tsvd_linalg::{svd_core_patch, svd_update_rows, DenseMatrix, RowDelta, Svd};
use tsvd_rt::pool::par_map;

/// Work accounting for one dynamic update (drives the paper's update-time
/// plots and the lazy-vs-eager ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Total first-level blocks.
    pub blocks_total: usize,
    /// Blocks whose contents changed since their last factorisation.
    pub blocks_changed: usize,
    /// Blocks repaired by a *full* sparse randomized refactorisation. Under
    /// every policy except `LazyIncremental` this is all of `|Z|`.
    pub blocks_recomputed: usize,
    /// Blocks repaired by the in-place core patch (`LazyIncremental` only).
    pub blocks_patched: usize,
    /// Blocks repaired by the incremental Brand/Zha–Simon update
    /// (`LazyIncremental` only).
    pub blocks_incremental: usize,
    /// Interior tree nodes re-merged this update.
    pub merges_recomputed: usize,
    /// `(row, block)` cells re-diffed for `‖D_j‖_F` maintenance.
    pub cells_rediffed: usize,
}

tsvd_rt::impl_json_struct!(UpdateStats {
    blocks_total,
    blocks_changed,
    blocks_recomputed,
    blocks_patched,
    blocks_incremental,
    merges_recomputed,
    cells_rediffed
});

/// Field-wise accumulation, for aggregating stats across a stream of
/// updates (or across serving shards) without hand-rolled field sums.
/// `blocks_total` accumulates too: over `k` updates it counts `k·b`
/// block-update opportunities, the natural denominator for
/// `blocks_recomputed` rates.
impl std::ops::AddAssign for UpdateStats {
    fn add_assign(&mut self, rhs: UpdateStats) {
        self.blocks_total += rhs.blocks_total;
        self.blocks_changed += rhs.blocks_changed;
        self.blocks_recomputed += rhs.blocks_recomputed;
        self.blocks_patched += rhs.blocks_patched;
        self.blocks_incremental += rhs.blocks_incremental;
        self.merges_recomputed += rhs.merges_recomputed;
        self.cells_rediffed += rhs.cells_rediffed;
    }
}

impl std::ops::Add for UpdateStats {
    type Output = UpdateStats;
    fn add(mut self, rhs: UpdateStats) -> UpdateStats {
        self += rhs;
        self
    }
}

/// A block's full cached factorisation, kept only under
/// [`UpdatePolicy::LazyIncremental`] (the cheap repair tiers rotate it in
/// place instead of refactorising).
#[derive(Debug, Clone)]
struct BlockFactor {
    /// The block's truncated SVD as of its last repair.
    svd: Svd,
    /// Consecutive cheap repairs since the last full refactorisation;
    /// reaching [`UpdatePolicy::MAX_INCREMENTAL_STREAK`] forces a refactor.
    streak: u32,
}

tsvd_rt::impl_json_struct!(BlockFactor { svd, streak });

/// Per-block dynamic cache.
#[derive(Debug, Clone)]
struct BlockCache {
    /// Block contents at the last factorisation, one sparse row per source.
    rows: Vec<Vec<(u32, f64)>>,
    /// Version stamp of each row-cell when last diffed.
    seen: Vec<u64>,
    /// `‖cur_row − cached_row‖²` per row.
    row_diffsq: Vec<f64>,
    /// `‖D_j‖_F² = Σ_rows row_diffsq`.
    diffsq: f64,
    /// `‖(B)_d − B‖_F²` at the last factorisation (estimated as
    /// `‖B‖_F² − Σσ_i²`, exact for exact level-1 SVDs).
    residsq: f64,
    /// Cached full factorisation for the cheap repair tiers (absent under
    /// policies that always refactorise; `Option` keeps old serialized
    /// states decodable).
    factor: Option<BlockFactor>,
}

tsvd_rt::impl_json_struct!(BlockCache {
    rows,
    seen,
    row_diffsq,
    diffsq,
    residsq,
    factor
});

/// How a fired block is brought back under tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tier {
    /// Project the delta onto the retained subspaces, in place.
    Patch,
    /// Basis-expanding incremental update (Brand/Zha–Simon).
    Incremental,
    /// Fresh sparse randomized factorisation — the oracle.
    Refactor,
}

/// Dynamic Tree-SVD (Algorithm 4).
#[derive(Debug, Clone)]
pub struct DynamicTreeSvd {
    cfg: TreeSvdConfig,
    caches: Vec<BlockCache>,
    /// Cached `U·Σ` per level: `levels[0]` are the `b` block factors,
    /// `levels.last()` is the single root factor.
    levels: Vec<Vec<DenseMatrix>>,
    root: Option<Embedding>,
}

tsvd_rt::impl_json_struct!(DynamicTreeSvd {
    cfg,
    caches,
    levels,
    root
});

impl DynamicTreeSvd {
    /// Fresh dynamic state; call [`DynamicTreeSvd::build`] before `update`.
    ///
    /// The update policy is resolved against the `TSVD_SVD_UPDATE` env
    /// toggle here ([`UpdatePolicy::resolve_env`]): a plain `Lazy` policy
    /// upgrades to `LazyIncremental` when the toggle is set. Doing it at
    /// the single construction chokepoint keeps every consumer — offline
    /// pipeline, serving engine, benches — on the same resolved policy.
    pub fn new(mut cfg: TreeSvdConfig) -> Self {
        cfg.policy = cfg.policy.resolve_env();
        cfg.validate();
        DynamicTreeSvd {
            cfg,
            caches: Vec::new(),
            levels: Vec::new(),
            root: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TreeSvdConfig {
        &self.cfg
    }

    /// The most recent embedding, if built.
    pub fn embedding(&self) -> Option<&Embedding> {
        self.root.as_ref()
    }

    /// Full (re)build: factorise every block, populate all caches, merge to
    /// the root. Equivalent to static Tree-SVD on the current matrix.
    pub fn build(&mut self, m: &BlockedProximityMatrix) -> Embedding {
        assert_eq!(m.num_blocks(), self.cfg.num_blocks, "block count mismatch");
        let cfg = self.cfg;
        let b = m.num_blocks();
        let rows = m.num_rows();
        let keep_factors = matches!(cfg.policy, UpdatePolicy::LazyIncremental { .. });
        let factored: Vec<(DenseMatrix, f64, Option<Svd>)> = par_map(b, |j| {
            let block = m.block_csr(j);
            let svd = level1_factor(&block, &cfg, j as u64);
            let residsq = svd.residual_sq(m.block_norm_sq(j));
            let keep = if keep_factors {
                Some(svd.clone())
            } else {
                None
            };
            (svd.u_sigma(), residsq, keep)
        });
        self.caches = (0..b)
            .map(|j| BlockCache {
                rows: (0..rows).map(|i| m.cell(i, j).to_vec()).collect(),
                seen: (0..rows).map(|i| m.cell_version(i, j)).collect(),
                row_diffsq: vec![0.0; rows],
                diffsq: 0.0,
                residsq: factored[j].1,
                factor: factored[j]
                    .2
                    .clone()
                    .map(|svd| BlockFactor { svd, streak: 0 }),
            })
            .collect();
        let level1: Vec<DenseMatrix> = factored.into_iter().map(|f| f.0).collect();
        self.levels = build_levels(level1, &cfg);
        let emb = Embedding::from_usigma(self.levels.last().unwrap().first().unwrap(), cfg.dim);
        self.root = Some(emb.clone());
        emb
    }

    /// Lazy dynamic update (Algorithm 4). The matrix `m` must be the same
    /// instance the state was built from, already mutated to snapshot `t`.
    pub fn update(&mut self, m: &BlockedProximityMatrix) -> (Embedding, UpdateStats) {
        assert!(!self.levels.is_empty(), "call build() before update()");
        assert_eq!(m.num_blocks(), self.cfg.num_blocks, "block count mismatch");
        let cfg = self.cfg;
        let b = m.num_blocks();
        let mut stats = UpdateStats {
            blocks_total: b,
            ..Default::default()
        };

        // Phase 1: refresh ‖D_j‖² from cells whose version moved.
        for j in 0..b {
            let cache = &mut self.caches[j];
            for i in 0..m.num_rows() {
                let ver = m.cell_version(i, j);
                if ver == cache.seen[i] {
                    continue;
                }
                let d = sparse_row_dist_sq(m.cell(i, j), &cache.rows[i]);
                cache.diffsq += d - cache.row_diffsq[i];
                cache.row_diffsq[i] = d;
                cache.seen[i] = ver;
                stats.cells_rediffed += 1;
            }
            if cache.diffsq < 0.0 {
                cache.diffsq = 0.0; // rounding guard
            }
        }

        // Phase 2: select Z, the blocks to repair, and pick each one's tier.
        let mut plan: Vec<(usize, Tier)> = Vec::new();
        for j in 0..b {
            let cache = &self.caches[j];
            let changed = cache.diffsq > 0.0;
            if changed {
                stats.blocks_changed += 1;
            }
            let fired = match cfg.policy {
                UpdatePolicy::All => true,
                UpdatePolicy::ChangedOnly => changed,
                // LazyIncremental fires by the identical Lemma 3.4 rule —
                // the tiers change the repair, never the skip decision.
                UpdatePolicy::Lazy { delta } | UpdatePolicy::LazyIncremental { delta, .. } => {
                    changed
                        && cache.residsq.max(0.0).sqrt() + cache.diffsq.max(0.0).sqrt()
                            > std::f64::consts::SQRT_2 * delta * m.block_norm_sq(j).max(0.0).sqrt()
                }
                UpdatePolicy::LazyNnz { threshold } => {
                    // The heuristic measure the paper dismisses: count
                    // rows with any pending change against a budget.
                    changed && {
                        let changed_rows = cache.row_diffsq.iter().filter(|&&d| d > 0.0).count();
                        changed_rows as f64 > threshold * cache.row_diffsq.len() as f64
                    }
                }
            };
            if !fired {
                continue;
            }
            let tier = match cfg.policy {
                UpdatePolicy::LazyIncremental {
                    patch_budget,
                    refactor_budget,
                    ..
                } => self.repair_tier(j, m, patch_budget, refactor_budget),
                _ => Tier::Refactor,
            };
            plan.push((j, tier));
        }

        if plan.is_empty() {
            // Everything cached is still within tolerance: Theorem 3.6 case
            // (i); return the cached embedding untouched.
            return (self.root.clone().expect("root exists after build"), stats);
        }

        // Phase 3: repair the affected blocks in parallel, each by its tier.
        let keep_factors = matches!(cfg.policy, UpdatePolicy::LazyIncremental { .. });
        let caches = &self.caches;
        let repaired: Vec<(DenseMatrix, f64, Option<Svd>)> = par_map(plan.len(), |pi| {
            let (j, tier) = plan[pi];
            match tier {
                Tier::Refactor => {
                    let block = m.block_csr(j);
                    let svd = level1_factor(&block, &cfg, j as u64);
                    let residsq = svd.residual_sq(m.block_norm_sq(j));
                    let keep = if keep_factors {
                        Some(svd.clone())
                    } else {
                        None
                    };
                    (svd.u_sigma(), residsq, keep)
                }
                Tier::Patch | Tier::Incremental => {
                    let cache = &caches[j];
                    let old = &cache.factor.as_ref().expect("tier needs cached factor").svd;
                    let deltas: Vec<RowDelta> = (0..m.num_rows())
                        .filter(|&i| cache.row_diffsq[i] > 0.0)
                        .map(|i| RowDelta {
                            row: i,
                            entries: sparse_row_sub(m.cell(i, j), &cache.rows[i]),
                        })
                        .filter(|d| !d.entries.is_empty())
                        .collect();
                    let svd = if tier == Tier::Patch {
                        svd_core_patch(old, &deltas)
                    } else {
                        svd_update_rows(old, &deltas, cfg.dim)
                    };
                    // Estimated residual: exact when the repaired factors
                    // capture the block's best rank-d approximation, a lower
                    // bound otherwise (the streak cap bounds the drift).
                    let residsq = svd.residual_sq(m.block_norm_sq(j));
                    (svd.u_sigma(), residsq, Some(svd))
                }
            }
        });
        for (pi, &(j, tier)) in plan.iter().enumerate() {
            let (usigma, residsq, svd) = repaired[pi].clone();
            self.levels[0][j] = usigma;
            let cache = &mut self.caches[j];
            let streak = match tier {
                Tier::Refactor => 0,
                Tier::Patch | Tier::Incremental => {
                    cache.factor.as_ref().map_or(0, |f| f.streak) + 1
                }
            };
            cache.factor = svd.map(|svd| BlockFactor { svd, streak });
            cache.residsq = residsq;
            cache.diffsq = 0.0;
            for i in 0..m.num_rows() {
                cache.rows[i] = m.cell(i, j).to_vec();
                cache.row_diffsq[i] = 0.0;
                cache.seen[i] = m.cell_version(i, j);
            }
            match tier {
                Tier::Patch => stats.blocks_patched += 1,
                Tier::Incremental => stats.blocks_incremental += 1,
                Tier::Refactor => stats.blocks_recomputed += 1,
            }
        }

        // Phase 4: bubble the changes up — re-merge only affected parents.
        let mut affected: Vec<usize> = plan.into_iter().map(|(j, _)| j).collect();
        for lvl in 1..self.levels.len() {
            let mut parents: Vec<usize> = affected.iter().map(|&j| j / cfg.branching).collect();
            parents.sort_unstable();
            parents.dedup();
            let children = &self.levels[lvl - 1];
            let merged: Vec<DenseMatrix> = par_map(parents.len(), |pi| {
                let p = parents[pi];
                let start = p * cfg.branching;
                let end = (start + cfg.branching).min(children.len());
                let refs: Vec<&DenseMatrix> = children[start..end].iter().collect();
                merge_group(&refs, cfg.dim).u_sigma()
            });
            for (pi, &p) in parents.iter().enumerate() {
                self.levels[lvl][p] = merged[pi].clone();
            }
            stats.merges_recomputed += parents.len();
            affected = parents;
        }

        let emb = Embedding::from_usigma(self.levels.last().unwrap().first().unwrap(), cfg.dim);
        self.root = Some(emb.clone());
        (emb, stats)
    }

    /// Pick the cheapest sufficient repair for a fired block: patch when
    /// the relative delta `‖D_j‖_F/‖B_j‖_F` fits the patch budget,
    /// incremental update when it fits the refactor budget, and a full
    /// refactorisation otherwise — or whenever the cheap tiers'
    /// preconditions fail (no cached factor, rank-0 factor, streak cap
    /// reached, more changed rows than the block is wide: the update's
    /// residual QR needs tall blocks).
    fn repair_tier(
        &self,
        j: usize,
        m: &BlockedProximityMatrix,
        patch_budget: f64,
        refactor_budget: f64,
    ) -> Tier {
        let cache = &self.caches[j];
        let factor = match &cache.factor {
            Some(f) => f,
            None => return Tier::Refactor,
        };
        if factor.svd.rank() == 0 || factor.streak >= UpdatePolicy::MAX_INCREMENTAL_STREAK {
            return Tier::Refactor;
        }
        let changed_rows = cache.row_diffsq.iter().filter(|&&d| d > 0.0).count();
        let (start, end) = m.block_range(j);
        if changed_rows == 0 || changed_rows > (end - start) as usize {
            return Tier::Refactor;
        }
        // Cost gate: the update re-diagonalises a `(k+c)×(k+c)` core, so a
        // window that touched many rows (`c ≫ k`) is cheaper to refactorise
        // — the cheap tiers are for *delta-sparse* windows. `c ≤ 2k` keeps
        // the augmented core within a small constant of the rank-`k` dense
        // work a refactorisation performs anyway.
        if changed_rows > 2 * self.cfg.dim {
            return Tier::Refactor;
        }
        let block_norm = m.block_norm_sq(j).max(0.0).sqrt();
        if block_norm <= 0.0 {
            return Tier::Refactor;
        }
        let rel = cache.diffsq.max(0.0).sqrt() / block_norm;
        if rel <= patch_budget {
            Tier::Patch
        } else if rel <= refactor_budget {
            Tier::Incremental
        } else {
            Tier::Refactor
        }
    }
}

/// Build the full cached level structure from the first-level factors.
fn build_levels(level1: Vec<DenseMatrix>, cfg: &TreeSvdConfig) -> Vec<Vec<DenseMatrix>> {
    let mut levels = vec![level1];
    while levels.last().unwrap().len() > 1 {
        let prev = levels.last().unwrap();
        let groups: Vec<&[DenseMatrix]> = prev.chunks(cfg.branching).collect();
        let next: Vec<DenseMatrix> = par_map(groups.len(), |gi| {
            let refs: Vec<&DenseMatrix> = groups[gi].iter().collect();
            merge_group(&refs, cfg.dim).u_sigma()
        });
        levels.push(next);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Level1Method;
    use crate::static_tree::TreeSvd;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn cfg(policy: UpdatePolicy) -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 6,
            branching: 2,
            num_blocks: 8,
            oversample: 8,
            power_iters: 2,
            level1: Level1Method::Randomized,
            policy,
            partition: crate::config::PartitionStrategy::EqualWidth,
            seed: 11,
        }
    }

    fn random_matrix(
        rng: &mut StdRng,
        rows: usize,
        cols: usize,
        blocks: usize,
    ) -> BlockedProximityMatrix {
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for i in 0..rows {
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for c in 0..cols as u32 {
                if rng.gen_bool(0.3) {
                    entries.push((c, rng.gen_range(0.1..2.0)));
                }
            }
            m.set_row(i, &entries);
        }
        m
    }

    #[test]
    fn build_matches_static_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_matrix(&mut rng, 12, 64, 8);
        let c = cfg(UpdatePolicy::Lazy { delta: 0.65 });
        let mut dt = DynamicTreeSvd::new(c);
        let dyn_emb = dt.build(&m);
        let static_emb = TreeSvd::new(c).embed(&m);
        assert!(dyn_emb.left().sub(&static_emb.left()).max_abs() < 1e-12);
    }

    #[test]
    fn noop_update_recomputes_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_matrix(&mut rng, 10, 40, 8);
        let mut dt = DynamicTreeSvd::new(cfg(UpdatePolicy::Lazy { delta: 0.65 }));
        let before = dt.build(&m);
        let (after, stats) = dt.update(&m);
        assert_eq!(stats.blocks_recomputed, 0);
        assert_eq!(stats.merges_recomputed, 0);
        assert_eq!(stats.cells_rediffed, 0);
        assert!(after.left().sub(&before.left()).max_abs() == 0.0);
    }

    #[test]
    fn changed_only_policy_tracks_static_rebuild_exactly() {
        // With ChangedOnly, every changed block is re-factorised, so the
        // result must be bit-identical to a full rebuild (the per-block
        // randomized SVDs are seeded deterministically by block index).
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = random_matrix(&mut rng, 10, 64, 8);
        let c = cfg(UpdatePolicy::ChangedOnly);
        let mut dt = DynamicTreeSvd::new(c);
        dt.build(&m);
        // Mutate three rows.
        for i in [0usize, 4, 7] {
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for col in 0..64u32 {
                if rng.gen_bool(0.3) {
                    entries.push((col, rng.gen_range(0.1..2.0)));
                }
            }
            m.set_row(i, &entries);
        }
        let (emb, stats) = dt.update(&m);
        assert!(stats.blocks_recomputed > 0);
        let fresh = TreeSvd::new(c).embed(&m);
        assert!(emb.left().sub(&fresh.left()).max_abs() < 1e-12);
    }

    #[test]
    fn lazy_skips_small_changes_eager_does_not() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = random_matrix(&mut rng, 10, 64, 8);
        let lazy_cfg = cfg(UpdatePolicy::Lazy { delta: 0.65 });
        let eager_cfg = cfg(UpdatePolicy::ChangedOnly);
        let mut lazy = DynamicTreeSvd::new(lazy_cfg);
        let mut eager = DynamicTreeSvd::new(eager_cfg);
        lazy.build(&m);
        eager.build(&m);
        // Tiny perturbation of one entry of row 0.
        let mut row: Vec<(u32, f64)> = m.cell(0, 0).to_vec();
        if row.is_empty() {
            row.push((0, 1e-6));
        } else {
            row[0].1 += 1e-6;
        }
        // Rebuild global row 0 from cells to keep other blocks identical.
        let mut full: Vec<(u32, f64)> = Vec::new();
        for j in 0..m.num_blocks() {
            let (start, _) = m.block_range(j);
            let cell = if j == 0 {
                row.clone()
            } else {
                m.cell(0, j).to_vec()
            };
            for (c, v) in cell {
                full.push((start + c, v));
            }
        }
        m.set_row(0, &full);
        let (_, ls) = lazy.update(&m);
        let (_, es) = eager.update(&m);
        assert_eq!(ls.blocks_changed, 1);
        assert_eq!(ls.blocks_recomputed, 0, "lazy must skip a 1e-6 change");
        assert_eq!(es.blocks_recomputed, 1, "eager must recompute");
    }

    #[test]
    fn lazy_fires_on_large_changes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = random_matrix(&mut rng, 10, 64, 8);
        let mut dt = DynamicTreeSvd::new(cfg(UpdatePolicy::Lazy { delta: 0.1 }));
        dt.build(&m);
        // Rewrite every row completely: all blocks blow past any δ.
        for i in 0..10 {
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for c in 0..64u32 {
                if rng.gen_bool(0.5) {
                    entries.push((c, rng.gen_range(5.0..9.0)));
                }
            }
            m.set_row(i, &entries);
        }
        let (emb, stats) = dt.update(&m);
        assert_eq!(stats.blocks_recomputed, stats.blocks_changed);
        assert!(stats.blocks_recomputed >= 7, "essentially all blocks fire");
        // Quality: matches a fresh static build bit-for-bit when everything
        // was recomputed (deterministic per-block seeds).
        let fresh = TreeSvd::new(*dt.config()).embed(&m);
        assert!(emb.left().sub(&fresh.left()).max_abs() < 1e-12);
    }

    #[test]
    fn lazy_embedding_stays_close_after_skipped_updates() {
        // Theorem 3.6 empirically: with δ moderate, the cached embedding's
        // projection residual stays within the bound's ballpark of the
        // fresh rebuild.
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = random_matrix(&mut rng, 12, 96, 8);
        let c = cfg(UpdatePolicy::Lazy { delta: 0.5 });
        let mut dt = DynamicTreeSvd::new(c);
        dt.build(&m);
        // Small perturbations over several rounds.
        for round in 0..5 {
            for i in 0..12 {
                let mut full: Vec<(u32, f64)> = Vec::new();
                for j in 0..m.num_blocks() {
                    let (start, _) = m.block_range(j);
                    for &(cc, v) in m.cell(i, j) {
                        full.push((start + cc, v * (1.0 + 0.01 * (round as f64 + 1.0))));
                    }
                }
                m.set_row(i, &full);
            }
            let (emb, _) = dt.update(&m);
            let csr = m.to_csr();
            let lazy_resid = emb.projection_residual(&csr);
            let fresh = TreeSvd::new(c).embed(&m);
            let fresh_resid = fresh.projection_residual(&csr);
            let norm = csr.frobenius_norm();
            assert!(
                lazy_resid <= fresh_resid + std::f64::consts::SQRT_2 * 0.5 * norm,
                "round {round}: {lazy_resid} vs fresh {fresh_resid} (‖M‖={norm})"
            );
        }
    }

    #[test]
    fn diff_bookkeeping_is_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = random_matrix(&mut rng, 8, 32, 4);
        let mut dt = DynamicTreeSvd::new(TreeSvdConfig {
            num_blocks: 4,
            ..cfg(UpdatePolicy::Lazy { delta: 1e9 }) // never fire: pure tracking
        });
        dt.build(&m);
        let snapshot = m.to_csr().to_dense();
        // Random row rewrites over 3 rounds.
        for _ in 0..3 {
            for i in 0..8 {
                if rng.gen_bool(0.5) {
                    let mut entries: Vec<(u32, f64)> = Vec::new();
                    for c in 0..32u32 {
                        if rng.gen_bool(0.25) {
                            entries.push((c, rng.gen_range(0.1..2.0)));
                        }
                    }
                    m.set_row(i, &entries);
                }
            }
            dt.update(&m);
        }
        // ‖D_j‖² tracked == recomputed from scratch per block.
        let now = m.to_csr().to_dense();
        for j in 0..4 {
            let (a, b) = m.block_range(j);
            let mut want = 0.0;
            for i in 0..8 {
                for c in a..b {
                    let d = now.get(i, c as usize) - snapshot.get(i, c as usize);
                    want += d * d;
                }
            }
            let got = dt.caches[j].diffsq;
            assert!(
                (got - want).abs() < 1e-9 * (1.0 + want),
                "block {j}: {got} vs {want}"
            );
        }
    }

    /// Add `add` to entry `col` of cell `(i, j)`, leaving the rest of the
    /// row untouched (set_row takes the full global row).
    fn bump_cell(m: &mut BlockedProximityMatrix, i: usize, j: usize, col: u32, add: f64) {
        let mut cell: Vec<(u32, f64)> = m.cell(i, j).to_vec();
        match cell.binary_search_by_key(&col, |e| e.0) {
            Ok(p) => cell[p].1 += add,
            Err(p) => cell.insert(p, (col, add)),
        }
        let mut full: Vec<(u32, f64)> = Vec::new();
        for jj in 0..m.num_blocks() {
            let (start, _) = m.block_range(jj);
            let c = if jj == j {
                cell.clone()
            } else {
                m.cell(i, jj).to_vec()
            };
            for (cc, v) in c {
                full.push((start + cc, v));
            }
        }
        m.set_row(i, &full);
    }

    #[test]
    fn patch_tier_repairs_tiny_fired_deltas() {
        // δ = 0 fires every changed block; a tiny relative delta must then
        // take the in-place patch, never a refactorisation.
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = random_matrix(&mut rng, 10, 64, 8);
        let mut dt = DynamicTreeSvd::new(cfg(UpdatePolicy::LazyIncremental {
            delta: 0.0,
            patch_budget: UpdatePolicy::DEFAULT_PATCH_BUDGET,
            refactor_budget: UpdatePolicy::DEFAULT_REFACTOR_BUDGET,
        }));
        dt.build(&m);
        bump_cell(&mut m, 0, 0, 2, 1e-3);
        let (_, stats) = dt.update(&m);
        assert_eq!(stats.blocks_changed, 1);
        assert_eq!(stats.blocks_patched, 1);
        assert_eq!(stats.blocks_incremental, 0);
        assert_eq!(stats.blocks_recomputed, 0);
        assert!(stats.merges_recomputed > 0, "patches still bubble up");
    }

    #[test]
    fn incremental_tier_tracks_refactor_quality() {
        // Moderate relative deltas (between the tier budgets) take the
        // incremental Brand/Zha–Simon update; over several rounds the
        // embedding must stay within the Lemma 3.4 ballpark of a fresh
        // static rebuild, exactly like the exact-refactor path.
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = random_matrix(&mut rng, 12, 96, 8);
        let c = cfg(UpdatePolicy::lazy_incremental(0.05));
        let mut dt = DynamicTreeSvd::new(c);
        dt.build(&m);
        let mut total = UpdateStats::default();
        for round in 0..3 {
            for i in 0..12 {
                let mut full: Vec<(u32, f64)> = Vec::new();
                for j in 0..m.num_blocks() {
                    let (start, _) = m.block_range(j);
                    for &(cc, v) in m.cell(i, j) {
                        full.push((start + cc, v * 1.15));
                    }
                }
                m.set_row(i, &full);
            }
            let (emb, stats) = dt.update(&m);
            total += stats;
            let csr = m.to_csr();
            let lazy_resid = emb.projection_residual(&csr);
            let fresh = TreeSvd::new(c).embed(&m);
            let fresh_resid = fresh.projection_residual(&csr);
            let norm = csr.frobenius_norm();
            assert!(
                lazy_resid <= fresh_resid + std::f64::consts::SQRT_2 * 0.05 * norm,
                "round {round}: {lazy_resid} vs fresh {fresh_resid} (‖M‖={norm})"
            );
        }
        assert!(
            total.blocks_incremental > 0,
            "15% row scalings must take the incremental tier: {total:?}"
        );
        assert_eq!(total.blocks_recomputed, 0, "no refactor needed: {total:?}");
    }

    #[test]
    fn incremental_policy_refactors_large_changes_bitwise() {
        // Past the refactor budget the third tier is the existing full
        // refactorisation — bit-identical to a fresh static build.
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = random_matrix(&mut rng, 10, 64, 8);
        let mut dt = DynamicTreeSvd::new(cfg(UpdatePolicy::lazy_incremental(0.1)));
        dt.build(&m);
        for i in 0..10 {
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for c in 0..64u32 {
                if rng.gen_bool(0.5) {
                    entries.push((c, rng.gen_range(5.0..9.0)));
                }
            }
            m.set_row(i, &entries);
        }
        let (emb, stats) = dt.update(&m);
        assert_eq!(stats.blocks_patched, 0);
        assert_eq!(stats.blocks_incremental, 0);
        assert!(stats.blocks_recomputed >= 7, "all blocks refactorise");
        let fresh = TreeSvd::new(*dt.config()).embed(&m);
        assert!(emb.left().sub(&fresh.left()).max_abs() < 1e-12);
    }

    #[test]
    fn streak_cap_forces_periodic_refactor() {
        // A block patched over and over must eventually be refactorised
        // (the cheap tiers only estimate their residual; the streak cap
        // resets the estimate exactly).
        let mut rng = StdRng::seed_from_u64(10);
        let mut m = random_matrix(&mut rng, 6, 16, 4);
        let mut dt = DynamicTreeSvd::new(TreeSvdConfig {
            dim: 3,
            num_blocks: 4,
            ..cfg(UpdatePolicy::LazyIncremental {
                delta: 0.0,
                patch_budget: UpdatePolicy::DEFAULT_PATCH_BUDGET,
                refactor_budget: UpdatePolicy::DEFAULT_REFACTOR_BUDGET,
            })
        });
        dt.build(&m);
        let rounds = UpdatePolicy::MAX_INCREMENTAL_STREAK as usize + 8;
        let mut total = UpdateStats::default();
        for _ in 0..rounds {
            bump_cell(&mut m, 0, 0, 1, 1e-4);
            let (_, stats) = dt.update(&m);
            total += stats;
        }
        assert!(
            total.blocks_recomputed >= 1,
            "streak cap must force a refactor: {total:?}"
        );
        assert!(
            total.blocks_patched >= UpdatePolicy::MAX_INCREMENTAL_STREAK as usize,
            "tiny deltas patch until the cap: {total:?}"
        );
    }

    #[test]
    fn dynamic_state_with_factors_round_trips() {
        use tsvd_rt::json::{FromJson, Json, ToJson};
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = random_matrix(&mut rng, 10, 64, 8);
        let mut dt = DynamicTreeSvd::new(cfg(UpdatePolicy::lazy_incremental(0.0)));
        dt.build(&m);
        bump_cell(&mut m, 3, 2, 0, 5e-4);
        dt.update(&m);
        // Serialize mid-stream (factor caches populated), decode, and check
        // both copies evolve identically.
        let j = Json::parse(&dt.to_json().to_string()).unwrap();
        let mut back = DynamicTreeSvd::from_json(&j).unwrap();
        bump_cell(&mut m, 5, 4, 3, 7e-4);
        let (e1, s1) = dt.update(&m);
        let (e2, s2) = back.update(&m);
        assert_eq!(s1, s2);
        assert!(e1.left().sub(&e2.left()).max_abs() == 0.0);
    }

    #[test]
    #[should_panic(expected = "build() before update")]
    fn update_before_build_panics() {
        let m = BlockedProximityMatrix::new(2, 16, 8);
        let mut dt = DynamicTreeSvd::new(cfg(UpdatePolicy::All));
        let _ = dt.update(&m);
    }
}
