//! Static Tree-SVD (Algorithm 3) and the shared level machinery.
//!
//! Level 1 factorises each sparse column block with a *sparse randomized
//! SVD* (or an exact SVD in HSVD mode); every higher level concatenates `k`
//! child `U·Σ` factors and takes an exact truncated SVD of the small dense
//! result. The root's `U·√Σ` is the subset embedding.

use crate::blocked::BlockedProximityMatrix;
use crate::config::{Level1Method, TreeSvdConfig};
use crate::embedding::Embedding;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::svd::{exact_truncated_svd, Svd};
use tsvd_linalg::{CsrMatrix, DenseMatrix, RandomizedSvdConfig};
use tsvd_rt::pool::par_map;
use tsvd_rt::rng::SeedableRng;
use tsvd_rt::rng::StdRng;

/// Static Tree-SVD runner (Algorithm 3).
#[derive(Debug, Clone)]
pub struct TreeSvd {
    cfg: TreeSvdConfig,
}

impl TreeSvd {
    /// Create a runner; panics if `cfg` is invalid.
    pub fn new(cfg: TreeSvdConfig) -> Self {
        cfg.validate();
        TreeSvd { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TreeSvdConfig {
        &self.cfg
    }

    /// Run Algorithm 3 on the blocked proximity matrix and return the
    /// subset embedding. First-level blocks factorise in parallel.
    pub fn embed(&self, m: &BlockedProximityMatrix) -> Embedding {
        assert_eq!(
            m.num_blocks(),
            self.cfg.num_blocks,
            "matrix blocked differently than the config"
        );
        let cfg = &self.cfg;
        let usigmas: Vec<DenseMatrix> = par_map(m.num_blocks(), |j| {
            level1_factor(&m.block_csr(j), cfg, j as u64).u_sigma()
        });
        let root = merge_to_root(usigmas, cfg);
        Embedding::from_usigma(&root, cfg.dim)
    }
}

/// Factorise one first-level block to its `d`-rank truncated SVD, by the
/// configured method. `salt` decorrelates the per-block random test
/// matrices while keeping runs deterministic.
pub(crate) fn level1_factor(block: &CsrMatrix, cfg: &TreeSvdConfig, salt: u64) -> Svd {
    match cfg.level1 {
        Level1Method::Randomized => {
            let rcfg = RandomizedSvdConfig {
                rank: cfg.dim,
                oversample: cfg.oversample,
                power_iters: cfg.power_iters,
            };
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            randomized_svd(block, &rcfg, &mut rng)
        }
        Level1Method::Exact => exact_truncated_svd(&block.to_dense(), cfg.dim),
        Level1Method::Lanczos => {
            let lcfg = tsvd_linalg::lanczos::LanczosConfig {
                rank: cfg.dim,
                extra_steps: cfg.oversample + 4,
            };
            tsvd_linalg::lanczos::lanczos_svd(block, &lcfg)
        }
    }
}

/// Merge one group of child `U·Σ` factors into the parent's `d`-rank
/// truncated SVD (one interior node of the tree).
pub(crate) fn merge_group(children: &[&DenseMatrix], dim: usize) -> Svd {
    let concat = DenseMatrix::hconcat(children);
    exact_truncated_svd(&concat, dim)
}

/// Repeatedly merge `k` consecutive factors per level until a single root
/// `U·Σ` remains (Algorithm 3's outer loop).
pub(crate) fn merge_to_root(mut level: Vec<DenseMatrix>, cfg: &TreeSvdConfig) -> DenseMatrix {
    assert!(!level.is_empty());
    while level.len() > 1 {
        let groups: Vec<&[DenseMatrix]> = level.chunks(cfg.branching).collect();
        let next = par_map(groups.len(), |gi| {
            let refs: Vec<&DenseMatrix> = groups[gi].iter().collect();
            merge_group(&refs, cfg.dim).u_sigma()
        });
        level = next;
    }
    level.pop().expect("non-empty level")
}

impl Embedding {
    /// Recover `(U, Σ)` from a `U·Σ` factor (columns are orthogonal with
    /// norms `σ_j`, descending) and package it as an embedding. This is how
    /// the tree root — itself a `U·Σ` matrix — becomes the final output.
    pub fn from_usigma(usigma: &DenseMatrix, dim: usize) -> Embedding {
        let r = usigma.cols();
        let mut sigma = Vec::with_capacity(r);
        let mut u = usigma.clone();
        for j in 0..r {
            let s = u.col_norm_sq(j).sqrt();
            sigma.push(s);
            if s > 0.0 {
                for i in 0..u.rows() {
                    let v = u.get(i, j) / s;
                    u.set(i, j, v);
                }
            }
        }
        // The tree keeps singular values descending per construction, but a
        // defensive sort costs nothing at these sizes.
        let mut order: Vec<usize> = (0..r).collect();
        order.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).unwrap());
        let sorted_u = DenseMatrix::from_fn(u.rows(), r, |i, j| u.get(i, order[j]));
        let sorted_s: Vec<f64> = order.iter().map(|&j| sigma[j]).collect();
        let emb = Embedding {
            u: sorted_u,
            sigma: sorted_s,
            dim,
        };
        // Truncate to dim.
        if r > dim {
            Embedding {
                u: emb.u.take_cols(dim),
                sigma: emb.sigma[..dim].to_vec(),
                dim,
            }
        } else {
            emb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdatePolicy;
    use tsvd_linalg::svd::exact_svd;
    use tsvd_rt::rng::Rng;

    /// A random sparse blocked matrix for testing.
    fn random_blocked(
        rng: &mut StdRng,
        rows: usize,
        cols: usize,
        blocks: usize,
        density: f64,
    ) -> BlockedProximityMatrix {
        let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
        for i in 0..rows {
            let mut entries = Vec::new();
            for c in 0..cols as u32 {
                if rng.gen_bool(density) {
                    entries.push((c, rng.gen_range(0.1..3.0)));
                }
            }
            m.set_row(i, &entries);
        }
        m
    }

    fn cfg(dim: usize, branching: usize, blocks: usize) -> TreeSvdConfig {
        TreeSvdConfig {
            dim,
            branching,
            num_blocks: blocks,
            oversample: 8,
            power_iters: 2,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.65 },
            partition: crate::config::PartitionStrategy::EqualWidth,
            seed: 7,
        }
    }

    #[test]
    fn single_block_equals_plain_svd() {
        // b = 1 ⇒ Tree-SVD degenerates to one randomized SVD; singular
        // values must match the exact ones closely.
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_blocked(&mut rng, 20, 60, 1, 0.3);
        let tree = TreeSvd::new(cfg(6, 2, 1));
        let emb = tree.embed(&m);
        let exact = exact_svd(&m.to_csr().to_dense());
        for j in 0..6 {
            assert!(
                (emb.sigma[j] - exact.s[j]).abs() < 0.05 * exact.s[0].max(1.0),
                "σ_{j}: {} vs {}",
                emb.sigma[j],
                exact.s[j]
            );
        }
    }

    #[test]
    fn tree_approximates_truncated_svd() {
        // Theorem 3.2 empirically: the tree's rank-d projection residual is
        // within a modest constant of the optimal rank-d residual.
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_blocked(&mut rng, 24, 96, 8, 0.25);
        let d = 10;
        let tree = TreeSvd::new(cfg(d, 2, 8)); // q = 4 levels
        let emb = tree.embed(&m);
        let csr = m.to_csr();
        let resid = emb.projection_residual(&csr);
        let exact = exact_svd(&csr.to_dense());
        let opt: f64 = exact.s[d..].iter().map(|s| s * s).sum::<f64>().sqrt();
        // Theorem bound with q=4, ε small: (2+ε)(1+√2)³−1 ≈ 27. We check a
        // much tighter empirical factor.
        assert!(resid <= 3.0 * opt + 1e-9, "resid {resid} vs optimal {opt}");
    }

    #[test]
    fn exact_level1_hsvd_at_least_as_good() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_blocked(&mut rng, 16, 64, 4, 0.3);
        let d = 8;
        let mut c = cfg(d, 4, 4);
        let rand_emb = TreeSvd::new(c).embed(&m);
        c.level1 = Level1Method::Exact;
        let hsvd_emb = TreeSvd::new(c).embed(&m);
        let csr = m.to_csr();
        let r_rand = rand_emb.projection_residual(&csr);
        let r_hsvd = hsvd_emb.projection_residual(&csr);
        // Randomized level 1 may lose a little, but not much.
        assert!(r_rand <= 1.25 * r_hsvd + 1e-9, "{r_rand} vs {r_hsvd}");
    }

    #[test]
    fn lanczos_level1_matches_randomized_quality() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = random_blocked(&mut rng, 20, 80, 4, 0.3);
        let d = 8;
        let rand_emb = TreeSvd::new(cfg(d, 4, 4)).embed(&m);
        let mut lcfg = cfg(d, 4, 4);
        lcfg.level1 = Level1Method::Lanczos;
        let lan_emb = TreeSvd::new(lcfg).embed(&m);
        let csr = m.to_csr();
        let r_rand = rand_emb.projection_residual(&csr);
        let r_lan = lan_emb.projection_residual(&csr);
        assert!(
            r_lan <= 1.1 * r_rand + 1e-9,
            "lanczos {r_lan} vs randomized {r_rand}"
        );
        // Deterministic: two runs agree bit-for-bit.
        let again = TreeSvd::new(lcfg).embed(&m);
        assert!(lan_emb.left().sub(&again.left()).max_abs() == 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = random_blocked(&mut rng, 10, 40, 4, 0.3);
        let tree = TreeSvd::new(cfg(4, 2, 4));
        let a = tree.embed(&m);
        let b = tree.embed(&m);
        assert!(a.left().sub(&b.left()).max_abs() == 0.0);
    }

    #[test]
    fn embedding_has_requested_dim_even_for_tiny_input() {
        let mut m = BlockedProximityMatrix::new(3, 8, 2);
        m.set_row(0, &[(0, 1.0)]);
        m.set_row(1, &[(5, 2.0)]);
        // Row 2 left empty.
        let tree = TreeSvd::new(cfg(6, 2, 2));
        let emb = tree.embed(&m);
        let x = emb.left();
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 6);
        assert!(x.is_finite());
    }

    #[test]
    fn from_usigma_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = tsvd_linalg::rng::gaussian_matrix(&mut rng, 12, 5);
        let svd = exact_svd(&a);
        let emb = Embedding::from_usigma(&svd.u_sigma(), 5);
        for j in 0..5 {
            assert!((emb.sigma[j] - svd.s[j]).abs() < 1e-9);
        }
        // U recovered orthonormal.
        let g = emb.u.t_mul(&emb.u);
        assert!(g.sub(&DenseMatrix::identity(5)).max_abs() < 1e-9);
    }

    #[test]
    fn blocks_config_mismatch_panics() {
        let m = BlockedProximityMatrix::new(2, 16, 4);
        let tree = TreeSvd::new(cfg(2, 2, 8));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tree.embed(&m)));
        assert!(r.is_err());
    }
}
