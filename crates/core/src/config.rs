//! Tree-SVD configuration.

use serde::{Deserialize, Serialize};

/// How the first (leaf) level of the tree factorises its sparse blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Level1Method {
    /// Sparse randomized SVD — Tree-SVD proper. Cost `O(nnz·(d+p))` per
    /// block, the paper's headline speedup over HSVD.
    Randomized,
    /// Exact SVD on the densified block — the HSVD baseline of Iwen & Ong.
    Exact,
    /// Golub–Kahan–Lanczos bidiagonalization — the deterministic sparse
    /// alternative to the randomized range finder (level-1 ablation; not in
    /// the paper).
    Lanczos,
}

/// When the dynamic algorithm re-factorises a first-level block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// The paper's lazy rule (Lemma 3.4): recompute block `j` only when
    /// `‖(B^{t−i}_j)_d − B^{t−i}_j‖_F + ‖D_j‖_F > √2·δ·‖B^t_j‖_F`.
    Lazy {
        /// Threshold δ; the paper uses 0.65. Smaller δ updates more blocks.
        delta: f64,
    },
    /// Heuristic lazy rule the paper discusses and dismisses for lacking a
    /// guarantee: recompute when the number of changed cells in the block
    /// exceeds `threshold × |S|` (a non-zero-count change measure).
    /// Kept for the ablation comparing change measures.
    LazyNnz {
        /// Changed-cell budget as a fraction of the block's row count.
        threshold: f64,
    },
    /// Recompute every block whose contents changed at all (the eager
    /// dynamic scheme of Section 3, before the lazy refinement).
    ChangedOnly,
    /// Recompute every block every snapshot (equivalent to a static
    /// rebuild; used as an ablation anchor).
    All,
}

/// Full Tree-SVD parameterisation.
///
/// The paper's defaults are `d = 128`, `b = 64`, `k = 8` (so `q = 3`
/// levels) and `δ = 0.65`; scaled-down experiments in this repository use
/// smaller `d`/`b` but the same shape.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeSvdConfig {
    /// Embedding dimension `d` (rank of every truncated SVD in the tree).
    pub dim: usize,
    /// Branching factor `k`: how many child factors merge per tree node.
    pub branching: usize,
    /// Number of first-level column blocks `b`. Need not be a power of `k`;
    /// the last group at each level may be smaller.
    pub num_blocks: usize,
    /// Oversampling for the level-1 randomized SVD.
    pub oversample: usize,
    /// Power iterations for the level-1 randomized SVD.
    pub power_iters: usize,
    /// First-level factorisation method.
    pub level1: Level1Method,
    /// Dynamic update policy.
    pub policy: UpdatePolicy,
    /// How columns are assigned to first-level blocks.
    pub partition: PartitionStrategy,
    /// Seed for the randomized range finders (deterministic runs).
    pub seed: u64,
}

/// How the proximity matrix's columns are cut into first-level blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// `b` equal-width contiguous column ranges (the paper's layout).
    EqualWidth,
    /// Contiguous ranges balanced by squared-Frobenius column mass of the
    /// *initial* matrix. PPR mass concentrates on hubs, so equal-width
    /// blocks can be wildly uneven in nnz; mass balancing evens out the
    /// level-1 SVD costs and makes the lazy rule fire more uniformly.
    /// (The paper notes heavy-tailed PPR concentration as the motivation
    /// for lazy updates; this is the corresponding layout ablation.)
    EqualMass,
}

impl Default for TreeSvdConfig {
    fn default() -> Self {
        TreeSvdConfig {
            dim: 32,
            branching: 4,
            num_blocks: 16,
            oversample: 8,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.65 },
            partition: PartitionStrategy::EqualWidth,
            seed: 42,
        }
    }
}

impl TreeSvdConfig {
    /// Config with the given dimension, keeping other defaults.
    pub fn with_dim(dim: usize) -> Self {
        TreeSvdConfig { dim, ..Default::default() }
    }

    /// Number of tree levels `q` (SVD rounds from leaves to root):
    /// `b` blocks shrink by factor `k` per merge until one remains.
    pub fn levels(&self) -> usize {
        assert!(self.branching >= 2, "branching factor must be ≥ 2");
        let mut q = 1;
        let mut nodes = self.num_blocks.max(1);
        while nodes > 1 {
            nodes = nodes.div_ceil(self.branching);
            q += 1;
        }
        q
    }

    /// Validate invariants, panicking with a descriptive message.
    pub fn validate(&self) {
        assert!(self.dim >= 1, "embedding dimension must be positive");
        assert!(self.branching >= 2, "branching factor must be ≥ 2");
        assert!(self.num_blocks >= 1, "need at least one block");
        match self.policy {
            UpdatePolicy::Lazy { delta } => {
                assert!(delta >= 0.0, "delta must be non-negative");
            }
            UpdatePolicy::LazyNnz { threshold } => {
                assert!(threshold >= 0.0, "threshold must be non-negative");
            }
            UpdatePolicy::ChangedOnly | UpdatePolicy::All => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_paper_example() {
        // b = 64, k = 8 ⇒ q = 3 (the paper's Figure 1 configuration).
        let cfg = TreeSvdConfig { num_blocks: 64, branching: 8, ..Default::default() };
        assert_eq!(cfg.levels(), 3);
    }

    #[test]
    fn levels_handle_non_powers() {
        let cfg = TreeSvdConfig { num_blocks: 10, branching: 4, ..Default::default() };
        // 10 → 3 → 1: q = 3.
        assert_eq!(cfg.levels(), 3);
        let one = TreeSvdConfig { num_blocks: 1, branching: 4, ..Default::default() };
        assert_eq!(one.levels(), 1);
    }

    #[test]
    fn default_is_valid() {
        TreeSvdConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "branching")]
    fn rejects_degenerate_branching() {
        TreeSvdConfig { branching: 1, ..Default::default() }.validate();
    }
}
