//! Tree-SVD configuration.

/// How the first (leaf) level of the tree factorises its sparse blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Level1Method {
    /// Sparse randomized SVD — Tree-SVD proper. Cost `O(nnz·(d+p))` per
    /// block, the paper's headline speedup over HSVD.
    Randomized,
    /// Exact SVD on the densified block — the HSVD baseline of Iwen & Ong.
    Exact,
    /// Golub–Kahan–Lanczos bidiagonalization — the deterministic sparse
    /// alternative to the randomized range finder (level-1 ablation; not in
    /// the paper).
    Lanczos,
}

tsvd_rt::impl_json_enum!(Level1Method {
    Randomized,
    Exact,
    Lanczos
});

/// When the dynamic algorithm re-factorises a first-level block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdatePolicy {
    /// The paper's lazy rule (Lemma 3.4): recompute block `j` only when
    /// `‖(B^{t−i}_j)_d − B^{t−i}_j‖_F + ‖D_j‖_F > √2·δ·‖B^t_j‖_F`.
    Lazy {
        /// Threshold δ; the paper uses 0.65. Smaller δ updates more blocks.
        delta: f64,
    },
    /// The lazy rule with a three-tier repair ladder for fired blocks.
    /// Selection is identical to [`UpdatePolicy::Lazy`] (Lemma 3.4 with the
    /// same δ, so the skip guarantee is unchanged); a block that *does* fire
    /// is then repaired as cheaply as its relative delta
    /// `rel = ‖D_j‖_F / ‖B_j‖_F` allows:
    ///
    /// * `rel ≤ patch_budget` — in-place core patch (`svd_core_patch`):
    ///   project the delta onto the retained subspaces, no residual QR;
    /// * `rel ≤ refactor_budget` — incremental Brand/Zha–Simon update
    ///   (`svd_update_rows`): basis-expanding, nnz-independent cost;
    /// * otherwise — full sparse randomized refactorisation (the oracle).
    ///
    /// Cheap tiers also fall back to refactorisation when no cached factor
    /// exists, when more rows changed than the block is wide (the update's
    /// residual QR needs tall blocks), or after
    /// [`UpdatePolicy::MAX_INCREMENTAL_STREAK`] consecutive cheap repairs
    /// (bounding drift of the estimated residual).
    LazyIncremental {
        /// Threshold δ of the firing rule, as in [`UpdatePolicy::Lazy`].
        delta: f64,
        /// Relative-delta budget below which the in-place patch is used.
        patch_budget: f64,
        /// Relative-delta budget below which the incremental update is
        /// used; above it the block is refactorised from scratch.
        refactor_budget: f64,
    },
    /// Heuristic lazy rule the paper discusses and dismisses for lacking a
    /// guarantee: recompute when the number of changed cells in the block
    /// exceeds `threshold × |S|` (a non-zero-count change measure).
    /// Kept for the ablation comparing change measures.
    LazyNnz {
        /// Changed-cell budget as a fraction of the block's row count.
        threshold: f64,
    },
    /// Recompute every block whose contents changed at all (the eager
    /// dynamic scheme of Section 3, before the lazy refinement).
    ChangedOnly,
    /// Recompute every block every snapshot (equivalent to a static
    /// rebuild; used as an ablation anchor).
    All,
}

// `UpdatePolicy` mixes unit and struct variants, which the unit-only
// `impl_json_enum!` macro cannot express, so its codec is written out in the
// externally-tagged form: unit variants as bare strings, struct variants as
// single-key objects (`{"Lazy":{"delta":0.65}}`).
impl tsvd_rt::json::ToJson for UpdatePolicy {
    fn to_json(&self) -> tsvd_rt::json::Json {
        use tsvd_rt::json::Json;
        match self {
            UpdatePolicy::Lazy { delta } => {
                Json::object([("Lazy", Json::object([("delta", delta.to_json())]))])
            }
            UpdatePolicy::LazyIncremental {
                delta,
                patch_budget,
                refactor_budget,
            } => Json::object([(
                "LazyIncremental",
                Json::object([
                    ("delta", delta.to_json()),
                    ("patch_budget", patch_budget.to_json()),
                    ("refactor_budget", refactor_budget.to_json()),
                ]),
            )]),
            UpdatePolicy::LazyNnz { threshold } => Json::object([(
                "LazyNnz",
                Json::object([("threshold", threshold.to_json())]),
            )]),
            UpdatePolicy::ChangedOnly => Json::Str("ChangedOnly".to_string()),
            UpdatePolicy::All => Json::Str("All".to_string()),
        }
    }
}

impl tsvd_rt::json::FromJson for UpdatePolicy {
    fn from_json(j: &tsvd_rt::json::Json) -> Result<Self, tsvd_rt::json::JsonError> {
        use tsvd_rt::json::{field, Json, JsonError};
        match j {
            Json::Str(s) => match s.as_str() {
                "ChangedOnly" => Ok(UpdatePolicy::ChangedOnly),
                "All" => Ok(UpdatePolicy::All),
                other => Err(JsonError(format!("unknown UpdatePolicy variant `{other}`"))),
            },
            Json::Obj(pairs) if pairs.len() == 1 => {
                let (tag, body) = &pairs[0];
                match tag.as_str() {
                    "Lazy" => Ok(UpdatePolicy::Lazy {
                        delta: field(body, "delta")?,
                    }),
                    "LazyIncremental" => Ok(UpdatePolicy::LazyIncremental {
                        delta: field(body, "delta")?,
                        patch_budget: field(body, "patch_budget")?,
                        refactor_budget: field(body, "refactor_budget")?,
                    }),
                    "LazyNnz" => Ok(UpdatePolicy::LazyNnz {
                        threshold: field(body, "threshold")?,
                    }),
                    other => Err(JsonError(format!("unknown UpdatePolicy variant `{other}`"))),
                }
            }
            _ => Err(JsonError(
                "expected UpdatePolicy string or single-key object".into(),
            )),
        }
    }
}

impl UpdatePolicy {
    /// Default relative-delta budget for the in-place core patch tier.
    pub const DEFAULT_PATCH_BUDGET: f64 = 0.02;
    /// Default relative-delta budget for the incremental-update tier.
    pub const DEFAULT_REFACTOR_BUDGET: f64 = 0.5;
    /// Consecutive cheap repairs a block tolerates before being forced
    /// through a full refactorisation. The cheap tiers *estimate* their
    /// residual as `‖B‖² − Σσ²`, which can drift below the truth over long
    /// patch chains; a periodic refactor resets the estimate exactly.
    pub const MAX_INCREMENTAL_STREAK: u32 = 32;

    /// [`UpdatePolicy::LazyIncremental`] with the default tier budgets.
    pub fn lazy_incremental(delta: f64) -> UpdatePolicy {
        UpdatePolicy::LazyIncremental {
            delta,
            patch_budget: Self::DEFAULT_PATCH_BUDGET,
            refactor_budget: Self::DEFAULT_REFACTOR_BUDGET,
        }
    }

    /// Whether `TSVD_SVD_UPDATE` asks for the incremental path
    /// (`1`/`true`, anything else — including unset — means exact).
    pub fn svd_update_env() -> bool {
        matches!(
            std::env::var("TSVD_SVD_UPDATE").as_deref(),
            Ok("1") | Ok("true")
        )
    }

    /// Resolve the `TSVD_SVD_UPDATE` toggle: a plain [`UpdatePolicy::Lazy`]
    /// policy upgrades to [`UpdatePolicy::LazyIncremental`] (same δ,
    /// default budgets) when the env var is set. Explicit policies — and
    /// every non-`Lazy` variant — pass through untouched, so configs that
    /// spell out a policy are env-independent.
    pub fn resolve_env(self) -> UpdatePolicy {
        self.resolve_with(Self::svd_update_env())
    }

    /// [`UpdatePolicy::resolve_env`] with the toggle passed explicitly
    /// (testable without mutating process-wide environment).
    pub fn resolve_with(self, svd_update: bool) -> UpdatePolicy {
        match self {
            UpdatePolicy::Lazy { delta } if svd_update => Self::lazy_incremental(delta),
            other => other,
        }
    }
}

/// Full Tree-SVD parameterisation.
///
/// The paper's defaults are `d = 128`, `b = 64`, `k = 8` (so `q = 3`
/// levels) and `δ = 0.65`; scaled-down experiments in this repository use
/// smaller `d`/`b` but the same shape.
#[derive(Debug, Clone, Copy)]
pub struct TreeSvdConfig {
    /// Embedding dimension `d` (rank of every truncated SVD in the tree).
    pub dim: usize,
    /// Branching factor `k`: how many child factors merge per tree node.
    pub branching: usize,
    /// Number of first-level column blocks `b`. Need not be a power of `k`;
    /// the last group at each level may be smaller.
    pub num_blocks: usize,
    /// Oversampling for the level-1 randomized SVD.
    pub oversample: usize,
    /// Power iterations for the level-1 randomized SVD.
    pub power_iters: usize,
    /// First-level factorisation method.
    pub level1: Level1Method,
    /// Dynamic update policy.
    pub policy: UpdatePolicy,
    /// How columns are assigned to first-level blocks.
    pub partition: PartitionStrategy,
    /// Seed for the randomized range finders (deterministic runs).
    pub seed: u64,
}

tsvd_rt::impl_json_struct!(TreeSvdConfig {
    dim,
    branching,
    num_blocks,
    oversample,
    power_iters,
    level1,
    policy,
    partition,
    seed
});

/// How the proximity matrix's columns are cut into first-level blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// `b` equal-width contiguous column ranges (the paper's layout).
    EqualWidth,
    /// Contiguous ranges balanced by squared-Frobenius column mass of the
    /// *initial* matrix. PPR mass concentrates on hubs, so equal-width
    /// blocks can be wildly uneven in nnz; mass balancing evens out the
    /// level-1 SVD costs and makes the lazy rule fire more uniformly.
    /// (The paper notes heavy-tailed PPR concentration as the motivation
    /// for lazy updates; this is the corresponding layout ablation.)
    EqualMass,
}

tsvd_rt::impl_json_enum!(PartitionStrategy {
    EqualWidth,
    EqualMass
});

impl Default for TreeSvdConfig {
    fn default() -> Self {
        TreeSvdConfig {
            dim: 32,
            branching: 4,
            num_blocks: 16,
            oversample: 8,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.65 },
            partition: PartitionStrategy::EqualWidth,
            seed: 42,
        }
    }
}

impl TreeSvdConfig {
    /// Config with the given dimension, keeping other defaults.
    pub fn with_dim(dim: usize) -> Self {
        TreeSvdConfig {
            dim,
            ..Default::default()
        }
    }

    /// Number of tree levels `q` (SVD rounds from leaves to root):
    /// `b` blocks shrink by factor `k` per merge until one remains.
    pub fn levels(&self) -> usize {
        assert!(self.branching >= 2, "branching factor must be ≥ 2");
        let mut q = 1;
        let mut nodes = self.num_blocks.max(1);
        while nodes > 1 {
            nodes = nodes.div_ceil(self.branching);
            q += 1;
        }
        q
    }

    /// Validate invariants, panicking with a descriptive message.
    pub fn validate(&self) {
        assert!(self.dim >= 1, "embedding dimension must be positive");
        assert!(self.branching >= 2, "branching factor must be ≥ 2");
        assert!(self.num_blocks >= 1, "need at least one block");
        match self.policy {
            UpdatePolicy::Lazy { delta } => {
                assert!(delta >= 0.0, "delta must be non-negative");
            }
            UpdatePolicy::LazyIncremental {
                delta,
                patch_budget,
                refactor_budget,
            } => {
                assert!(delta >= 0.0, "delta must be non-negative");
                assert!(patch_budget >= 0.0, "patch_budget must be non-negative");
                assert!(
                    refactor_budget >= patch_budget,
                    "refactor_budget must be ≥ patch_budget"
                );
            }
            UpdatePolicy::LazyNnz { threshold } => {
                assert!(threshold >= 0.0, "threshold must be non-negative");
            }
            UpdatePolicy::ChangedOnly | UpdatePolicy::All => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_paper_example() {
        // b = 64, k = 8 ⇒ q = 3 (the paper's Figure 1 configuration).
        let cfg = TreeSvdConfig {
            num_blocks: 64,
            branching: 8,
            ..Default::default()
        };
        assert_eq!(cfg.levels(), 3);
    }

    #[test]
    fn levels_handle_non_powers() {
        let cfg = TreeSvdConfig {
            num_blocks: 10,
            branching: 4,
            ..Default::default()
        };
        // 10 → 3 → 1: q = 3.
        assert_eq!(cfg.levels(), 3);
        let one = TreeSvdConfig {
            num_blocks: 1,
            branching: 4,
            ..Default::default()
        };
        assert_eq!(one.levels(), 1);
    }

    #[test]
    fn default_is_valid() {
        TreeSvdConfig::default().validate();
    }

    #[test]
    fn lazy_incremental_round_trips_and_validates() {
        use tsvd_rt::json::{FromJson, Json, ToJson};
        let p = UpdatePolicy::lazy_incremental(0.65);
        let j = Json::parse(&p.to_json().to_string()).unwrap();
        assert_eq!(UpdatePolicy::from_json(&j).unwrap(), p);
        TreeSvdConfig {
            policy: p,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "refactor_budget")]
    fn rejects_inverted_tier_budgets() {
        TreeSvdConfig {
            policy: UpdatePolicy::LazyIncremental {
                delta: 0.65,
                patch_budget: 0.5,
                refactor_budget: 0.1,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn env_toggle_upgrades_only_plain_lazy() {
        // Pure form of resolve_env: the toggle upgrades Lazy and leaves
        // everything else (including an explicit LazyIncremental) alone.
        let lazy = UpdatePolicy::Lazy { delta: 0.4 };
        assert_eq!(lazy.resolve_with(false), lazy);
        assert_eq!(lazy.resolve_with(true), UpdatePolicy::lazy_incremental(0.4));
        let explicit = UpdatePolicy::LazyIncremental {
            delta: 0.4,
            patch_budget: 0.1,
            refactor_budget: 0.3,
        };
        assert_eq!(explicit.resolve_with(false), explicit);
        assert_eq!(explicit.resolve_with(true), explicit);
        assert_eq!(UpdatePolicy::All.resolve_with(true), UpdatePolicy::All);
    }

    #[test]
    #[should_panic(expected = "branching")]
    fn rejects_degenerate_branching() {
        TreeSvdConfig {
            branching: 1,
            ..Default::default()
        }
        .validate();
    }
}
