//! The subset embedding produced at the tree root.

use tsvd_linalg::{CsrMatrix, DenseMatrix, Svd};

/// The output of (static or dynamic) Tree-SVD: the root truncated SVD and
/// the derived node embedding.
///
/// The left embedding is `X = U·√Σ` (|S| × d, zero-padded if the root rank
/// fell short of `d`). Because the tree compresses the column space, the
/// right factor over the original `n` columns is *restored* as in
/// Theorem 3.2: `Ṽ = Σ⁻¹·Uᵀ·M_S`, giving the right embedding
/// `Y = Ṽᵀ·√Σ = M_Sᵀ·U·Σ^{-1/2}` used by link prediction.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Left singular vectors at the root, `|S| × r` with `r ≤ d`.
    pub u: DenseMatrix,
    /// Root singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// Target dimension `d` requested in the config.
    pub dim: usize,
}

tsvd_rt::impl_json_struct!(Embedding { u, sigma, dim });

impl Embedding {
    /// Build from a root SVD, remembering the requested dimension.
    pub fn from_root_svd(svd: &Svd, dim: usize) -> Self {
        let t = svd.truncate(dim);
        Embedding {
            u: t.u,
            sigma: t.s,
            dim,
        }
    }

    /// Number of embedded nodes `|S|`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.u.rows()
    }

    /// The subset embedding `X = U·√Σ`, padded to exactly `dim` columns.
    pub fn left(&self) -> DenseMatrix {
        let r = self.sigma.len();
        let mut x = DenseMatrix::zeros(self.u.rows(), self.dim);
        for i in 0..self.u.rows() {
            let urow = self.u.row(i);
            let xrow = x.row_mut(i);
            for j in 0..r.min(self.dim) {
                xrow[j] = urow[j] * self.sigma[j].max(0.0).sqrt();
            }
        }
        x
    }

    /// The restored right embedding `Y = M_Sᵀ·U·Σ^{-1/2}` (`n × dim`),
    /// for scoring subset → anywhere edges in link prediction.
    ///
    /// Singular values below `1e-12·σ_max` are treated as zero (their
    /// directions carry no signal and the inverse would explode).
    pub fn right(&self, m_s: &CsrMatrix) -> DenseMatrix {
        assert_eq!(m_s.rows(), self.u.rows(), "M_S row count mismatch");
        let mut y = m_s.t_mul_dense(&self.u); // n × r
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let inv_sqrt: Vec<f64> = self
            .sigma
            .iter()
            .map(|&s| {
                if s > 1e-12 * smax && s > 0.0 {
                    1.0 / s.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        y.scale_cols(&inv_sqrt);
        // Pad to dim columns.
        if y.cols() == self.dim {
            return y;
        }
        let mut out = DenseMatrix::zeros(y.rows(), self.dim);
        for i in 0..y.rows() {
            let src = y.row(i);
            out.row_mut(i)[..src.len().min(self.dim)]
                .copy_from_slice(&src[..src.len().min(self.dim)]);
        }
        out
    }

    /// Reconstruction error `‖U·(Uᵀ·M_S) − M_S‖_F` of the rank-r projection
    /// this embedding represents — the quantity bounded by Theorem 3.2
    /// (up to the unitary factor `W`).
    pub fn projection_residual(&self, m_s: &CsrMatrix) -> f64 {
        // ‖M − U Uᵀ M‖_F² = ‖M‖_F² − ‖Uᵀ M‖_F²  (U orthonormal).
        let utm = m_s.t_mul_dense(&self.u); // n × r, equals (Uᵀ M)ᵀ
        let captured = utm.frobenius_norm().powi(2);
        (m_s.frobenius_norm_sq() - captured).max(0.0).sqrt()
    }

    /// Freeze this embedding into an epoch-tagged, cheaply clonable
    /// snapshot (see [`TaggedEmbedding`]).
    pub fn tagged(&self, epoch: u64) -> TaggedEmbedding {
        TaggedEmbedding::new(epoch, self.clone())
    }
}

/// An epoch-tagged, immutable embedding snapshot whose clone is two `Arc`
/// bumps — the publishable unit of the serving layer.
///
/// Publishing a fresh embedding to concurrent readers must not copy the
/// `|S| × d` matrix per reader, and readers want the *materialised* rows
/// `X = U·√Σ` (what lookups and similarity scores consume), not the raw
/// factors. `TaggedEmbedding` freezes both at construction: the source
/// [`Embedding`] and its `left()` matrix go behind `Arc`s together with the
/// epoch they belong to, so a reader holding a clone keeps an entire
/// consistent epoch alive regardless of how many swaps happen behind it.
#[derive(Debug, Clone)]
pub struct TaggedEmbedding {
    epoch: u64,
    embedding: std::sync::Arc<Embedding>,
    /// Materialised `X = U·√Σ`, exactly `dim` columns.
    left: std::sync::Arc<DenseMatrix>,
}

impl TaggedEmbedding {
    /// Tag `embedding` as the state of `epoch`, materialising `X = U·√Σ`.
    pub fn new(epoch: u64, embedding: Embedding) -> Self {
        let left = std::sync::Arc::new(embedding.left());
        TaggedEmbedding {
            epoch,
            embedding: std::sync::Arc::new(embedding),
            left,
        }
    }

    /// The update epoch this snapshot belongs to.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying root factors.
    #[inline]
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The materialised subset embedding `X = U·√Σ` (`|S| × dim`).
    #[inline]
    pub fn left(&self) -> &DenseMatrix {
        &self.left
    }

    /// Row `i` of `X` — the embedding vector of the `i`-th subset source.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.left.row(i)
    }

    /// Number of embedded nodes `|S|`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.left.rows()
    }

    /// Embedding dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.left.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_linalg::svd::exact_svd;

    fn sample_csr() -> CsrMatrix {
        CsrMatrix::from_rows(
            6,
            &[
                vec![(0, 2.0), (3, 1.0)],
                vec![(1, 3.0), (4, 0.5)],
                vec![(0, 1.0), (1, 1.0), (5, 2.0)],
                vec![(2, 4.0)],
            ],
        )
    }

    #[test]
    fn left_scales_by_sqrt_sigma() {
        let m = sample_csr().to_dense();
        let svd = exact_svd(&m);
        let emb = Embedding::from_root_svd(&svd, 3);
        let x = emb.left();
        assert_eq!(x.cols(), 3);
        for j in 0..3 {
            let norm = x.col_norm_sq(j).sqrt();
            assert!((norm - svd.s[j].sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn left_pads_when_rank_deficient() {
        let m = CsrMatrix::from_rows(4, &[vec![(0, 1.0)], vec![(0, 2.0)]]);
        let svd = exact_svd(&m.to_dense());
        let emb = Embedding::from_root_svd(&svd, 5);
        let x = emb.left();
        assert_eq!(x.cols(), 5);
        // Rank is 1: columns beyond the first are (near) zero.
        for j in 2..5 {
            assert!(x.col_norm_sq(j) < 1e-18);
        }
    }

    #[test]
    fn right_recovers_v_sqrt_sigma_for_exact_svd() {
        // With U, Σ from an exact SVD, M Mᵀ-consistency gives
        // Y = Mᵀ U Σ^{-1/2} = V Σ^{1/2} exactly.
        let m = sample_csr();
        let svd = exact_svd(&m.to_dense());
        let d = 4;
        let emb = Embedding::from_root_svd(&svd, d);
        let y = emb.right(&m);
        let tr = svd.truncate(d);
        let mut want = tr.vt.transpose();
        let sq: Vec<f64> = tr.s.iter().map(|s| s.sqrt()).collect();
        want.scale_cols(&sq);
        assert!(y.sub(&want).max_abs() < 1e-9);
        // Dot products X·Yᵀ reconstruct M for a full-rank decomposition.
        let x = emb.left();
        let approx = x.mul(&y.transpose());
        assert!(approx.sub(&m.to_dense()).max_abs() < 1e-9);
    }

    #[test]
    fn projection_residual_matches_tail() {
        let m = sample_csr();
        let svd = exact_svd(&m.to_dense());
        let d = 2;
        let emb = Embedding::from_root_svd(&svd, d);
        let resid = emb.projection_residual(&m);
        let tail: f64 = svd.s[d..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((resid - tail).abs() < 1e-9, "{resid} vs {tail}");
    }

    #[test]
    fn tagged_embedding_clones_share_storage() {
        let m = sample_csr();
        let svd = exact_svd(&m.to_dense());
        let emb = Embedding::from_root_svd(&svd, 3);
        let tagged = emb.tagged(42);
        assert_eq!(tagged.epoch(), 42);
        assert_eq!(tagged.num_rows(), 4);
        assert_eq!(tagged.dim(), 3);
        // The materialised left matrix matches Embedding::left bitwise.
        assert_eq!(tagged.left().sub(&emb.left()).max_abs(), 0.0);
        assert_eq!(tagged.row(2), emb.left().row(2));
        // Cloning shares the allocations (two Arc bumps, no matrix copy).
        let c = tagged.clone();
        assert!(std::sync::Arc::ptr_eq(&tagged.left, &c.left));
        assert!(std::sync::Arc::ptr_eq(&tagged.embedding, &c.embedding));
    }

    #[test]
    fn zero_sigma_right_embedding_is_finite() {
        let m = CsrMatrix::zeros(3, 5);
        let svd = exact_svd(&m.to_dense());
        let emb = Embedding::from_root_svd(&svd, 2);
        let y = emb.right(&m);
        assert!(y.is_finite());
        assert!(y.max_abs() == 0.0);
    }
}
