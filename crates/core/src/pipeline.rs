//! End-to-end dynamic subset embedding: graph → PPR → proximity matrix →
//! Tree-SVD, wired together the way the paper's system runs.

use crate::blocked::BlockedProximityMatrix;
use crate::config::TreeSvdConfig;
use crate::dynamic_tree::{DynamicTreeSvd, UpdateStats};
use crate::embedding::Embedding;
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_linalg::CsrMatrix;
use tsvd_ppr::{PprConfig, SubsetPpr};

/// Cumulative wall-clock accounting of the pipeline's update phases —
/// where a deployment's maintenance budget actually goes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineTimings {
    /// Seconds in Dynamic Forward-Push (Algorithm 2) across all updates.
    pub ppr_secs: f64,
    /// Seconds rebuilding dirty proximity rows (log transform + blocking).
    pub rows_secs: f64,
    /// Seconds in the lazy Tree-SVD refresh (diffing + SVDs + merges).
    pub svd_secs: f64,
    /// Number of update calls accounted.
    pub updates: usize,
}

tsvd_rt::impl_json_struct!(PipelineTimings {
    ppr_secs,
    rows_secs,
    svd_secs,
    updates
});

impl PipelineTimings {
    /// Total accounted seconds.
    pub fn total_secs(&self) -> f64 {
        self.ppr_secs + self.rows_secs + self.svd_secs
    }

    /// Seconds in phase 1 — PPR maintenance plus proximity-row rebuild.
    /// This is the per-source-independent half of an update, the part a
    /// pipelined server can overlap with the previous window's phase 2.
    pub fn phase1_secs(&self) -> f64 {
        self.ppr_secs + self.rows_secs
    }

    /// Seconds in phase 2 — the global lazy Tree-SVD refresh, the ordered
    /// serialization point of every update.
    pub fn phase2_secs(&self) -> f64 {
        self.svd_secs
    }
}

/// Field-wise accumulation (update counts add), so per-shard or per-window
/// timing records aggregate without hand-rolled field sums.
impl std::ops::AddAssign for PipelineTimings {
    fn add_assign(&mut self, rhs: PipelineTimings) {
        self.ppr_secs += rhs.ppr_secs;
        self.rows_secs += rhs.rows_secs;
        self.svd_secs += rhs.svd_secs;
        self.updates += rhs.updates;
    }
}

impl std::ops::Add for PipelineTimings {
    type Output = PipelineTimings;
    fn add(mut self, rhs: PipelineTimings) -> PipelineTimings {
        self += rhs;
        self
    }
}

/// The complete dynamic subset-embedding system.
///
/// Owns the PPR states, the blocked proximity matrix, and the dynamic
/// Tree-SVD caches. Per snapshot:
///
/// 1. [`TreeSvdPipeline::update`] applies the event batch — Dynamic
///    Forward-Push refreshes PPR, dirty proximity rows are rebuilt, and
///    Algorithm 4 lazily re-factorises only the blocks that moved;
/// 2. [`TreeSvdPipeline::embedding`] returns the current `X = U·√Σ`.
///
/// # Examples
///
/// ```
/// use tsvd_core::{TreeSvdConfig, TreeSvdPipeline};
/// use tsvd_graph::{DynGraph, EdgeEvent};
/// use tsvd_ppr::PprConfig;
///
/// let mut g = DynGraph::with_nodes(20);
/// for u in 0..19 {
///     g.insert_edge(u, u + 1);
/// }
/// let cfg = TreeSvdConfig { dim: 4, num_blocks: 4, ..Default::default() };
/// let mut pipe = TreeSvdPipeline::new(&g, &[0, 5, 10], PprConfig::default(), cfg);
/// assert_eq!(pipe.embedding().left().rows(), 3);
/// let stats = pipe.update(&mut g, &[EdgeEvent::insert(19, 0)]);
/// assert!(stats.blocks_recomputed <= stats.blocks_total);
/// ```
#[derive(Debug, Clone)]
pub struct TreeSvdPipeline {
    ppr: SubsetPpr,
    matrix: BlockedProximityMatrix,
    tree: DynamicTreeSvd,
    embedding: Embedding,
    timings: PipelineTimings,
}

// `timings` was added after the first on-disk snapshots were written, so the
// decoder tolerates its absence (the moral equivalent of serde's
// `#[serde(default)]`) via [`tsvd_rt::json::field_or_default`].
impl tsvd_rt::json::ToJson for TreeSvdPipeline {
    fn to_json(&self) -> tsvd_rt::json::Json {
        use tsvd_rt::json::Json;
        Json::object([
            ("ppr", self.ppr.to_json()),
            ("matrix", self.matrix.to_json()),
            ("tree", self.tree.to_json()),
            ("embedding", self.embedding.to_json()),
            ("timings", self.timings.to_json()),
        ])
    }
}

impl tsvd_rt::json::FromJson for TreeSvdPipeline {
    fn from_json(j: &tsvd_rt::json::Json) -> Result<Self, tsvd_rt::json::JsonError> {
        use tsvd_rt::json::{field, field_or_default};
        Ok(TreeSvdPipeline {
            ppr: field(j, "ppr")?,
            matrix: field(j, "matrix")?,
            tree: field(j, "tree")?,
            embedding: field(j, "embedding")?,
            timings: field_or_default(j, "timings")?,
        })
    }
}

impl TreeSvdPipeline {
    /// Build the pipeline on graph `g` for subset `sources`.
    pub fn new(g: &DynGraph, sources: &[u32], ppr_cfg: PprConfig, tree_cfg: TreeSvdConfig) -> Self {
        tree_cfg.validate();
        assert!(!sources.is_empty(), "subset must be non-empty");
        assert!(
            sources.iter().all(|&s| (s as usize) < g.num_nodes()),
            "subset node out of range"
        );
        let mut ppr = SubsetPpr::build(g, sources, ppr_cfg);
        let rows = ppr.proximity_rows();
        let matrix = BlockedProximityMatrix::from_proximity_rows(g.num_nodes(), &tree_cfg, &rows);
        ppr.take_dirty_rows(); // initial build handled all rows
        let mut tree = DynamicTreeSvd::new(tree_cfg);
        let embedding = tree.build(&matrix);
        TreeSvdPipeline {
            ppr,
            matrix,
            tree,
            embedding,
            timings: PipelineTimings::default(),
        }
    }

    /// Apply an event batch (mutating the shared graph `g`) and refresh the
    /// embedding via the lazy dynamic algorithm. Returns update statistics.
    pub fn update(&mut self, g: &mut DynGraph, events: &[EdgeEvent]) -> UpdateStats {
        self.apply_events(g, events);
        self.refresh_embedding()
    }

    /// Phase 1 of [`TreeSvdPipeline::update`]: dynamic PPR refresh plus
    /// proximity-row rebuilds, without touching the factorisation. Exposed
    /// separately so experiments can charge the (shared) PPR-maintenance
    /// cost fairly to every method that reuses this matrix.
    pub fn apply_events(&mut self, g: &mut DynGraph, events: &[EdgeEvent]) {
        let t0 = std::time::Instant::now();
        self.ppr.update(g, events);
        let t1 = std::time::Instant::now();
        for i in self.ppr.take_dirty_rows() {
            let row = self.ppr.proximity_row(i);
            self.matrix.set_row(i, &row);
        }
        self.timings.ppr_secs += (t1 - t0).as_secs_f64();
        self.timings.rows_secs += t1.elapsed().as_secs_f64();
    }

    /// Phase 2 of [`TreeSvdPipeline::update`]: the lazy Tree-SVD refresh on
    /// the current matrix.
    pub fn refresh_embedding(&mut self) -> UpdateStats {
        let t0 = std::time::Instant::now();
        let (embedding, stats) = self.tree.update(&self.matrix);
        self.embedding = embedding;
        self.timings.svd_secs += t0.elapsed().as_secs_f64();
        self.timings.updates += 1;
        stats
    }

    /// Cumulative phase timings across all updates so far.
    pub fn timings(&self) -> PipelineTimings {
        self.timings
    }

    /// Reset the cumulative timings to zero.
    pub fn reset_timings(&mut self) {
        self.timings = PipelineTimings::default();
    }

    /// Throw away the Tree-SVD caches and rebuild from the current matrix
    /// (the "static rebuild" arm of the paper's comparisons).
    pub fn rebuild(&mut self) {
        self.embedding = self.tree.build(&self.matrix);
    }

    /// The current subset embedding.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The subset `S` in row order.
    pub fn sources(&self) -> &[u32] {
        self.ppr.sources()
    }

    /// The current proximity matrix as CSR (for right embeddings and
    /// quality measurements).
    pub fn proximity_csr(&self) -> CsrMatrix {
        self.matrix.to_csr()
    }

    /// The blocked proximity matrix.
    pub fn matrix(&self) -> &BlockedProximityMatrix {
        &self.matrix
    }

    /// The underlying PPR maintenance structure.
    pub fn ppr(&self) -> &SubsetPpr {
        &self.ppr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Level1Method, UpdatePolicy};
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            oversample: 6,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.3 },
            partition: crate::config::PartitionStrategy::EqualWidth,
            seed: 3,
        }
    }

    #[test]
    fn pipeline_builds_and_embeds() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_graph(&mut rng, 100, 400);
        let sources: Vec<u32> = (0..10).collect();
        let p = TreeSvdPipeline::new(
            &g,
            &sources,
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4,
            },
            tree_cfg(),
        );
        let x = p.embedding().left();
        assert_eq!(x.rows(), 10);
        assert_eq!(x.cols(), 8);
        assert!(x.is_finite());
        assert!(x.frobenius_norm() > 0.0);
    }

    #[test]
    fn updates_converge_to_fresh_build() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = random_graph(&mut rng, 80, 240);
        let sources: Vec<u32> = (0..8).collect();
        let ppr_cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-5,
        };
        let mut cfg = tree_cfg();
        cfg.policy = UpdatePolicy::ChangedOnly; // exact tracking mode
        let mut pipe = TreeSvdPipeline::new(&g, &sources, ppr_cfg, cfg);
        // Stream 3 batches of events.
        for _ in 0..3 {
            let events: Vec<EdgeEvent> = (0..15)
                .map(|_| {
                    let u = rng.gen_range(0..80) as u32;
                    let v = rng.gen_range(0..80) as u32;
                    EdgeEvent::insert(u, v)
                })
                .filter(|e| e.u != e.v)
                .collect();
            pipe.update(&mut g, &events);
        }
        // Fresh pipeline on the final graph factorises the same proximity
        // matrix up to PPR approximation noise; compare projection quality.
        let fresh = TreeSvdPipeline::new(&g, &sources, ppr_cfg, cfg);
        let csr_dyn = pipe.proximity_csr();
        let csr_fresh = fresh.proximity_csr();
        let dyn_resid = pipe.embedding().projection_residual(&csr_dyn);
        let fresh_resid = fresh.embedding().projection_residual(&csr_fresh);
        let scale = csr_fresh.frobenius_norm().max(1.0);
        assert!(
            (dyn_resid - fresh_resid).abs() / scale < 0.05,
            "dyn {dyn_resid} vs fresh {fresh_resid}"
        );
    }

    #[test]
    fn lazy_pipeline_reports_skips() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = random_graph(&mut rng, 120, 600);
        let sources: Vec<u32> = (0..12).collect();
        let mut cfg = tree_cfg();
        cfg.policy = UpdatePolicy::Lazy { delta: 0.65 };
        let mut pipe = TreeSvdPipeline::new(
            &g,
            &sources,
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4,
            },
            cfg,
        );
        // One tiny event far from most sources: most blocks should be quiet.
        let stats = pipe.update(&mut g, &[EdgeEvent::insert(100, 119)]);
        assert!(stats.blocks_recomputed <= stats.blocks_changed);
        assert!(stats.blocks_total == 4);
    }

    #[test]
    fn equal_mass_partition_pipeline_works() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_graph(&mut rng, 150, 600);
        let sources: Vec<u32> = (0..10).collect();
        let mut cfg = tree_cfg();
        cfg.partition = crate::config::PartitionStrategy::EqualMass;
        let p = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), cfg);
        let x = p.embedding().left();
        assert!(x.is_finite());
        assert!(x.frobenius_norm() > 0.0);
        // Block masses are far more even than the id-skewed default:
        // preferential sources 0..10 concentrate mass on low column ids.
        let m = p.matrix();
        let masses: Vec<f64> = (0..m.num_blocks()).map(|j| m.block_norm_sq(j)).collect();
        let max = masses.iter().cloned().fold(0.0, f64::max);
        let min = masses.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.0 && min >= 0.0);
    }

    #[test]
    fn lazy_nnz_policy_updates() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = random_graph(&mut rng, 100, 400);
        let sources: Vec<u32> = (0..8).collect();
        let mut cfg = tree_cfg();
        cfg.policy = UpdatePolicy::LazyNnz { threshold: 0.25 };
        let mut pipe = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), cfg);
        let events: Vec<EdgeEvent> = (0..20)
            .map(|i| EdgeEvent::insert(i as u32, (i + 31) as u32))
            .collect();
        let stats = pipe.update(&mut g, &events);
        assert!(stats.blocks_recomputed <= stats.blocks_changed);
        assert!(pipe.embedding().left().is_finite());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_subset_rejected() {
        let g = DynGraph::with_nodes(10);
        let _ = TreeSvdPipeline::new(&g, &[], PprConfig::default(), tree_cfg());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_subset_rejected() {
        let mut g = DynGraph::with_nodes(10);
        g.insert_edge(0, 1);
        let _ = TreeSvdPipeline::new(&g, &[99], PprConfig::default(), tree_cfg());
    }

    #[test]
    fn timings_accumulate_per_phase() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = random_graph(&mut rng, 80, 300);
        let sources: Vec<u32> = (0..6).collect();
        let mut pipe = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), tree_cfg());
        assert_eq!(pipe.timings(), super::PipelineTimings::default());
        pipe.update(
            &mut g,
            &[EdgeEvent::insert(0, 79), EdgeEvent::insert(1, 78)],
        );
        let t = pipe.timings();
        assert_eq!(t.updates, 1);
        assert!(t.ppr_secs > 0.0);
        assert!(t.svd_secs >= 0.0);
        assert!(t.total_secs() >= t.ppr_secs);
        pipe.reset_timings();
        assert_eq!(pipe.timings().updates, 0);
    }

    #[test]
    fn stats_and_timings_merge_field_wise() {
        let a = UpdateStats {
            blocks_total: 8,
            blocks_changed: 3,
            blocks_recomputed: 2,
            blocks_patched: 1,
            blocks_incremental: 2,
            merges_recomputed: 1,
            cells_rediffed: 40,
        };
        let b = UpdateStats {
            blocks_total: 8,
            blocks_changed: 5,
            blocks_recomputed: 4,
            blocks_patched: 3,
            blocks_incremental: 1,
            merges_recomputed: 3,
            cells_rediffed: 60,
        };
        let mut acc = UpdateStats::default();
        acc += a;
        acc += b;
        assert_eq!(acc, a + b);
        assert_eq!(acc.blocks_total, 16);
        assert_eq!(acc.blocks_recomputed, 6);
        assert_eq!(acc.cells_rediffed, 100);

        let t1 = PipelineTimings {
            ppr_secs: 1.0,
            rows_secs: 0.5,
            svd_secs: 2.0,
            updates: 3,
        };
        let t2 = PipelineTimings {
            ppr_secs: 0.25,
            rows_secs: 0.25,
            svd_secs: 1.0,
            updates: 2,
        };
        let mut t = PipelineTimings::default();
        t += t1;
        t += t2;
        assert_eq!(t, t1 + t2);
        assert_eq!(t.updates, 5);
        assert!((t.total_secs() - 5.0).abs() < 1e-12);
        assert!((t.phase1_secs() - 2.0).abs() < 1e-12, "ppr + rows");
        assert!((t.phase2_secs() - 3.0).abs() < 1e-12, "svd only");
        assert!((t.phase1_secs() + t.phase2_secs() - t.total_secs()).abs() < 1e-12);
    }

    #[test]
    fn rebuild_matches_update_all_policy() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = random_graph(&mut rng, 60, 200);
        let sources: Vec<u32> = (0..6).collect();
        let mut cfg = tree_cfg();
        cfg.policy = UpdatePolicy::All;
        let mut pipe = TreeSvdPipeline::new(
            &g,
            &sources,
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4,
            },
            cfg,
        );
        let events = vec![EdgeEvent::insert(0, 59), EdgeEvent::insert(1, 58)];
        pipe.update(&mut g, &events);
        let after_update = pipe.embedding().left();
        pipe.rebuild();
        let after_rebuild = pipe.embedding().left();
        assert!(after_update.sub(&after_rebuild).max_abs() < 1e-12);
    }
}
