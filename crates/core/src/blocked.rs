//! The vertically blocked proximity matrix `M_S = [M_{1,1}|…|M_{1,b}]`.
//!
//! Rows are subset sources, columns are graph nodes, and columns are cut
//! into `b` contiguous equal-width blocks. Storage is per `(row, block)`
//! sorted sparse vectors, which makes three things cheap:
//!
//! * extracting block `j` as a [`CsrMatrix`] for its SVD;
//! * replacing one source's row when its PPR changes (only the blocks whose
//!   content actually differs are touched);
//! * exact incremental bookkeeping of `‖B_j‖_F²` per block and a version
//!   counter per `(row, block)` that lets the dynamic layer compute
//!   `‖D_j‖_F` by diffing only changed cells.

use tsvd_linalg::CsrMatrix;

/// Blocked sparse `|S| × n` proximity matrix with norm/version tracking.
#[derive(Debug, Clone)]
pub struct BlockedProximityMatrix {
    num_rows: usize,
    num_cols: usize,
    /// `b + 1` column boundaries; block `j` covers `[bounds[j], bounds[j+1])`.
    bounds: Vec<u32>,
    /// `cells[row][block]`: sorted `(local_col, value)` pairs.
    cells: Vec<Vec<Vec<(u32, f64)>>>,
    /// `‖B_j‖_F²` per block, maintained exactly.
    block_normsq: Vec<f64>,
    /// Version stamp per `(row, block)`, bumped on content change.
    versions: Vec<Vec<u64>>,
    clock: u64,
}

tsvd_rt::impl_json_struct!(BlockedProximityMatrix {
    num_rows,
    num_cols,
    bounds,
    cells,
    block_normsq,
    versions,
    clock
});

impl BlockedProximityMatrix {
    /// An all-zero matrix with `num_blocks` equal-width column blocks.
    pub fn new(num_rows: usize, num_cols: usize, num_blocks: usize) -> Self {
        assert!(num_blocks >= 1, "need at least one block");
        assert!(num_cols >= num_blocks, "more blocks than columns");
        let mut bounds = Vec::with_capacity(num_blocks + 1);
        for j in 0..=num_blocks {
            bounds.push(((j * num_cols) / num_blocks) as u32);
        }
        BlockedProximityMatrix::with_boundaries(num_rows, num_cols, bounds)
    }

    /// An all-zero matrix with explicit column boundaries (`b + 1` strictly
    /// increasing values from `0` to `num_cols`).
    pub fn with_boundaries(num_rows: usize, num_cols: usize, bounds: Vec<u32>) -> Self {
        assert!(bounds.len() >= 2, "need at least one block");
        assert_eq!(bounds[0], 0, "boundaries must start at 0");
        assert_eq!(
            *bounds.last().unwrap() as usize,
            num_cols,
            "boundaries must end at n"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "boundaries must strictly increase"
        );
        let num_blocks = bounds.len() - 1;
        BlockedProximityMatrix {
            num_rows,
            num_cols,
            bounds,
            cells: vec![vec![Vec::new(); num_blocks]; num_rows],
            block_normsq: vec![0.0; num_blocks],
            versions: vec![vec![0; num_blocks]; num_rows],
            clock: 0,
        }
    }

    /// Column boundaries that balance squared-Frobenius mass of the given
    /// initial rows across `num_blocks` contiguous ranges (greedy sweep).
    /// Columns with no mass widen whichever block they fall into; every
    /// block keeps at least one column.
    pub fn mass_balanced_boundaries(
        num_cols: usize,
        num_blocks: usize,
        rows: &[Vec<(u32, f64)>],
    ) -> Vec<u32> {
        assert!(num_blocks >= 1 && num_cols >= num_blocks);
        let mut col_mass = vec![0.0_f64; num_cols];
        for row in rows {
            for &(c, v) in row {
                col_mass[c as usize] += v * v;
            }
        }
        let total: f64 = col_mass.iter().sum();
        let mut bounds = Vec::with_capacity(num_blocks + 1);
        bounds.push(0u32);
        if total == 0.0 {
            for j in 1..=num_blocks {
                bounds.push(((j * num_cols) / num_blocks) as u32);
            }
            return bounds;
        }
        let target = total / num_blocks as f64;
        let mut acc = 0.0;
        let mut next_cut = target;
        for (c, &mass) in col_mass.iter().enumerate() {
            acc += mass;
            // Cut after this column once a target multiple is crossed, but
            // keep enough columns for the remaining blocks.
            let blocks_left = num_blocks - (bounds.len() - 1);
            let cols_left = num_cols - (c + 1);
            if acc >= next_cut && bounds.len() <= num_blocks && cols_left >= blocks_left - 1 {
                bounds.push(c as u32 + 1);
                next_cut += target;
                if bounds.len() == num_blocks {
                    break;
                }
            }
        }
        // Fill any missing cuts (degenerate mass distributions).
        while bounds.len() < num_blocks {
            let last = *bounds.last().unwrap();
            let remaining_blocks = num_blocks + 1 - bounds.len();
            let step = ((num_cols as u32 - last) / remaining_blocks as u32).max(1);
            bounds.push(last + step);
        }
        bounds.push(num_cols as u32);
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        bounds
    }

    /// Build a matrix holding `rows` under the partition strategy of `cfg`
    /// — the shared constructor behind `TreeSvdPipeline::new` and the
    /// serving layer's sharded engine, which must reproduce bit-identical
    /// boundaries (EqualMass boundaries depend on the *full* initial row
    /// set, so shards cannot compute them locally).
    pub fn from_proximity_rows(
        num_cols: usize,
        cfg: &crate::config::TreeSvdConfig,
        rows: &[Vec<(u32, f64)>],
    ) -> Self {
        let mut m = match cfg.partition {
            crate::config::PartitionStrategy::EqualWidth => {
                BlockedProximityMatrix::new(rows.len(), num_cols, cfg.num_blocks)
            }
            crate::config::PartitionStrategy::EqualMass => {
                let bounds = BlockedProximityMatrix::mass_balanced_boundaries(
                    num_cols,
                    cfg.num_blocks,
                    rows,
                );
                BlockedProximityMatrix::with_boundaries(rows.len(), num_cols, bounds)
            }
        };
        for (i, row) in rows.iter().enumerate() {
            m.set_row(i, row);
        }
        m
    }

    /// Number of rows `|S|`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns `n`.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of column blocks `b`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.block_normsq.len()
    }

    /// Column range `[start, end)` of block `j`.
    #[inline]
    pub fn block_range(&self, j: usize) -> (u32, u32) {
        (self.bounds[j], self.bounds[j + 1])
    }

    /// Which block a global column falls in (blocks are equal-width except
    /// for rounding, so this is a binary search over `b+1` boundaries).
    #[inline]
    pub fn block_of_col(&self, col: u32) -> usize {
        debug_assert!((col as usize) < self.num_cols);
        match self.bounds.binary_search(&col) {
            Ok(j) => j.min(self.num_blocks() - 1),
            Err(j) => j - 1,
        }
    }

    /// Replace row `i` with `entries` (global columns, sorted ascending).
    /// Only blocks whose cell content changes are re-normed and re-stamped.
    pub fn set_row(&mut self, i: usize, entries: &[(u32, f64)]) {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "row not sorted"
        );
        // A single NaN would silently poison every downstream norm, diff,
        // and factorisation; fail loudly at the boundary instead.
        assert!(
            entries.iter().all(|e| e.1.is_finite()),
            "row {i} contains a non-finite value"
        );
        let b = self.num_blocks();
        let mut per_block: Vec<Vec<(u32, f64)>> = vec![Vec::new(); b];
        for &(c, v) in entries {
            assert!((c as usize) < self.num_cols, "column {c} out of range");
            let j = self.block_of_col(c);
            per_block[j].push((c - self.bounds[j], v));
        }
        self.clock += 1;
        for (j, new_cell) in per_block.into_iter().enumerate() {
            let old_cell = &mut self.cells[i][j];
            if *old_cell == new_cell {
                continue;
            }
            let old_sq: f64 = old_cell.iter().map(|e| e.1 * e.1).sum();
            let new_sq: f64 = new_cell.iter().map(|e| e.1 * e.1).sum();
            self.block_normsq[j] += new_sq - old_sq;
            if self.block_normsq[j] < 0.0 {
                self.block_normsq[j] = 0.0; // rounding guard
            }
            *old_cell = new_cell;
            self.versions[i][j] = self.clock;
        }
    }

    /// The sparse cell `(row, block)`: sorted `(local_col, value)` pairs.
    #[inline]
    pub fn cell(&self, i: usize, j: usize) -> &[(u32, f64)] {
        &self.cells[i][j]
    }

    /// Version stamp of cell `(row, block)`.
    #[inline]
    pub fn cell_version(&self, i: usize, j: usize) -> u64 {
        self.versions[i][j]
    }

    /// `‖B_j‖_F²` (exact, maintained incrementally).
    #[inline]
    pub fn block_norm_sq(&self, j: usize) -> f64 {
        self.block_normsq[j]
    }

    /// `‖M_S‖_F²`.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.block_normsq.iter().sum()
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cells
            .iter()
            .map(|row| row.iter().map(|c| c.len()).sum::<usize>())
            .sum()
    }

    /// Materialise block `j` as a CSR matrix (`|S| × block_width`).
    pub fn block_csr(&self, j: usize) -> CsrMatrix {
        let width = (self.bounds[j + 1] - self.bounds[j]) as usize;
        let mut indptr = Vec::with_capacity(self.num_rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..self.num_rows {
            for &(c, v) in &self.cells[i][j] {
                indices.push(c);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw(self.num_rows, width, indptr, indices, data)
    }

    /// Materialise the whole matrix as CSR (`|S| × n`).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.num_rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..self.num_rows {
            for j in 0..self.num_blocks() {
                let base = self.bounds[j];
                for &(c, v) in &self.cells[i][j] {
                    indices.push(base + c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw(self.num_rows, self.num_cols, indptr, indices, data)
    }
}

/// Squared Frobenius distance between two sorted sparse rows — the per-cell
/// building block of `‖D_j‖_F²` in the lazy-update rule.
pub(crate) fn sparse_row_dist_sq(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    let (mut ia, mut ib) = (0, 0);
    let mut acc = 0.0;
    while ia < a.len() && ib < b.len() {
        match a[ia].0.cmp(&b[ib].0) {
            std::cmp::Ordering::Less => {
                acc += a[ia].1 * a[ia].1;
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                acc += b[ib].1 * b[ib].1;
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                let d = a[ia].1 - b[ib].1;
                acc += d * d;
                ia += 1;
                ib += 1;
            }
        }
    }
    acc += a[ia..].iter().map(|e| e.1 * e.1).sum::<f64>();
    acc += b[ib..].iter().map(|e| e.1 * e.1).sum::<f64>();
    acc
}

/// Sparse difference `new − old` of two sorted sparse rows, zero diffs
/// omitted — the per-row delta the incremental SVD update consumes.
pub(crate) fn sparse_row_sub(new: &[(u32, f64)], old: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    let (mut ia, mut ib) = (0, 0);
    while ia < new.len() && ib < old.len() {
        match new[ia].0.cmp(&old[ib].0) {
            std::cmp::Ordering::Less => {
                out.push(new[ia]);
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((old[ib].0, -old[ib].1));
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                let d = new[ia].1 - old[ib].1;
                if d != 0.0 {
                    out.push((new[ia].0, d));
                }
                ia += 1;
                ib += 1;
            }
        }
    }
    out.extend_from_slice(&new[ia..]);
    out.extend(old[ib..].iter().map(|&(c, v)| (c, -v)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_boundaries_cover_columns() {
        let m = BlockedProximityMatrix::new(2, 100, 7);
        let mut total = 0;
        for j in 0..7 {
            let (a, b) = m.block_range(j);
            assert!(a < b);
            total += (b - a) as usize;
        }
        assert_eq!(total, 100);
        // Every column maps into a block containing it.
        for c in 0..100u32 {
            let j = m.block_of_col(c);
            let (a, b) = m.block_range(j);
            assert!(a <= c && c < b, "col {c} → block {j} [{a},{b})");
        }
    }

    #[test]
    fn set_row_splits_into_blocks() {
        let mut m = BlockedProximityMatrix::new(2, 10, 2); // blocks [0,5) [5,10)
        m.set_row(0, &[(1, 2.0), (4, 1.0), (7, 3.0)]);
        assert_eq!(m.cell(0, 0), &[(1, 2.0), (4, 1.0)]);
        assert_eq!(m.cell(0, 1), &[(2, 3.0)]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn norms_maintained_exactly() {
        let mut m = BlockedProximityMatrix::new(3, 12, 3);
        m.set_row(0, &[(0, 1.0), (5, 2.0)]);
        m.set_row(1, &[(1, 3.0), (11, 4.0)]);
        m.set_row(2, &[(6, 1.5)]);
        // Check against the CSR ground truth, per block and in total.
        for j in 0..3 {
            let want = m.block_csr(j).frobenius_norm_sq();
            assert!((m.block_norm_sq(j) - want).abs() < 1e-12, "block {j}");
        }
        // Replace a row and re-check.
        m.set_row(1, &[(1, 1.0), (6, 2.0)]);
        for j in 0..3 {
            let want = m.block_csr(j).frobenius_norm_sq();
            assert!(
                (m.block_norm_sq(j) - want).abs() < 1e-12,
                "block {j} after update"
            );
        }
        assert!((m.frobenius_norm_sq() - m.to_csr().frobenius_norm_sq()).abs() < 1e-12);
    }

    #[test]
    fn versions_bump_only_on_change() {
        let mut m = BlockedProximityMatrix::new(1, 10, 2);
        m.set_row(0, &[(0, 1.0), (7, 2.0)]);
        let v0 = m.cell_version(0, 0);
        let v1 = m.cell_version(0, 1);
        assert!(v0 > 0 && v1 > 0);
        // Same content: no bump anywhere.
        m.set_row(0, &[(0, 1.0), (7, 2.0)]);
        assert_eq!(m.cell_version(0, 0), v0);
        assert_eq!(m.cell_version(0, 1), v1);
        // Change only the second block.
        m.set_row(0, &[(0, 1.0), (8, 2.0)]);
        assert_eq!(m.cell_version(0, 0), v0, "untouched block keeps its stamp");
        assert!(m.cell_version(0, 1) > v1);
    }

    #[test]
    fn to_csr_matches_cells() {
        let mut m = BlockedProximityMatrix::new(2, 9, 3);
        m.set_row(0, &[(2, 1.0), (3, 2.0), (8, 3.0)]);
        m.set_row(1, &[(0, 4.0)]);
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 2), 1.0);
        assert_eq!(csr.get(0, 3), 2.0);
        assert_eq!(csr.get(0, 8), 3.0);
        assert_eq!(csr.get(1, 0), 4.0);
        assert_eq!(csr.nnz(), 4);
        // Block extraction agrees with column slicing of the full CSR.
        for j in 0..3 {
            let (a, b) = m.block_range(j);
            let direct = m.block_csr(j);
            let sliced = csr.slice_cols(a, b);
            assert_eq!(direct, sliced, "block {j}");
        }
    }

    #[test]
    fn sparse_row_dist_sq_cases() {
        // Disjoint supports.
        let d = sparse_row_dist_sq(&[(0, 3.0)], &[(1, 4.0)]);
        assert!((d - 25.0).abs() < 1e-12);
        // Overlapping.
        let d = sparse_row_dist_sq(&[(0, 1.0), (2, 2.0)], &[(2, 5.0)]);
        assert!((d - (1.0 + 9.0)).abs() < 1e-12);
        // Identical.
        let d = sparse_row_dist_sq(&[(1, 2.0)], &[(1, 2.0)]);
        assert_eq!(d, 0.0);
        // Both empty.
        assert_eq!(sparse_row_dist_sq(&[], &[]), 0.0);
    }

    #[test]
    fn sparse_row_sub_matches_dist() {
        type Case = (Vec<(u32, f64)>, Vec<(u32, f64)>);
        let cases: Vec<Case> = vec![
            (vec![(0, 3.0)], vec![(1, 4.0)]),
            (vec![(0, 1.0), (2, 2.0)], vec![(2, 5.0)]),
            (vec![(1, 2.0)], vec![(1, 2.0)]),
            (vec![], vec![(3, 7.0)]),
            (vec![(0, 1.0), (5, -2.0)], vec![]),
        ];
        for (new, old) in cases {
            let diff = sparse_row_sub(&new, &old);
            // Sorted, no explicit zeros, and ‖diff‖² equals the tracked
            // squared distance.
            assert!(diff.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(diff.iter().all(|&(_, v)| v != 0.0));
            let norm: f64 = diff.iter().map(|&(_, v)| v * v).sum();
            assert_eq!(norm, sparse_row_dist_sq(&new, &old));
        }
    }

    #[test]
    fn mass_balanced_boundaries_balance() {
        // All mass in the first 10 columns of 100: the cuts concentrate
        // there instead of splitting uniformly.
        let rows: Vec<Vec<(u32, f64)>> = (0..5)
            .map(|_| (0..10u32).map(|c| (c, 2.0)).collect())
            .collect();
        let bounds = BlockedProximityMatrix::mass_balanced_boundaries(100, 4, &rows);
        assert_eq!(bounds.len(), 5);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[4], 100);
        assert!(
            bounds[3] <= 10,
            "cuts should cluster in the massive region: {bounds:?}"
        );
        // Matrix built from them keeps exact norms.
        let mut m = BlockedProximityMatrix::with_boundaries(5, 100, bounds);
        for (i, r) in rows.iter().enumerate() {
            m.set_row(i, r);
        }
        for j in 0..4 {
            let want = m.block_csr(j).frobenius_norm_sq();
            assert!((m.block_norm_sq(j) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_balanced_boundaries_handle_empty_rows() {
        let bounds = BlockedProximityMatrix::mass_balanced_boundaries(12, 3, &[]);
        assert_eq!(bounds, vec![0, 4, 8, 12]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn with_boundaries_rejects_bad_cuts() {
        let _ = BlockedProximityMatrix::with_boundaries(2, 10, vec![0, 5, 5, 10]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_non_finite_values() {
        let mut m = BlockedProximityMatrix::new(1, 5, 1);
        m.set_row(0, &[(1, f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_column() {
        let mut m = BlockedProximityMatrix::new(1, 5, 1);
        m.set_row(0, &[(5, 1.0)]);
    }
}
