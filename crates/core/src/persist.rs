//! Pipeline-state persistence.
//!
//! A production deployment updates embeddings periodically (the paper:
//! "node embeddings are usually updated daily or weekly"); between runs,
//! the PPR states, proximity matrix, and Tree-SVD caches must survive a
//! restart — rebuilding them from the raw graph costs exactly the static
//! pass the dynamic algorithm exists to avoid. The whole
//! [`TreeSvdPipeline`](crate::TreeSvdPipeline) serialises losslessly: a
//! reloaded pipeline produces bit-identical embeddings and continues
//! incremental updates from where it stopped.

use crate::pipeline::TreeSvdPipeline;
use std::io::Write;
use std::path::Path;
use tsvd_rt::json::{FromJson, Json, JsonError, ToJson};

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Serialisation/deserialisation failure (corrupt or mismatched file).
    Codec(JsonError),
    /// A partial write or failed rename during an atomic replace. The
    /// destination file was never touched; at worst a `.tmp` sibling may
    /// be left behind (and is removed on a best-effort basis).
    Atomic {
        /// Which step failed: `"write"` (create/write/fsync of the temp
        /// file) or `"rename"` (the final rename over the destination).
        stage: &'static str,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::Atomic { stage, source } => {
                write!(f, "atomic replace failed at {stage}: {source}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<JsonError> for PersistError {
    fn from(e: JsonError) -> Self {
        PersistError::Codec(e)
    }
}

/// Write `bytes` to `path` atomically: write + fsync a `.tmp` sibling,
/// then rename it over the destination, then fsync the directory. A crash
/// at any point leaves either the old file or the new file, never a torn
/// mix. Failures surface as [`PersistError::Atomic`]; single-writer only
/// (concurrent writers to one `path` race on the same temp name).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let file_name = path.file_name().ok_or_else(|| PersistError::Atomic {
        stage: "write",
        source: std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("path has no file name: {}", path.display()),
        ),
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let tmp = {
        let mut name = file_name.to_os_string();
        name.push(".tmp");
        dir.join(name)
    };
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(source) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Atomic {
            stage: "write",
            source,
        });
    }
    if let Err(source) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Atomic {
            stage: "rename",
            source,
        });
    }
    // Make the rename itself durable. Directory fsync is best-effort: it
    // can fail on filesystems that refuse to open directories for sync,
    // which does not affect the data already fsync'd above.
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

impl TreeSvdPipeline {
    /// Serialise the full pipeline state to `path` (JSON), atomically: a
    /// crash mid-save leaves the previous checkpoint intact rather than a
    /// torn file.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        atomic_write(path, self.to_json().to_string().as_bytes())
    }

    /// Restore a pipeline previously written with [`TreeSvdPipeline::save`].
    pub fn load(path: &Path) -> Result<TreeSvdPipeline, PersistError> {
        let text = std::fs::read_to_string(path)?;
        Ok(TreeSvdPipeline::from_json(&Json::parse(&text)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeSvdConfig;
    use tsvd_graph::{DynGraph, EdgeEvent};
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn save_load_round_trips_and_continues_updates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = random_graph(&mut rng, 120, 500);
        let sources: Vec<u32> = (0..10).collect();
        let cfg = TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            ..Default::default()
        };
        let mut pipe = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), cfg);
        // Mutate once so the caches are non-trivial.
        pipe.update(
            &mut g,
            &[EdgeEvent::insert(0, 119), EdgeEvent::insert(1, 118)],
        );

        let dir = std::env::temp_dir().join(format!("tsvd_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.json");
        pipe.save(&path).expect("save");
        let mut restored = TreeSvdPipeline::load(&path).expect("load");
        std::fs::remove_dir_all(&dir).ok();

        // Identical embedding after reload.
        let diff = pipe
            .embedding()
            .left()
            .sub(&restored.embedding().left())
            .max_abs();
        assert_eq!(diff, 0.0, "reload must be lossless");

        // Both continue identically through the same future events.
        let mut g2 = g.clone();
        let events: Vec<EdgeEvent> = (0..15)
            .map(|i| EdgeEvent::insert(i as u32, (i + 60) as u32))
            .collect();
        let s1 = pipe.update(&mut g, &events);
        let s2 = restored.update(&mut g2, &events);
        assert_eq!(s1, s2, "update stats diverged after reload");
        let diff = pipe
            .embedding()
            .left()
            .sub(&restored.embedding().left())
            .max_abs();
        assert_eq!(diff, 0.0, "post-update embeddings diverged");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("tsvd_garbage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, b"{not json at all").unwrap();
        let err = TreeSvdPipeline::load(&path).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, PersistError::Codec(_)));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = TreeSvdPipeline::load(Path::new("/nonexistent/tsvd.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn atomic_write_replaces_without_leaving_tmp() {
        let dir = std::env::temp_dir().join(format!("tsvd_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        atomic_write(&path, b"old").unwrap();
        atomic_write(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        assert!(
            !dir.join("state.json.tmp").exists(),
            "temp file must not survive a successful replace"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_failure_is_typed_and_leaves_target_untouched() {
        // The parent directory does not exist, so the temp-file create fails
        // before anything could touch the (equally nonexistent) target.
        let err = atomic_write(Path::new("/nonexistent/tsvd/state.json"), b"x").unwrap_err();
        assert!(matches!(err, PersistError::Atomic { stage: "write", .. }));
    }
}
