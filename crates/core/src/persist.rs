//! Pipeline-state persistence.
//!
//! A production deployment updates embeddings periodically (the paper:
//! "node embeddings are usually updated daily or weekly"); between runs,
//! the PPR states, proximity matrix, and Tree-SVD caches must survive a
//! restart — rebuilding them from the raw graph costs exactly the static
//! pass the dynamic algorithm exists to avoid. The whole
//! [`TreeSvdPipeline`](crate::TreeSvdPipeline) serialises losslessly: a
//! reloaded pipeline produces bit-identical embeddings and continues
//! incremental updates from where it stopped.

use crate::pipeline::TreeSvdPipeline;
use std::path::Path;
use tsvd_rt::json::{FromJson, Json, JsonError, ToJson};

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Serialisation/deserialisation failure (corrupt or mismatched file).
    Codec(JsonError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<JsonError> for PersistError {
    fn from(e: JsonError) -> Self {
        PersistError::Codec(e)
    }
}

impl TreeSvdPipeline {
    /// Serialise the full pipeline state to `path` (JSON).
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        std::fs::write(path, self.to_json().to_string())?;
        Ok(())
    }

    /// Restore a pipeline previously written with [`TreeSvdPipeline::save`].
    pub fn load(path: &Path) -> Result<TreeSvdPipeline, PersistError> {
        let text = std::fs::read_to_string(path)?;
        Ok(TreeSvdPipeline::from_json(&Json::parse(&text)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeSvdConfig;
    use tsvd_graph::{DynGraph, EdgeEvent};
    use tsvd_ppr::PprConfig;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn save_load_round_trips_and_continues_updates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = random_graph(&mut rng, 120, 500);
        let sources: Vec<u32> = (0..10).collect();
        let cfg = TreeSvdConfig {
            dim: 8,
            branching: 2,
            num_blocks: 4,
            ..Default::default()
        };
        let mut pipe = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), cfg);
        // Mutate once so the caches are non-trivial.
        pipe.update(
            &mut g,
            &[EdgeEvent::insert(0, 119), EdgeEvent::insert(1, 118)],
        );

        let dir = std::env::temp_dir().join(format!("tsvd_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.json");
        pipe.save(&path).expect("save");
        let mut restored = TreeSvdPipeline::load(&path).expect("load");
        std::fs::remove_dir_all(&dir).ok();

        // Identical embedding after reload.
        let diff = pipe
            .embedding()
            .left()
            .sub(&restored.embedding().left())
            .max_abs();
        assert_eq!(diff, 0.0, "reload must be lossless");

        // Both continue identically through the same future events.
        let mut g2 = g.clone();
        let events: Vec<EdgeEvent> = (0..15)
            .map(|i| EdgeEvent::insert(i as u32, (i + 60) as u32))
            .collect();
        let s1 = pipe.update(&mut g, &events);
        let s2 = restored.update(&mut g2, &events);
        assert_eq!(s1, s2, "update stats diverged after reload");
        let diff = pipe
            .embedding()
            .left()
            .sub(&restored.embedding().left())
            .max_abs();
        assert_eq!(diff, 0.0, "post-update embeddings diverged");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("tsvd_garbage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, b"{not json at all").unwrap();
        let err = TreeSvdPipeline::load(&path).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, PersistError::Codec(_)));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = TreeSvdPipeline::load(Path::new("/nonexistent/tsvd.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
