//! Dynamic Forward-Push (Algorithm 2, after Zhang et al. 2016).
//!
//! Each edge event triggers an O(1) local adjustment of the estimate/residue
//! pair that *exactly* restores the push invariant
//! `π_s = p_s + Σ_v r_s(v)·π_v` with respect to the post-event graph; a
//! single re-push at the end of the batch then drives residues back under
//! `r_max` (both signs). Total cost `O(|Δ| + 1/r_max)` per source.
//!
//! The paper's pseudocode assumes the updated endpoint has non-zero degree
//! on both sides of the event. Degree transitions through zero interact with
//! dangling absorption (a walk at an out-degree-0 node stops with
//! probability 1 instead of α), and this module handles them exactly:
//!
//! * insert onto a previously dangling `u`: the whole estimate `p(u)` was
//!   absorbed mass, of which only `α` now stops — `p'(u) = α·p(u)`,
//!   `r(v) += (1−α)·p(u)`;
//! * delete leaving `u` dangling: all arriving mass `p(u)/α` now stops —
//!   `p'(u) = p(u)/α`, `r(v) −= (1−α)·p(u)/α`.
//!
//! Both are verified against exact PPR in the property tests below.

use crate::push::forward_push;
use crate::state::PprState;
use tsvd_graph::{Direction, DynGraph, EdgeEvent, EventKind};

/// An edge event annotated with the updated endpoint's degree *after* the
/// event, in the push direction it will be applied to.
///
/// Recording degrees at apply time lets per-source adjustments replay a whole
/// batch without consulting (or locking) the evolving graph — the graph is
/// mutated once, then sources are adjusted in parallel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedEvent {
    /// Updated endpoint (whose out-distribution changed in this direction).
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// Insert or delete.
    pub kind: EventKind,
    /// `deg(u)` in the push direction, after the event.
    pub deg_after: usize,
}

tsvd_rt::impl_json_struct!(RecordedEvent {
    u,
    v,
    kind,
    deg_after
});

/// Apply `events` to `g`, producing per-direction recorded event lists:
/// `.0` replays on forward-direction states, `.1` on reverse-direction
/// states. Events that do not change the graph (duplicate inserts, missing
/// deletes) are dropped.
pub fn record_events(
    g: &mut DynGraph,
    events: &[EdgeEvent],
) -> (Vec<RecordedEvent>, Vec<RecordedEvent>) {
    let mut fwd = Vec::with_capacity(events.len());
    let mut bwd = Vec::with_capacity(events.len());
    for e in events {
        if !g.apply_event(e) {
            continue;
        }
        fwd.push(RecordedEvent {
            u: e.u,
            v: e.v,
            kind: e.kind,
            deg_after: g.out_degree(e.u),
        });
        // On the reverse graph the edge is (v, u) and the updated endpoint
        // is v, whose reverse-direction degree is its in-degree.
        bwd.push(RecordedEvent {
            u: e.v,
            v: e.u,
            kind: e.kind,
            deg_after: g.in_degree(e.v),
        });
    }
    (fwd, bwd)
}

/// The O(1) invariant-restoring adjustment for one event (Algorithm 2
/// lines 1–7, extended with the exact zero-degree cases).
pub fn adjust_for_event(state: &mut PprState, ev: &RecordedEvent, alpha: f64) {
    let p_u = state.estimate(ev.u);
    if p_u == 0.0 {
        // Every correction term is proportional to p_s(u).
        return;
    }
    match ev.kind {
        EventKind::Insert => {
            let d_new = ev.deg_after;
            debug_assert!(d_new >= 1);
            if d_new == 1 {
                // u was dangling: absorbed mass p(u) now stops w.p. α only.
                state.scale_p(ev.u, alpha);
                state.add_r(ev.v, (1.0 - alpha) * p_u);
            } else {
                let d_old = (d_new - 1) as f64;
                state.scale_p(ev.u, d_new as f64 / d_old);
                let p = state.estimate(ev.u);
                state.add_r(ev.u, -p / (d_new as f64 * alpha));
                state.add_r(ev.v, (1.0 - alpha) * p / (d_new as f64 * alpha));
            }
        }
        EventKind::Delete => {
            let d_new = ev.deg_after;
            if d_new == 0 {
                // u became dangling: arriving mass p(u)/α now stops w.p. 1.
                state.scale_p(ev.u, 1.0 / alpha);
                state.add_r(ev.v, -(1.0 - alpha) * p_u / alpha);
            } else {
                state.scale_p(ev.u, d_new as f64 / (d_new + 1) as f64);
                let p = state.estimate(ev.u);
                state.add_r(ev.u, p / (d_new as f64 * alpha));
                state.add_r(ev.v, -(1.0 - alpha) * p / (d_new as f64 * alpha));
            }
        }
    }
}

/// Full dynamic update of one source state: replay the recorded batch, then
/// re-push on the updated graph (Algorithm 2 lines 8–11).
pub fn dynamic_update(
    g_after: &DynGraph,
    dir: Direction,
    alpha: f64,
    r_max: f64,
    state: &mut PprState,
    recorded: &[RecordedEvent],
) {
    for ev in recorded {
        adjust_for_event(state, ev, alpha);
    }
    forward_push(g_after, dir, alpha, r_max, state);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_ppr_row;
    use tsvd_rt::rng::SliceRandom;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    const ALPHA: f64 = 0.2;

    /// Check the push invariant of `state` against exact PPR on `g`.
    fn invariant_error(g: &DynGraph, dir: Direction, state: &PprState) -> f64 {
        let n = g.num_nodes();
        let pis: Vec<Vec<f64>> = (0..n as u32)
            .map(|v| exact_ppr_row(g, dir, v, ALPHA, 1e-13))
            .collect();
        let truth = &pis[state.source as usize];
        let mut worst = 0.0_f64;
        for x in 0..n {
            let mut rhs = state.estimate(x as u32);
            for (v, rv) in state.residues() {
                rhs += rv * pis[v as usize][x];
            }
            worst = worst.max((rhs - truth[x]).abs());
        }
        worst
    }

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        let mut tries = 0;
        while g.num_edges() < m && tries < 20 * m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            g.insert_edge(u, v);
            tries += 1;
        }
        g
    }

    #[test]
    fn insert_restores_invariant_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let mut g = random_graph(&mut rng, 12, 24);
            let s = rng.gen_range(0..12) as u32;
            let mut st = PprState::new(s);
            forward_push(&g, Direction::Out, ALPHA, 1e-3, &mut st);
            // Random insert (possibly onto a dangling node).
            let e = loop {
                let u = rng.gen_range(0..12) as u32;
                let v = rng.gen_range(0..12) as u32;
                if !g.has_edge(u, v) {
                    break EdgeEvent::insert(u, v);
                }
            };
            let (fwd, _) = record_events(&mut g, &[e]);
            for ev in &fwd {
                adjust_for_event(&mut st, ev, ALPHA);
            }
            let err = invariant_error(&g, Direction::Out, &st);
            assert!(
                err < 1e-9,
                "trial {trial}: invariant error {err} after insert"
            );
        }
    }

    #[test]
    fn delete_restores_invariant_exactly() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..20 {
            let mut g = random_graph(&mut rng, 10, 25);
            let s = rng.gen_range(0..10) as u32;
            let mut st = PprState::new(s);
            forward_push(&g, Direction::Out, ALPHA, 1e-3, &mut st);
            let edges: Vec<_> = g.edges().collect();
            let &(u, v) = edges.choose(&mut rng).unwrap();
            let (fwd, _) = record_events(&mut g, &[EdgeEvent::delete(u, v)]);
            for ev in &fwd {
                adjust_for_event(&mut st, ev, ALPHA);
            }
            let err = invariant_error(&g, Direction::Out, &st);
            assert!(
                err < 1e-9,
                "trial {trial}: invariant error {err} after delete"
            );
        }
    }

    #[test]
    fn batch_update_matches_fresh_push_accuracy() {
        let mut rng = StdRng::seed_from_u64(17);
        let r_max = 1e-5;
        let mut g = random_graph(&mut rng, 30, 90);
        let s = 3u32;
        let mut st = PprState::new(s);
        forward_push(&g, Direction::Out, ALPHA, r_max, &mut st);
        // A mixed batch of 15 events.
        let mut events = Vec::new();
        for _ in 0..15 {
            if rng.gen_bool(0.7) {
                let u = rng.gen_range(0..30) as u32;
                let v = rng.gen_range(0..30) as u32;
                events.push(EdgeEvent::insert(u, v));
            } else if g.num_edges() > 0 {
                let edges: Vec<_> = g.edges().collect();
                let &(u, v) = edges.choose(&mut rng).unwrap();
                events.push(EdgeEvent::delete(u, v));
            }
        }
        let (fwd, _) = record_events(&mut g, &events);
        dynamic_update(&g, Direction::Out, ALPHA, r_max, &mut st, &fwd);
        // Compare the dynamic estimate to exact PPR on the final graph:
        // error per node is bounded by total-residue × max-π ≤ residue mass.
        let truth = exact_ppr_row(&g, Direction::Out, s, ALPHA, 1e-13);
        let worst = (0..30u32)
            .map(|x| (st.estimate(x) - truth[x as usize]).abs())
            .fold(0.0_f64, f64::max);
        assert!(
            worst <= st.residue_mass() + 1e-9,
            "estimate error {worst} exceeds residue bound {}",
            st.residue_mass()
        );
        // And the invariant itself holds exactly.
        let err = invariant_error(&g, Direction::Out, &st);
        assert!(err < 1e-8, "invariant error {err}");
    }

    #[test]
    fn reverse_direction_recording() {
        let mut g = DynGraph::with_nodes(4);
        g.insert_edge(0, 1);
        let mut st = PprState::new(1);
        forward_push(&g, Direction::In, ALPHA, 1e-4, &mut st);
        // Insert 2→1: on the reverse graph this is 1→2, updated endpoint 1.
        let (_, bwd) = record_events(&mut g, &[EdgeEvent::insert(2, 1)]);
        assert_eq!(bwd.len(), 1);
        assert_eq!(bwd[0].u, 1);
        assert_eq!(bwd[0].v, 2);
        assert_eq!(bwd[0].deg_after, 2, "in-degree of node 1 after insert");
        for ev in &bwd {
            adjust_for_event(&mut st, ev, ALPHA);
        }
        let err = invariant_error(&g, Direction::In, &st);
        assert!(err < 1e-9, "reverse invariant error {err}");
    }

    #[test]
    fn noop_events_are_dropped() {
        let mut g = DynGraph::with_nodes(3);
        g.insert_edge(0, 1);
        let (fwd, bwd) = record_events(&mut g, &[EdgeEvent::insert(0, 1), EdgeEvent::delete(1, 2)]);
        assert!(fwd.is_empty());
        assert!(bwd.is_empty());
    }

    #[test]
    fn dangling_transitions_exact() {
        // Purpose-built to hit both zero-degree branches with p(u) > 0.
        let mut g = DynGraph::with_nodes(3);
        g.insert_edge(0, 1); // 1 dangling, accumulates absorbed mass
        let mut st = PprState::new(0);
        forward_push(&g, Direction::Out, ALPHA, 1e-9, &mut st);
        assert!(st.estimate(1) > 0.5, "node 1 absorbed the bulk of the walk");
        // Insert 1→2 (dangling → degree 1).
        let (fwd, _) = record_events(&mut g, &[EdgeEvent::insert(1, 2)]);
        for ev in &fwd {
            adjust_for_event(&mut st, ev, ALPHA);
        }
        assert!(invariant_error(&g, Direction::Out, &st) < 1e-9);
        // Delete it again (degree 1 → dangling).
        let (fwd, _) = record_events(&mut g, &[EdgeEvent::delete(1, 2)]);
        for ev in &fwd {
            adjust_for_event(&mut st, ev, ALPHA);
        }
        assert!(invariant_error(&g, Direction::Out, &st) < 1e-9);
    }
}
