//! # tsvd-ppr
//!
//! Personalized PageRank engine for the Tree-SVD reproduction.
//!
//! * [`forward_push`] — the classic local-push algorithm of Andersen et al.
//!   (Algorithm 1 of the paper): maintains an estimate vector `p_s` and a
//!   residue vector `r_s` with the invariant
//!   `π_s(u) = p_s(u) + Σ_v r_s(v)·π_v(u)`;
//! * [`dynamic`] — the incremental update of Zhang et al. (Algorithm 2):
//!   O(1) residue/estimate adjustments per edge event followed by a
//!   re-push, `O(|Δ| + 1/r_max)` per source;
//! * [`SubsetPpr`] — maintains forward *and* reverse-graph PPR for every
//!   source in the subset `S` across snapshots, and materialises the
//!   STRAP-style log-scaled proximity rows
//!   `M_S(s,v) = log(p_s(v)/r_max + pᵀ_s(v)/r_max)`;
//! * [`exact`] — dense power-iteration PPR used as ground truth in tests;
//! * [`monte_carlo`] — α-decay random-walk sampling, the third classic
//!   estimator family, used as an accuracy yardstick.
//!
//! Dangling nodes (out-degree 0 in the push direction) absorb their residue:
//! an α-decay walk with nowhere to go terminates where it stands. This is
//! equivalent to the usual implicit-self-loop convention and keeps the push
//! invariant exact; see `push`.

pub mod dynamic;
pub mod exact;
pub mod monte_carlo;
mod proximity;
mod push;
mod state;
mod subset;

pub use proximity::proximity_row;
pub use push::{forward_push, forward_push_fresh, FreshPushWorkspace};
pub use state::PprState;
pub use subset::{PprConfig, RecordedBatch, SubsetPpr};
