//! Subset PPR maintenance: forward + reverse push states for every source
//! in `S`, kept current across snapshots.

use crate::dynamic::{dynamic_update, record_events, RecordedEvent};
use crate::proximity::proximity_row;
use crate::push::FreshPushWorkspace;
use crate::state::PprState;
use tsvd_graph::{Direction, DynGraph, EdgeEvent};
use tsvd_rt::pool::{par_for_each_mut, par_map, par_map_init};

/// A batch of edge events already applied to the graph, recorded for replay
/// on per-source PPR states — the graph-mutation half of
/// [`SubsetPpr::update`], split out so *several* `SubsetPpr` instances
/// (e.g. the row shards of a serving front) can share one graph mutation
/// and then apply the identical recorded batch each, giving bitwise the
/// same states as a single unsharded update.
#[derive(Debug, Clone)]
pub struct RecordedBatch {
    fwd: Vec<RecordedEvent>,
    bwd: Vec<RecordedEvent>,
}

impl RecordedBatch {
    /// Apply `events` to `g` and record the per-direction replay lists.
    /// Events that do not change the graph (duplicate inserts, deletes of
    /// absent edges) are dropped.
    pub fn record(g: &mut DynGraph, events: &[EdgeEvent]) -> Self {
        let (fwd, bwd) = record_events(g, events);
        RecordedBatch { fwd, bwd }
    }

    /// `true` when no event changed the graph (replay is a no-op).
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Number of events that actually changed the graph.
    pub fn num_effective(&self) -> usize {
        self.fwd.len()
    }
}

/// PPR parameters (Table 2): decay factor `α` and push threshold `r_max`.
#[derive(Debug, Clone, Copy)]
pub struct PprConfig {
    /// Stop probability of the α-decay walk. The literature default is 0.15–0.2.
    pub alpha: f64,
    /// Push threshold; smaller is more accurate and more expensive
    /// (`O(1/r_max)` per source).
    pub r_max: f64,
}

tsvd_rt::impl_json_struct!(PprConfig { alpha, r_max });

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        }
    }
}

/// Maintains approximate PPR for a fixed subset `S` of sources, in both
/// graph directions, across graph updates.
///
/// This is the substrate under every proximity-matrix method in the paper:
/// `build` is the static Forward-Push pass (used by Tree-SVD-S,
/// Subset-STRAP, DynPPE, FREDE), `update` is the incremental Algorithm-2
/// pass (used by dynamic Tree-SVD and DynPPE).
///
/// # Examples
///
/// ```
/// use tsvd_graph::{DynGraph, EdgeEvent};
/// use tsvd_ppr::{PprConfig, SubsetPpr};
///
/// let mut g = DynGraph::with_nodes(4);
/// g.insert_edge(0, 1);
/// g.insert_edge(1, 2);
/// let mut ppr = SubsetPpr::build(&g, &[0], PprConfig { alpha: 0.2, r_max: 1e-6 });
/// let before = ppr.forward_state(0).estimate(2);
/// ppr.update(&mut g, &[EdgeEvent::insert(0, 3)]);
/// // Node 0 now splits its walk mass: node 2 becomes less likely.
/// assert!(ppr.forward_state(0).estimate(2) < before);
/// ```
#[derive(Debug, Clone)]
pub struct SubsetPpr {
    cfg: PprConfig,
    sources: Vec<u32>,
    fwd: Vec<PprState>,
    bwd: Vec<PprState>,
}

tsvd_rt::impl_json_struct!(SubsetPpr {
    cfg,
    sources,
    fwd,
    bwd
});

impl SubsetPpr {
    /// Run a fresh Forward-Push (both directions) for every source on `g`.
    /// Pushes are parallelised over sources through the shared worker pool,
    /// one reusable dense workspace per participating thread.
    pub fn build(g: &DynGraph, sources: &[u32], cfg: PprConfig) -> Self {
        let total = sources.len() * 2;
        let n = g.num_nodes();
        let mut states: Vec<PprState> = par_map_init(
            total,
            || FreshPushWorkspace::new(n),
            |ws, i| {
                let (src, dir) = if i < sources.len() {
                    (sources[i], Direction::Out)
                } else {
                    (sources[i - sources.len()], Direction::In)
                };
                ws.run(g, dir, cfg.alpha, cfg.r_max, src)
            },
        );
        let bwd = states.split_off(sources.len());
        SubsetPpr {
            cfg,
            sources: sources.to_vec(),
            fwd: states,
            bwd,
        }
    }

    /// The PPR configuration.
    #[inline]
    pub fn config(&self) -> PprConfig {
        self.cfg
    }

    /// The subset `S`, in row order.
    #[inline]
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Number of sources `|S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// `true` if the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Forward-direction state of row `idx`.
    pub fn forward_state(&self, idx: usize) -> &PprState {
        &self.fwd[idx]
    }

    /// Reverse-direction state of row `idx`.
    pub fn backward_state(&self, idx: usize) -> &PprState {
        &self.bwd[idx]
    }

    /// Apply an event batch: mutates `g` (the shared graph), replays the
    /// per-event adjustments on every source state, and re-pushes.
    /// Sources are processed in parallel; cost per source is
    /// `O(|Δ| + 1/r_max)` (Algorithm 2).
    pub fn update(&mut self, g: &mut DynGraph, events: &[EdgeEvent]) {
        let rec = RecordedBatch::record(g, events);
        self.apply_recorded(g, &rec);
    }

    /// Replay an already-recorded batch (see [`RecordedBatch::record`]) on
    /// every source state. `g` must be the graph the batch was recorded
    /// against, *after* the recording mutated it. Per-source work is
    /// independent and bitwise-deterministic, so splitting `S` across
    /// several `SubsetPpr` instances and calling this on each yields
    /// exactly the states a single [`SubsetPpr::update`] would.
    pub fn apply_recorded(&mut self, g: &DynGraph, rec: &RecordedBatch) {
        if rec.is_empty() {
            return;
        }
        let cfg = self.cfg;
        par_for_each_mut(&mut self.fwd, |st| {
            dynamic_update(g, Direction::Out, cfg.alpha, cfg.r_max, st, &rec.fwd);
        });
        par_for_each_mut(&mut self.bwd, |st| {
            dynamic_update(g, Direction::In, cfg.alpha, cfg.r_max, st, &rec.bwd);
        });
    }

    /// Row indices whose proximity row may have changed since the flags were
    /// last cleared. Clears the flags.
    pub fn take_dirty_rows(&mut self) -> Vec<usize> {
        let mut dirty = Vec::new();
        for i in 0..self.sources.len() {
            let f = self.fwd[i].clear_dirty();
            let b = self.bwd[i].clear_dirty();
            if f || b {
                dirty.push(i);
            }
        }
        dirty
    }

    /// The log-scaled proximity row of source `idx`
    /// (`M_S(s,·)`, sorted sparse entries).
    pub fn proximity_row(&self, idx: usize) -> Vec<(u32, f64)> {
        proximity_row(&self.fwd[idx], &self.bwd[idx], self.cfg.r_max)
    }

    /// All proximity rows (parallel). Row order matches `sources()`.
    pub fn proximity_rows(&self) -> Vec<Vec<(u32, f64)>> {
        par_map(self.sources.len(), |i| self.proximity_row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn build_populates_both_directions() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_graph(&mut rng, 50, 200);
        let cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        };
        let ppr = SubsetPpr::build(&g, &[0, 7, 13], cfg);
        assert_eq!(ppr.len(), 3);
        for i in 0..3 {
            assert!(ppr.forward_state(i).estimate_mass() > 0.5);
            assert!(ppr.backward_state(i).estimate_mass() > 0.0);
            assert_eq!(ppr.forward_state(i).source, ppr.sources()[i]);
        }
    }

    #[test]
    fn dynamic_update_matches_fresh_build() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = random_graph(&mut rng, 40, 120);
        let cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-5,
        };
        let sources = vec![1u32, 5, 9];
        let mut ppr = SubsetPpr::build(&g, &sources, cfg);
        // Apply a batch of events.
        let mut events = Vec::new();
        for _ in 0..20 {
            let u = rng.gen_range(0..40) as u32;
            let v = rng.gen_range(0..40) as u32;
            if u != v {
                events.push(if rng.gen_bool(0.8) {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                });
            }
        }
        ppr.update(&mut g, &events);
        // A from-scratch build on the final graph must agree closely:
        // both carry ≤ residue-mass error against the same exact PPR.
        let fresh = SubsetPpr::build(&g, &sources, cfg);
        for i in 0..sources.len() {
            let dyn_st = ppr.forward_state(i);
            let fresh_st = fresh.forward_state(i);
            let bound = dyn_st.residue_mass() + fresh_st.residue_mass() + 1e-9;
            let keys: Vec<u32> = dyn_st
                .estimates()
                .map(|e| e.0)
                .chain(fresh_st.estimates().map(|e| e.0))
                .collect();
            for k in keys {
                let d = (dyn_st.estimate(k) - fresh_st.estimate(k)).abs();
                assert!(d <= bound, "source {i} node {k}: diff {d} > bound {bound}");
            }
        }
    }

    #[test]
    fn dirty_rows_reported_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = random_graph(&mut rng, 30, 90);
        let cfg = PprConfig::default();
        let mut ppr = SubsetPpr::build(&g, &[2, 4], cfg);
        let first = ppr.take_dirty_rows();
        assert_eq!(first, vec![0, 1], "fresh build dirties everything");
        assert!(ppr.take_dirty_rows().is_empty());
        ppr.update(&mut g, &[EdgeEvent::insert(2, 29)]);
        let dirty = ppr.take_dirty_rows();
        assert!(dirty.contains(&0), "source 2's own row must change");
    }

    #[test]
    fn empty_event_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = random_graph(&mut rng, 20, 40);
        let mut ppr = SubsetPpr::build(&g, &[0], PprConfig::default());
        ppr.take_dirty_rows();
        ppr.update(&mut g, &[]);
        assert!(ppr.take_dirty_rows().is_empty());
    }

    #[test]
    fn sharded_apply_recorded_bitwise_matches_unsharded_update() {
        let mut rng = StdRng::seed_from_u64(21);
        let g0 = random_graph(&mut rng, 70, 280);
        let cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        };
        let sources: Vec<u32> = (0..12).collect();
        let events: Vec<EdgeEvent> = (0..25)
            .map(|_| {
                let u = rng.gen_range(0..70) as u32;
                let v = rng.gen_range(0..70) as u32;
                if rng.gen_bool(0.8) {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                }
            })
            .filter(|e| e.u != e.v)
            .collect();

        // Reference: one SubsetPpr over the full subset.
        let mut g = g0.clone();
        let mut whole = SubsetPpr::build(&g, &sources, cfg);
        whole.update(&mut g, &events);

        // Sharded: three row-range replicas sharing one graph mutation.
        let mut g2 = g0.clone();
        let mut shards: Vec<SubsetPpr> = sources
            .chunks(5)
            .map(|chunk| SubsetPpr::build(&g2, chunk, cfg))
            .collect();
        let rec = RecordedBatch::record(&mut g2, &events);
        assert!(!rec.is_empty());
        assert!(rec.num_effective() <= events.len());
        for sh in &mut shards {
            sh.apply_recorded(&g2, &rec);
        }

        // Proximity rows must agree bitwise, row by row.
        let mut row = 0usize;
        for sh in &shards {
            for local in 0..sh.len() {
                assert_eq!(
                    whole.proximity_row(row),
                    sh.proximity_row(local),
                    "row {row} diverged between sharded and unsharded update"
                );
                row += 1;
            }
        }
        assert_eq!(row, sources.len());
    }

    #[test]
    fn proximity_rows_sorted_and_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_graph(&mut rng, 60, 240);
        let ppr = SubsetPpr::build(
            &g,
            &[0, 1, 2, 3],
            PprConfig {
                alpha: 0.2,
                r_max: 1e-3,
            },
        );
        for row in ppr.proximity_rows() {
            assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(row.iter().all(|e| e.1 > 0.0));
        }
    }
}
