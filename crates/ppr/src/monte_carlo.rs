//! Monte-Carlo PPR estimation by α-decay random-walk sampling.
//!
//! The third classic PPR estimator family (next to local push and power
//! iteration): simulate `w` walks from the source, each terminating at every
//! step with probability `α` (and immediately at dangling nodes); the
//! empirical distribution of termination nodes estimates `π_s`. Unbiased,
//! with additive error `O(sqrt(log n / w))` per entry — used here as an
//! accuracy yardstick for the push engine and as the estimator several
//! embedding papers (e.g. the random-walk baselines in §5) build on.

use crate::state::PprState;
use std::collections::HashMap;
use tsvd_graph::{Direction, DynGraph};
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

/// Monte-Carlo PPR parameters.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Walk termination probability `α` (must match the push engine's to be
    /// comparable).
    pub alpha: f64,
    /// Number of walks to simulate.
    pub num_walks: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Estimate `π_source(·)` from `cfg.num_walks` simulated α-decay walks.
/// Returns a [`PprState`] whose estimates are the empirical termination
/// frequencies (the residue vector is empty — there is nothing left to
/// push).
pub fn monte_carlo_ppr(
    g: &DynGraph,
    dir: Direction,
    source: u32,
    cfg: &MonteCarloConfig,
) -> PprState {
    assert!(cfg.alpha > 0.0 && cfg.alpha < 1.0, "alpha must be in (0,1)");
    assert!(cfg.num_walks > 0, "need at least one walk");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut hits: HashMap<u32, u64> = HashMap::new();
    for _ in 0..cfg.num_walks {
        let mut cur = source;
        loop {
            let nbrs = g.neighbors(cur, dir);
            if nbrs.is_empty() || rng.gen_bool(cfg.alpha) {
                break; // dangling absorption or α-termination
            }
            cur = nbrs[rng.gen_range(0..nbrs.len())];
        }
        *hits.entry(cur).or_insert(0) += 1;
    }
    let mut state = PprState::new(source);
    state.take_r(source); // walks fully account for the unit mass
    let inv = 1.0 / cfg.num_walks as f64;
    let mut entries: Vec<(u32, u64)> = hits.into_iter().collect();
    entries.sort_unstable_by_key(|e| e.0); // deterministic accumulation
    for (node, count) in entries {
        state.add_p(node, count as f64 * inv);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_ppr_row;
    use crate::push::forward_push_fresh;

    fn test_graph() -> DynGraph {
        let mut g = DynGraph::with_nodes(12);
        for u in 0..12u32 {
            g.insert_edge(u, (u + 1) % 12);
            g.insert_edge(u, (u + 5) % 12);
        }
        g.insert_edge(3, 9);
        g
    }

    #[test]
    fn converges_to_exact_ppr() {
        let g = test_graph();
        let cfg = MonteCarloConfig {
            alpha: 0.2,
            num_walks: 200_000,
            seed: 7,
        };
        let st = monte_carlo_ppr(&g, Direction::Out, 0, &cfg);
        let exact = exact_ppr_row(&g, Direction::Out, 0, 0.2, 1e-13);
        for u in 0..12u32 {
            let err = (st.estimate(u) - exact[u as usize]).abs();
            assert!(
                err < 5e-3,
                "node {u}: MC {} vs exact {}",
                st.estimate(u),
                exact[u as usize]
            );
        }
    }

    #[test]
    fn mass_is_exactly_one() {
        let g = test_graph();
        let cfg = MonteCarloConfig {
            alpha: 0.3,
            num_walks: 1000,
            seed: 1,
        };
        let st = monte_carlo_ppr(&g, Direction::Out, 2, &cfg);
        assert!((st.estimate_mass() - 1.0).abs() < 1e-12);
        assert_eq!(st.residue_mass(), 0.0, "MC leaves no residue");
    }

    #[test]
    fn agrees_with_push_engine() {
        // Push and MC estimate the same quantity: entrywise difference is
        // bounded by push residual + MC sampling noise.
        let g = test_graph();
        let push = forward_push_fresh(&g, Direction::Out, 0.2, 1e-7, 4);
        let mc = monte_carlo_ppr(
            &g,
            Direction::Out,
            4,
            &MonteCarloConfig {
                alpha: 0.2,
                num_walks: 100_000,
                seed: 3,
            },
        );
        for u in 0..12u32 {
            let d = (push.estimate(u) - mc.estimate(u)).abs();
            assert!(
                d < 8e-3,
                "node {u}: push {} vs MC {}",
                push.estimate(u),
                mc.estimate(u)
            );
        }
    }

    #[test]
    fn dangling_source_terminates_immediately() {
        let mut g = DynGraph::with_nodes(3);
        g.insert_edge(1, 2); // node 0 dangling
        let st = monte_carlo_ppr(
            &g,
            Direction::Out,
            0,
            &MonteCarloConfig {
                alpha: 0.2,
                num_walks: 100,
                seed: 5,
            },
        );
        assert_eq!(st.estimate(0), 1.0, "all walks stop at the dangling source");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = test_graph();
        let cfg = MonteCarloConfig {
            alpha: 0.2,
            num_walks: 5000,
            seed: 11,
        };
        let a = monte_carlo_ppr(&g, Direction::Out, 1, &cfg);
        let b = monte_carlo_ppr(&g, Direction::Out, 1, &cfg);
        for u in 0..12u32 {
            assert_eq!(a.estimate(u), b.estimate(u));
        }
    }
}
