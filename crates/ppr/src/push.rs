//! Forward-Push (Algorithm 1) with signed residues.
//!
//! The same routine serves the static build (fresh one-hot residue) and the
//! re-push phase of the dynamic update (arbitrary signed residues left by the
//! per-event adjustments — Algorithm 2 lines 8–11 push both signs).

use crate::state::PprState;
use std::collections::VecDeque;
use tsvd_graph::{Direction, DynGraph};

/// Run local push on `state` until no node `u` has
/// `|r_s(u)| / deg(u) > r_max` (both residue signs, per Algorithm 2).
///
/// Dangling nodes (degree 0 in `dir`) absorb their whole residue into the
/// estimate — the α-decay walk terminates where it stands — whenever
/// `|r_s(u)| > r_max`.
///
/// Cost: `O(total pushed mass / (α·r_max))`; for a fresh one-hot residue
/// this is the classic `O(1/(α·r_max))`.
pub fn forward_push(g: &DynGraph, dir: Direction, alpha: f64, r_max: f64, state: &mut PprState) {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(r_max > 0.0, "r_max must be positive");
    // Take the state's scratch buffers for the duration of the push: the
    // dynamic path re-pushes every source in every window on residue sets
    // of a handful of nodes, where a fresh seed Vec + frontier VecDeque per
    // call is pure allocator traffic. Capacity persists across pushes.
    let mut seeds = std::mem::take(&mut state.scratch.seeds);
    let mut queue = std::mem::take(&mut state.scratch.queue);
    debug_assert!(seeds.is_empty() && queue.is_empty(), "scratch not clean");
    // Seed the queue with every node currently holding residue. For a fresh
    // state this is just the source; after dynamic adjustments it is the
    // handful of touched endpoints plus whatever survived earlier pushes.
    seeds.extend(state.r.keys().copied());
    seeds.sort_unstable(); // deterministic order regardless of hash state
    for &u in &seeds {
        if exceeds(g, dir, r_max, u, state.residue(u)) {
            queue.push_back(u);
        }
    }
    seeds.clear();
    while let Some(u) = queue.pop_front() {
        let r_u = state.residue(u);
        if !exceeds(g, dir, r_max, u, r_u) {
            continue; // stale queue entry
        }
        push_node(g, dir, alpha, state, u);
        for &v in g.neighbors(u, dir) {
            if exceeds(g, dir, r_max, v, state.residue(v)) {
                queue.push_back(v);
            }
        }
        // A dangling absorb leaves no residue anywhere new; a self-loop may
        // leave residue at u itself.
        if exceeds(g, dir, r_max, u, state.residue(u)) {
            queue.push_back(u);
        }
    }
    state.scratch.seeds = seeds;
    state.scratch.queue = queue;
}

/// Reusable dense working buffers for fresh pushes.
///
/// A fresh push touches only `O(1/r_max)` nodes, so allocating and zeroing
/// three `n`-sized buffers per source would dominate when `n` is large and
/// `r_max` coarse (Global-STRAP pushes from *every* node). The workspace is
/// allocated once per worker thread and selectively cleared via touched
/// lists after each source.
#[derive(Debug)]
pub struct FreshPushWorkspace {
    p: Vec<f64>,
    r: Vec<f64>,
    in_queue: Vec<bool>,
    touched: Vec<u32>,
    queue: VecDeque<u32>,
}

impl FreshPushWorkspace {
    /// A workspace for graphs with up to `n` nodes.
    pub fn new(n: usize) -> Self {
        FreshPushWorkspace {
            p: vec![0.0; n],
            r: vec![0.0; n],
            in_queue: vec![false; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Run one fresh push (identical semantics to [`forward_push`] on a
    /// brand-new state) and leave the workspace clean for the next source.
    pub fn run(
        &mut self,
        g: &DynGraph,
        dir: Direction,
        alpha: f64,
        r_max: f64,
        source: u32,
    ) -> PprState {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(r_max > 0.0, "r_max must be positive");
        debug_assert!(self.p.len() >= g.num_nodes());
        debug_assert!(self.p.iter().all(|&x| x == 0.0), "workspace not clean");
        let (p, r, in_queue, touched, queue) = (
            &mut self.p,
            &mut self.r,
            &mut self.in_queue,
            &mut self.touched,
            &mut self.queue,
        );
        // `touched` records every node whose residue transitioned away from
        // zero; duplicates are possible (a residue can be drained back to
        // exactly zero and refilled) and are harmless — cleanup zeroes the
        // entry on first visit, so later visits are no-ops.
        r[source as usize] = 1.0;
        touched.push(source);
        queue.push_back(source);
        in_queue[source as usize] = true;
        while let Some(u) = queue.pop_front() {
            in_queue[u as usize] = false;
            let r_u = r[u as usize];
            let neighbors = g.neighbors(u, dir);
            let d = neighbors.len();
            // Fresh pushes only ever see non-negative residue.
            if d == 0 {
                if r_u > r_max {
                    p[u as usize] += r_u;
                    r[u as usize] = 0.0;
                }
                continue;
            }
            if r_u <= r_max * d as f64 {
                continue; // stale entry
            }
            r[u as usize] = 0.0;
            p[u as usize] += alpha * r_u;
            let spread = (1.0 - alpha) * r_u / d as f64;
            for &v in neighbors {
                let rv = &mut r[v as usize];
                if *rv == 0.0 {
                    touched.push(v);
                }
                *rv += spread;
                let dv = g.degree(v, dir);
                let pushable = if dv == 0 {
                    *rv > r_max
                } else {
                    *rv > r_max * dv as f64
                };
                if pushable && !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        // Harvest into the sparse state and clear only what we touched.
        let mut state = PprState::new(source);
        state.take_r(source); // clear the one-hot residue before refilling
        for &u in touched.iter() {
            let (pu, ru) = (p[u as usize], r[u as usize]);
            if pu != 0.0 {
                state.add_p(u, pu);
                p[u as usize] = 0.0;
            }
            if ru != 0.0 {
                state.add_r(u, ru);
                r[u as usize] = 0.0;
            }
        }
        touched.clear();
        queue.clear();
        state
    }
}

/// Fresh forward push with dense working buffers — convenience wrapper that
/// allocates a one-shot [`FreshPushWorkspace`]. Batch callers (see
/// [`crate::SubsetPpr::build`]) keep a workspace per worker instead.
pub fn forward_push_fresh(
    g: &DynGraph,
    dir: Direction,
    alpha: f64,
    r_max: f64,
    source: u32,
) -> PprState {
    FreshPushWorkspace::new(g.num_nodes()).run(g, dir, alpha, r_max, source)
}

/// One push operation at `u` (Algorithm 1 lines 5–8): spread
/// `(1−α)·r_u/deg(u)` to each neighbor, bank `α·r_u` into the estimate,
/// zero the residue. Degree-0 nodes absorb everything.
#[inline]
fn push_node(g: &DynGraph, dir: Direction, alpha: f64, state: &mut PprState, u: u32) {
    let r_u = state.take_r(u);
    if r_u == 0.0 {
        return;
    }
    let neighbors = g.neighbors(u, dir);
    let d = neighbors.len();
    if d == 0 {
        // Terminal node: the walk stops here with probability 1.
        state.add_p(u, r_u);
        return;
    }
    let spread = (1.0 - alpha) * r_u / d as f64;
    for &v in neighbors {
        state.add_r(v, spread);
    }
    state.add_p(u, alpha * r_u);
}

/// Push-worthiness test: `|r|/deg > r_max`, with degree-0 nodes compared
/// against `r_max` directly.
#[inline]
fn exceeds(g: &DynGraph, dir: Direction, r_max: f64, u: u32, r: f64) -> bool {
    if r == 0.0 {
        return false;
    }
    let d = g.degree(u, dir);
    if d == 0 {
        r.abs() > r_max
    } else {
        r.abs() / d as f64 > r_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_ppr_row;
    use tsvd_graph::DynGraph;

    fn cycle(n: u32) -> DynGraph {
        let mut g = DynGraph::with_nodes(n as usize);
        for u in 0..n {
            g.insert_edge(u, (u + 1) % n);
        }
        g
    }

    #[test]
    fn estimates_below_truth_on_fresh_push() {
        // With a non-negative residue, p never overshoots π.
        let g = cycle(10);
        let (alpha, r_max) = (0.2, 1e-4);
        let mut st = PprState::new(0);
        forward_push(&g, Direction::Out, alpha, r_max, &mut st);
        let exact = exact_ppr_row(&g, Direction::Out, 0, alpha, 1e-12);
        for u in 0..10u32 {
            let e = st.estimate(u);
            assert!(e <= exact[u as usize] + 1e-12, "overshoot at {u}");
            assert!(exact[u as usize] - e <= 1e-3, "undershoot too large at {u}");
        }
    }

    #[test]
    fn push_invariant_holds() {
        // π_s(x) == p_s(x) + Σ_v r_s(v)·π_v(x) for all x, at any push depth.
        let mut g = cycle(8);
        g.insert_edge(0, 4);
        g.insert_edge(3, 1);
        let (alpha, r_max) = (0.15, 0.01);
        let mut st = PprState::new(2);
        forward_push(&g, Direction::Out, alpha, r_max, &mut st);
        let n = g.num_nodes();
        // Exact PPR rows for every node.
        let pis: Vec<Vec<f64>> = (0..n as u32)
            .map(|v| exact_ppr_row(&g, Direction::Out, v, alpha, 1e-13))
            .collect();
        let truth = &pis[2];
        for x in 0..n {
            let mut rhs = st.estimate(x as u32);
            for (v, rv) in st.residues() {
                rhs += rv * pis[v as usize][x];
            }
            assert!(
                (rhs - truth[x]).abs() < 1e-9,
                "invariant violated at x={x}: {rhs} vs {}",
                truth[x]
            );
        }
    }

    #[test]
    fn residue_threshold_respected() {
        let g = cycle(20);
        let r_max = 1e-3;
        let mut st = PprState::new(0);
        forward_push(&g, Direction::Out, 0.2, r_max, &mut st);
        for (u, r) in st.residues() {
            let d = g.out_degree(u).max(1);
            assert!(
                r.abs() / d as f64 <= r_max + 1e-15,
                "node {u} still pushable"
            );
        }
    }

    #[test]
    fn dangling_node_absorbs() {
        // 0 → 1, node 1 has no out-edges: everything that reaches 1 stops.
        let mut g = DynGraph::with_nodes(2);
        g.insert_edge(0, 1);
        let alpha = 0.3;
        let mut st = PprState::new(0);
        forward_push(&g, Direction::Out, alpha, 1e-9, &mut st);
        // Walk stops at 0 w.p. α, otherwise moves to 1 and stops there.
        assert!((st.estimate(0) - alpha).abs() < 1e-6);
        assert!((st.estimate(1) - (1.0 - alpha)).abs() < 1e-6);
        assert!((st.estimate_mass() - 1.0).abs() < 1e-6, "mass conserved");
    }

    #[test]
    fn reverse_direction_uses_in_edges() {
        let mut g = DynGraph::with_nodes(3);
        g.insert_edge(0, 2);
        g.insert_edge(1, 2);
        // On the reverse graph, source 2 reaches 0 and 1.
        let mut st = PprState::new(2);
        forward_push(&g, Direction::In, 0.2, 1e-9, &mut st);
        assert!(st.estimate(0) > 0.0);
        assert!(st.estimate(1) > 0.0);
        // Forward from 2 goes nowhere.
        let mut st2 = PprState::new(2);
        forward_push(&g, Direction::Out, 0.2, 1e-9, &mut st2);
        assert!((st2.estimate(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_loop_converges() {
        let mut g = DynGraph::with_nodes(1);
        g.insert_edge(0, 0);
        let mut st = PprState::new(0);
        forward_push(&g, Direction::Out, 0.5, 1e-10, &mut st);
        assert!((st.estimate(0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn dense_fresh_push_matches_sparse_path() {
        let mut g = cycle(12);
        g.insert_edge(0, 6);
        g.insert_edge(3, 9);
        g.insert_edge(5, 5); // self loop
        let (alpha, r_max) = (0.2, 1e-4);
        for s in [0u32, 3, 7] {
            let mut sparse = PprState::new(s);
            forward_push(&g, Direction::Out, alpha, r_max, &mut sparse);
            let dense = forward_push_fresh(&g, Direction::Out, alpha, r_max, s);
            // Push order is unspecified, so terminal states legitimately
            // differ — but both satisfy the invariant, so estimates differ
            // by at most the total leftover residue mass of either run.
            let bound = sparse.residue_mass() + dense.residue_mass() + 1e-12;
            for u in 0..12u32 {
                assert!(
                    (sparse.estimate(u) - dense.estimate(u)).abs() <= bound,
                    "p mismatch at {u} beyond residue bound {bound}"
                );
            }
            // Both runs drained residues below the push threshold.
            for (u, r) in dense.residues() {
                let d = g.out_degree(u).max(1);
                assert!(r.abs() / d as f64 <= r_max + 1e-15, "node {u} pushable");
            }
            // And the dense run's estimates obey the exact invariant.
            let pis: Vec<Vec<f64>> = (0..12u32)
                .map(|v| exact_ppr_row(&g, Direction::Out, v, alpha, 1e-13))
                .collect();
            for (x, &truth) in pis[s as usize].iter().enumerate() {
                let mut rhs = dense.estimate(x as u32);
                for (v, rv) in dense.residues() {
                    rhs += rv * pis[v as usize][x];
                }
                assert!((rhs - truth).abs() < 1e-9, "invariant at {x}");
            }
        }
    }

    #[test]
    fn dense_fresh_push_isolated_source() {
        let g = DynGraph::with_nodes(4);
        let st = forward_push_fresh(&g, Direction::Out, 0.2, 1e-6, 2);
        assert!((st.estimate(2) - 1.0).abs() < 1e-12);
        assert_eq!(st.residue(2), 0.0);
    }

    #[test]
    fn scratch_buffers_are_reused_across_pushes() {
        let g = cycle(30);
        let mut st = PprState::new(0);
        forward_push(&g, Direction::Out, 0.2, 1e-4, &mut st);
        // Scratch is left clean but keeps its capacity for the next push.
        assert!(st.scratch.seeds.is_empty());
        assert!(st.scratch.queue.is_empty());
        let seed_cap = st.scratch.seeds.capacity();
        let queue_cap = st.scratch.queue.capacity();
        assert!(seed_cap > 0, "first push grew the seed scratch");
        assert!(queue_cap > 0, "first push grew the frontier scratch");
        // A re-push on leftover residues (the dynamic-update shape) must
        // not reallocate: same backing capacity before and after.
        st.add_r(7, 0.5);
        st.add_r(21, -0.3);
        forward_push(&g, Direction::Out, 0.2, 1e-4, &mut st);
        assert!(st.scratch.seeds.capacity() >= seed_cap);
        assert!(st.scratch.queue.capacity() >= queue_cap);
        assert!(st.scratch.seeds.is_empty() && st.scratch.queue.is_empty());
    }

    #[test]
    fn signed_residue_push_clears_negative_mass() {
        let g = cycle(6);
        let mut st = PprState::new(0);
        // Simulate a post-update residue profile with mixed signs.
        st.add_r(2, -0.4);
        st.add_r(4, 0.3);
        forward_push(&g, Direction::Out, 0.2, 1e-4, &mut st);
        for (u, r) in st.residues() {
            let d = g.out_degree(u).max(1);
            assert!(r.abs() / d as f64 <= 1e-4 + 1e-15, "node {u}");
        }
    }
}
